//! `snoopy` — command-line feasibility study on the built-in dataset replicas.
//!
//! ```bash
//! # Is 90% accuracy realistic on a CIFAR-10-like task with 40% uniform label noise?
//! snoopy --dataset cifar10 --noise uniform:0.4 --target 0.9
//!
//! # CIFAR-N style human noise, larger replica, exhaustive scheduler
//! snoopy --dataset cifar10-aggre --target 0.95 --scale standard --strategy exhaustive
//! ```
//!
//! The binary exists so that the system can be exercised end to end without
//! writing any Rust; library users should prefer [`snoopy::prelude`].

use snoopy::data::registry::{self, SizeScale};
use snoopy::prelude::*;
use std::process::ExitCode;

struct Args {
    dataset: String,
    noise: NoiseModel,
    target: f64,
    scale: SizeScale,
    strategy: SelectionStrategy,
    batch_fraction: f64,
    seed: u64,
}

fn print_usage() {
    eprintln!(
        "usage: snoopy [--dataset NAME] [--noise clean|uniform:RHO|pairwise:RHO] [--target ACC]\n\
         \x20             [--scale tiny|small|standard] [--strategy sh-tangent|sh|uniform|exhaustive]\n\
         \x20             [--batch-fraction F] [--seed N]\n\
         \n\
         datasets: mnist cifar10 cifar100 imdb sst2 yelp, or a CIFAR-N variant\n\
         ({})",
        registry::cifar_n_names().join(" ")
    );
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dataset: "cifar10".to_string(),
        noise: NoiseModel::Clean,
        target: 0.9,
        scale: SizeScale::Small,
        strategy: SelectionStrategy::SuccessiveHalvingTangent,
        batch_fraction: 0.1,
        seed: 42,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let value = argv.get(i + 1).ok_or_else(|| format!("missing value for {flag}"))?;
        match flag {
            "--dataset" => args.dataset = value.clone(),
            "--target" => {
                args.target = value.parse().map_err(|_| format!("invalid target accuracy {value}"))?
            }
            "--seed" => args.seed = value.parse().map_err(|_| format!("invalid seed {value}"))?,
            "--batch-fraction" => {
                args.batch_fraction = value.parse().map_err(|_| format!("invalid batch fraction {value}"))?
            }
            "--scale" => {
                args.scale = match value.as_str() {
                    "tiny" => SizeScale::Tiny,
                    "small" => SizeScale::Small,
                    "standard" => SizeScale::Standard,
                    other => return Err(format!("unknown scale {other}")),
                }
            }
            "--strategy" => {
                args.strategy = match value.as_str() {
                    "sh-tangent" => SelectionStrategy::SuccessiveHalvingTangent,
                    "sh" => SelectionStrategy::SuccessiveHalving,
                    "uniform" => SelectionStrategy::Uniform,
                    "exhaustive" => SelectionStrategy::Exhaustive,
                    other => return Err(format!("unknown strategy {other}")),
                }
            }
            "--noise" => {
                args.noise = if value == "clean" {
                    NoiseModel::Clean
                } else if let Some(rho) = value.strip_prefix("uniform:") {
                    NoiseModel::Uniform(rho.parse().map_err(|_| format!("invalid noise level {rho}"))?)
                } else if let Some(rho) = value.strip_prefix("pairwise:") {
                    NoiseModel::Pairwise(rho.parse().map_err(|_| format!("invalid noise level {rho}"))?)
                } else {
                    return Err(format!("unknown noise model {value}"));
                };
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(args)
}

fn load_task(args: &Args) -> Result<TaskDataset, String> {
    if registry::cifar_n_names().iter().any(|n| n == &args.dataset) {
        return Ok(registry::load_cifar_n(&args.dataset, args.scale, args.seed));
    }
    if registry::spec_by_name(&args.dataset).is_none() {
        return Err(format!("unknown dataset {}", args.dataset));
    }
    Ok(registry::load_with_noise(&args.dataset, args.scale, &args.noise, args.seed))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}\n");
            }
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    let task = match load_task(&args) {
        Ok(task) => task,
        Err(message) => {
            eprintln!("error: {message}\n");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    println!(
        "dataset            : {} ({} classes, {} train / {} test)",
        task.name,
        task.num_classes,
        task.train.len(),
        task.test.len()
    );
    println!("noise model        : {}", args.noise.describe());
    println!("observed noise rate: {:.3}", task.observed_noise_rate());
    if let Some(ber) = task.meta.true_ber {
        println!("replica clean BER  : {ber:.4}");
    }

    let zoo = zoo_for_task(&task, args.seed);
    let config =
        SnoopyConfig::with_target(args.target).strategy(args.strategy).batch_fraction(args.batch_fraction);
    let report = FeasibilityStudy::new(config).run(&task, &zoo);

    println!("\n=== Snoopy verdict ===");
    println!("target accuracy    : {:.3}", args.target);
    println!("decision           : {}", report.decision.name());
    println!("BER estimate       : {:.4}", report.ber_estimate);
    println!("projected accuracy : {:.4}", report.projected_accuracy);
    println!("gap to target      : {:+.4}", report.gap);
    println!("best transformation: {}", report.best_transformation);
    println!("simulated GPU cost : {:.1} s", report.simulated_cost_seconds);
    println!("wall clock         : {:.2} s", report.wall_clock_seconds);
    println!("\n--- additional guidance (Section IV-C) ---\n{}", report.guidance.render());
    ExitCode::SUCCESS
}
