//! # snoopy
//!
//! Facade crate re-exporting the entire Snoopy workspace: a Rust
//! reproduction of *"Automatic Feasibility Study via Data Quality Analysis
//! for ML: A Case-Study on Label Noise"* (Renggli et al., ICDE 2023).
//!
//! Snoopy answers one question before any expensive AutoML or fine-tuning
//! run: *given this (possibly label-noisy) dataset, is a target accuracy
//! `α_target` realistic?* It does so by estimating a lower bound of the
//! task's Bayes error rate with a 1NN estimator evaluated over a zoo of
//! feature transformations, aggregated by taking the minimum, and scheduled
//! with a successive-halving bandit.
//!
//! ```
//! use snoopy::prelude::*;
//!
//! // A small noisy replica of CIFAR-10 (40% uniform label noise).
//! let task = snoopy::data::registry::load_with_noise(
//!     "cifar10",
//!     SizeScale::Tiny,
//!     &NoiseModel::Uniform(0.4),
//!     42,
//! );
//! let zoo = zoo_for_task(&task, 42);
//! let report = FeasibilityStudy::new(SnoopyConfig::with_target(0.95)).run(&task, &zoo);
//! // 40% uniform noise on 10 classes pushes the Bayes error to ~0.36: a 95%
//! // accuracy target is hopeless and Snoopy says so.
//! assert!(!report.is_realistic());
//! ```
//!
//! The sub-crates are re-exported under short module names:
//!
//! | module | contents |
//! |---|---|
//! | [`linalg`] | dense matrices, PCA, RNG substrate |
//! | [`data`] | synthetic dataset registry, label-noise models, cleaning simulator |
//! | [`knn`] | the incremental top-k successor state and exact kNN engines |
//! | [`estimators`] | Bayes-error estimators and extrapolation |
//! | [`embeddings`] | the simulated pre-trained transformation zoo |
//! | [`models`] | LR proxy, MLP, AutoML and FineTune baselines, cost model |
//! | [`bandit`] | successive halving with tangent breaks |
//! | [`core`] | the feasibility study itself |
//! | [`e2e`] | the end-to-end label-cleaning use-case simulator |

pub use snoopy_bandit as bandit;
pub use snoopy_core as core;
pub use snoopy_data as data;
pub use snoopy_e2e as e2e;
pub use snoopy_embeddings as embeddings;
pub use snoopy_estimators as estimators;
pub use snoopy_knn as knn;
pub use snoopy_linalg as linalg;
pub use snoopy_models as models;

/// Commonly used items, importable with `use snoopy::prelude::*`.
pub mod prelude {
    pub use snoopy_bandit::SelectionStrategy;
    pub use snoopy_core::{
        FeasibilityDecision, FeasibilityStudy, IncrementalStudy, SnoopyConfig, StudyReport,
    };
    pub use snoopy_data::registry::SizeScale;
    pub use snoopy_data::{NoiseModel, TaskDataset, TransitionMatrix};
    pub use snoopy_embeddings::{zoo_for_task, Transformation};
    pub use snoopy_estimators::cover_hart_lower_bound;
    pub use snoopy_knn::Metric;
    pub use snoopy_models::{CostScenario, LabelCost, MachineCost};
}
