//! Embedding selection: why Snoopy takes the minimum over a zoo, and what the
//! successive-halving scheduler saves (Sections IV–V, Figures 6 and 12).
//!
//! ```bash
//! cargo run --release --example embedding_selection
//! ```
//!
//! The example runs the feasibility study on an IMDB-like task three times —
//! exhaustively, with classic successive halving, and with the tangent
//! variant — and then shows how much worse the estimate would have been had
//! the user committed to a single fixed embedding instead of the minimum.

use snoopy::data::registry::{load_with_noise, SizeScale};
use snoopy::prelude::*;

fn main() {
    let task = load_with_noise("imdb", SizeScale::Small, &NoiseModel::Uniform(0.2), 11);
    let zoo = zoo_for_task(&task, 11);
    println!("task {} with {} zoo members\n", task.name, zoo.len());

    println!("{:<30} {:>12} {:>16} {:>14}", "strategy", "BER estimate", "simulated cost/s", "wall clock/s");
    let mut reports = Vec::new();
    for strategy in [
        SelectionStrategy::Exhaustive,
        SelectionStrategy::Uniform,
        SelectionStrategy::SuccessiveHalving,
        SelectionStrategy::SuccessiveHalvingTangent,
    ] {
        let config = SnoopyConfig::with_target(0.85).strategy(strategy).batch_fraction(0.1);
        let report = FeasibilityStudy::new(config).run(&task, &zoo);
        println!(
            "{:<30} {:>12.4} {:>16.1} {:>14.2}",
            strategy.name(),
            report.ber_estimate,
            report.simulated_cost_seconds,
            report.wall_clock_seconds
        );
        reports.push(report);
    }

    // Figure 6-style view: the penalty of fixing a single transformation.
    let exhaustive = &reports[0];
    println!("\nimpact of fixing a single transformation (vs. the minimum {:.4}):", exhaustive.ber_estimate);
    let mut rows: Vec<(&str, f64)> =
        exhaustive.per_transformation.iter().map(|r| (r.name.as_str(), r.ber_estimate)).collect();
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, estimate) in rows.iter().take(6) {
        println!("  {:<28} {:>8.4}  (gap {:+.4})", name, estimate, estimate - exhaustive.ber_estimate);
    }
    println!("  ...");
    for (name, estimate) in rows.iter().rev().take(3).rev() {
        println!("  {:<28} {:>8.4}  (gap {:+.4})", name, estimate, estimate - exhaustive.ber_estimate);
    }
    println!(
        "\nbest transformation: {} — picking the wrong one can multiply the gap to the target, \
         which is exactly why the minimum aggregation is necessary (Fig. 6).",
        exhaustive.best_transformation
    );
}
