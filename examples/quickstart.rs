//! Quickstart: run a feasibility study on a noisy CIFAR-10 replica.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example generates a scaled-down CIFAR-10-like task, injects 20 %
//! uniform label noise, asks Snoopy whether two different target accuracies
//! are realistic, and prints the full report including the additional
//! guidance (gap to target, convergence fit, extrapolated extra samples).

use snoopy::data::registry::{load_with_noise, SizeScale};
use snoopy::prelude::*;

fn main() {
    // 1. The user's data artefact: a representative dataset whose labels are
    //    noisy (20% of them were corrupted uniformly at random).
    let noise = NoiseModel::Uniform(0.2);
    let task = load_with_noise("cifar10", SizeScale::Small, &noise, 42);
    println!("dataset            : {} ({} classes)", task.name, task.num_classes);
    println!("train / test       : {} / {}", task.train.len(), task.test.len());
    println!("injected noise     : {}", noise.describe());
    println!("observed noise rate: {:.3}", task.observed_noise_rate());
    if let Some(ber) = task.meta.true_ber {
        println!("true clean BER     : {:.4} (known by construction)", ber);
    }
    println!();

    // 2. The transformation zoo Snoopy consults (simulated pre-trained
    //    embeddings, PCA, NCA, raw features).
    let zoo = zoo_for_task(&task, 42);
    println!("transformation zoo : {} members", zoo.len());

    // 3. Ask Snoopy about two targets: one clearly reachable despite the
    //    noise, one clearly not.
    for target in [0.75_f64, 0.95] {
        let config = SnoopyConfig::with_target(target)
            .strategy(SelectionStrategy::SuccessiveHalvingTangent)
            .batch_fraction(0.1);
        let report = FeasibilityStudy::new(config).run(&task, &zoo);

        println!("---------------------------------------------");
        println!("target accuracy    : {:.2}", target);
        println!("decision           : {}", report.decision.name());
        println!(
            "BER estimate       : {:.4} (min over {} transformations)",
            report.ber_estimate,
            report.per_transformation.len()
        );
        println!("projected accuracy : {:.4}", report.projected_accuracy);
        println!("gap to target      : {:+.4}", report.gap);
        println!("best transformation: {}", report.best_transformation);
        println!("simulated GPU cost : {:.1} s", report.simulated_cost_seconds);
        println!("wall clock         : {:.2} s", report.wall_clock_seconds);
        println!("{}", report.guidance.render());
    }
}
