//! FeeBee-style comparison of Bayes-error estimators on tasks with a known
//! BER and a known noise evolution (Section II-A / Lemma 2.1).
//!
//! ```bash
//! cargo run --release --example estimator_comparison
//! ```
//!
//! For a 4-class Gaussian task whose true Bayes error is known by
//! construction, the example injects increasing uniform label noise at two
//! training-set rounds, predicts the noisy BER with Lemma 2.1, and reports
//! how each estimator family (Cover–Hart 1NN, kNN posterior plug-in,
//! GHP/MST, KDE) tracks it. One growing [`IncrementalTopK`] state carries
//! the neighbour computation across both rounds and every noise level: the
//! second round *appends* only the new rows, and label noise never moves a
//! neighbour.

use snoopy::data::gaussian::{GaussianMixture, GaussianMixtureSpec};
use snoopy::data::noise::ber_after_uniform_noise;
use snoopy::estimators::{
    default_estimators, estimate_all_with_state, shared_table_k, IncrementalTopK, LabeledView,
};
use snoopy::linalg::rng;
use snoopy::prelude::*;

fn main() {
    let num_classes = 4;
    let mixture = GaussianMixture::from_spec(&GaussianMixtureSpec {
        num_classes,
        latent_dim: 8,
        class_sep: 2.4,
        within_std: 1.0,
        seed: 3,
    });
    let mut sample_rng = rng::seeded(4);
    let (train_x, train_y) = mixture.sample(2_000, &mut sample_rng);
    let (test_x, test_y) = mixture.sample(600, &mut sample_rng);
    let clean_ber = mixture.bayes_error_monte_carlo(40_000, 5);
    println!("4-class Gaussian task, true clean BER = {clean_ber:.4}\n");

    let estimators = default_estimators();

    // One growing neighbour state serves both rounds and every noise level:
    // the round step appends only the new training rows, and each kNN-family
    // estimator reads a prefix of the same per-query lists.
    let mut state = IncrementalTopK::new(
        test_x.clone(),
        test_y.clone(),
        Metric::SquaredEuclidean,
        shared_table_k(&estimators),
    );
    let mut noise_rng = rng::seeded(6);
    let mut consumed = 0usize;
    for round_n in [1_000usize, 2_000] {
        state.append(train_x.view().slice_rows(consumed, round_n), &train_y[consumed..round_n]);
        consumed = round_n;
        println!("--- {round_n} training samples ---");
        print!("{:<8} {:>12}", "noise", "lemma 2.1");
        for est in &estimators {
            print!(" {:>15}", est.name());
        }
        println!();
        for rho in [0.0, 0.2, 0.4, 0.6] {
            let transition = TransitionMatrix::uniform(num_classes, rho);
            let noisy_train = transition.apply(&train_y, &mut noise_rng);
            let noisy_test = transition.apply(&test_y, &mut noise_rng);
            let expected = ber_after_uniform_noise(clean_ber, rho, num_classes);
            print!("{:<8.2} {:>12.4}", rho, expected);
            let values = estimate_all_with_state(
                &estimators,
                &state,
                &LabeledView::new(&train_x, &noisy_train).prefix(round_n),
                &LabeledView::new(&test_x, &noisy_test),
                num_classes,
            );
            for value in &values {
                print!(" {:>15.4}", value);
            }
            println!();
        }
        println!();
    }

    println!(
        "The 1NN Cover–Hart estimator tracks the Lemma 2.1 evolution while staying scalable and \
         hyper-parameter free — the finding that makes it Snoopy's estimator of choice."
    );
}
