//! End-to-end label-cleaning workflow (the use case of Section VI-D).
//!
//! ```bash
//! cargo run --release --example label_cleaning
//! ```
//!
//! A user holds a heavily corrupted SST-2-like dataset and wants 85 %
//! accuracy. The example compares three ways of getting there:
//!
//! 1. repeatedly fine-tuning an expensive model and cleaning 10 % of the
//!    labels whenever it misses the target (no feasibility study),
//! 2. alternating a cheap LR-proxy feasibility check with 5 % cleaning
//!    rounds,
//! 3. alternating Snoopy's incremental feasibility check with 5 % cleaning
//!    rounds,
//!
//! and prints the dollars spent and the labels inspected by each, under the
//! paper's "cheap labels" cost scenario (0.002 $/label, 0.9 $/GPU-hour).

use snoopy::data::registry::{load_with_noise, SizeScale};
use snoopy::e2e::{simulate, SimulationConfig, UserStrategy};
use snoopy::prelude::*;

fn main() {
    let task = load_with_noise("sst2", SizeScale::Small, &NoiseModel::Uniform(0.5), 7);
    println!(
        "task {} | {} train / {} test | observed noise {:.2}",
        task.name,
        task.train.len(),
        task.test.len(),
        task.observed_noise_rate()
    );

    let cost = CostScenario { label: LabelCost::Cheap, machine: MachineCost::default() };
    let config = SimulationConfig::new(0.85, cost, 7);

    let strategies = [
        UserStrategy::NoFeasibility { step_fraction: 0.10 },
        UserStrategy::LrProxyFeasibility { clean_fraction: 0.05 },
        UserStrategy::SnoopyFeasibility { clean_fraction: 0.05 },
    ];

    println!(
        "\n{:<22} {:>10} {:>14} {:>16} {:>10} {:>9}",
        "strategy", "dollars", "labels viewed", "expensive runs", "final acc", "reached"
    );
    for strategy in strategies {
        let trace = simulate(&task, strategy, &config);
        println!(
            "{:<22} {:>10.3} {:>14} {:>16} {:>10.3} {:>9}",
            trace.strategy,
            trace.total_dollars,
            trace.labels_inspected,
            trace.expensive_runs,
            trace.final_accuracy,
            trace.reached_target
        );
    }

    println!("\ntrace of the Snoopy run (first 12 recorded actions):");
    let trace = simulate(&task, UserStrategy::SnoopyFeasibility { clean_fraction: 0.05 }, &config);
    for point in trace.points.iter().take(12) {
        println!(
            "  round {:>3} | {:<16} | cleaned {:>5.1}% | spent {:>8.3}$ | acc {}",
            point.round,
            point.action,
            point.fraction_cleaned * 100.0,
            point.dollars,
            point.accuracy.map(|a| format!("{a:.3}")).unwrap_or_else(|| "-".into())
        );
    }
}
