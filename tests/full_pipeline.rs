//! Cross-crate integration tests: the full Snoopy pipeline from dataset
//! generation through noise injection, feasibility study, incremental
//! cleaning, and the end-to-end cost simulation.

use snoopy::data::cleaning::clean_fraction;
use snoopy::data::noise::ber_after_uniform_noise;
use snoopy::data::registry::{load_clean, load_with_noise, SizeScale};
use snoopy::e2e::{simulate, SimulationConfig, UserStrategy};
use snoopy::linalg::rng;
use snoopy::prelude::*;

fn study(target: f64) -> FeasibilityStudy {
    FeasibilityStudy::new(
        SnoopyConfig::with_target(target).strategy(SelectionStrategy::Exhaustive).batch_fraction(0.25),
    )
}

#[test]
fn snoopy_decision_agrees_with_ground_truth_across_noise_levels() {
    // The replicas carry their true BER, so we can check the binary signal
    // against the ground truth under Lemma 2.1 for several noise levels.
    let base = load_clean("cifar10", SizeScale::Tiny, 3);
    let clean_ber = base.meta.true_ber.unwrap();

    for (rho, target) in [(0.0, 0.9), (0.4, 0.9), (0.4, 0.5)] {
        let task = load_with_noise("cifar10", SizeScale::Tiny, &NoiseModel::Uniform(rho), 3);
        let zoo = zoo_for_task(&task, 5);
        let report = study(target).run(&task, &zoo);
        let true_noisy_ber = ber_after_uniform_noise(clean_ber, rho, task.num_classes);
        let truly_realistic = true_noisy_ber <= 1.0 - target;
        assert_eq!(
            report.is_realistic(),
            truly_realistic,
            "rho={rho}, target={target}: estimate {:.3}, true noisy BER {:.3}",
            report.ber_estimate,
            true_noisy_ber
        );
    }
}

#[test]
fn estimate_never_underestimates_catastrophically() {
    // Condition 8 (Section IV-B) promises the minimum aggregation does not
    // underestimate the BER; verify on a task with known ground truth.
    let task = load_with_noise("sst2", SizeScale::Tiny, &NoiseModel::Uniform(0.3), 9);
    let clean_ber = task.meta.true_ber.unwrap();
    let true_noisy = ber_after_uniform_noise(clean_ber, 0.3, task.num_classes);
    let zoo = zoo_for_task(&task, 9);
    let report = study(0.9).run(&task, &zoo);
    assert!(
        report.ber_estimate >= true_noisy - 0.12,
        "estimate {:.3} far below the true noisy BER {:.3}",
        report.ber_estimate,
        true_noisy
    );
}

#[test]
fn cleaning_loop_with_incremental_study_converges_to_realistic() {
    let mut task = load_with_noise("mnist", SizeScale::Tiny, &NoiseModel::Uniform(0.6), 11);
    let initial_task = task.clone();
    let zoo = zoo_for_task(&task, 11);
    let config = SnoopyConfig::with_target(0.8)
        .strategy(SelectionStrategy::SuccessiveHalvingTangent)
        .batch_fraction(0.2);
    let mut incremental = IncrementalStudy::bootstrap(config, &task, &zoo);
    assert_eq!(incremental.initial_report().decision, FeasibilityDecision::Unrealistic);

    let mut r = rng::seeded(13);
    let mut rounds = 0;
    loop {
        clean_fraction(&mut task, 0.1, &mut r);
        let answer = incremental.refresh(&task);
        rounds += 1;
        if answer.decision == FeasibilityDecision::Realistic {
            break;
        }
        assert!(rounds < 30, "cleaning everything must eventually flip the signal");
    }
    // Once the signal flips, the bulk of the noise is gone and the expensive
    // model benefits accordingly. (Snoopy predicts the *best possible*
    // accuracy; the tiny MLP trained on a few hundred samples will not reach
    // it, exactly the asymptotic-value caveat of Section III.)
    assert!(
        task.observed_noise_rate() < 0.3,
        "remaining noise {:.3} after Snoopy reported realistic",
        task.observed_noise_rate()
    );
    let before = snoopy::models::FineTuneBaseline::quick(17).run(&initial_task);
    let after = snoopy::models::FineTuneBaseline::quick(17).run(&task);
    assert!(
        after.test_accuracy > before.test_accuracy + 0.05,
        "cleaning should pay off: before {:.3}, after {:.3}",
        before.test_accuracy,
        after.test_accuracy
    );
}

#[test]
fn class_dependent_noise_stays_within_theorem31_bounds() {
    let task = load_with_noise("cifar10", SizeScale::Tiny, &NoiseModel::Clean, 21);
    let variants = snoopy::data::noise::cifar_n_variants();
    let aggre = &variants[0];
    let mut noisy = task.clone();
    snoopy::data::registry::apply_noise(&mut noisy, &NoiseModel::ClassDependent(aggre.matrix.clone()), 23);

    let zoo = zoo_for_task(&noisy, 23);
    let report = study(0.9).run(&noisy, &zoo);
    let (lo, hi) = snoopy::data::noise::ber_bounds_class_dependent(noisy.meta.sota_error, &aggre.matrix);
    // The estimate is a lower-bound-style quantity; it must not exceed the
    // theoretical upper bound, and should not sit wildly below the lower one.
    assert!(
        report.ber_estimate <= hi + 0.05,
        "estimate {:.3} above upper bound {hi:.3}",
        report.ber_estimate
    );
    assert!(
        report.ber_estimate >= lo - 0.05,
        "estimate {:.3} below lower bound {lo:.3}",
        report.ber_estimate
    );
}

#[test]
fn end_to_end_feasibility_study_is_cheaper_in_machine_dominated_regimes() {
    let task = load_with_noise("sst2", SizeScale::Tiny, &NoiseModel::Uniform(0.6), 31);
    let cost = CostScenario { label: LabelCost::Free, machine: MachineCost::default() };
    let config = SimulationConfig::new(0.8, cost, 31);
    let naive = simulate(&task, UserStrategy::NoFeasibility { step_fraction: 0.05 }, &config);
    let with_snoopy = simulate(&task, UserStrategy::SnoopyFeasibility { clean_fraction: 0.05 }, &config);
    assert!(
        with_snoopy.total_dollars < naive.total_dollars,
        "snoopy ({:.2}$) should beat naive retraining ({:.2}$) when machine time dominates",
        with_snoopy.total_dollars,
        naive.total_dollars
    );
    assert_eq!(with_snoopy.expensive_runs, 1);
}

#[test]
fn vtab_style_small_tasks_get_useful_estimates() {
    // Fig. 11: on small (1K-sample) tasks with mismatched embeddings the
    // estimate should still land in the right ball-park of the known BER.
    let suite = snoopy::data::registry::vtab_suite(41);
    let mut absolute_errors = Vec::new();
    for task in suite.iter().take(4) {
        let zoo = zoo_for_task(task, 41);
        let report = study(0.9).run(task, &zoo);
        absolute_errors.push((report.ber_estimate - task.meta.true_ber.unwrap()).abs());
    }
    let mean_abs: f64 = absolute_errors.iter().sum::<f64>() / absolute_errors.len() as f64;
    assert!(mean_abs < 0.15, "mean |estimate - true BER| = {mean_abs:.3}");
}
