//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! small subset of the `rand` 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic, fast, and statistically solid for the
//! simulation workloads in this repository. The stream differs from upstream
//! `StdRng` (ChaCha12); nothing in the workspace depends on the exact stream,
//! only on determinism given a seed.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(3..9usize);
            assert!((3..9).contains(&i));
            let j = r.gen_range(0..=2u32);
            assert!(j <= 2);
            let x = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
