//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no network access, so `cargo bench` links against
//! this minimal wall-clock harness instead of the real criterion. It supports
//! the subset the workspace benches use — `Criterion::bench_function`,
//! `benchmark_group` with `sample_size` / `bench_with_input` / `finish`,
//! `Bencher::iter`, `BenchmarkId::from_parameter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — and prints a
//! median-of-samples timing line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering only the parameter value (criterion-compatible).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    last_median: Duration,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self { samples, iters_per_sample: 1, last_median: Duration::ZERO }
    }

    /// Runs `routine` repeatedly and records the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate the iteration count so one sample takes ≥ ~2 ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            times.push(start.elapsed() / self.iters_per_sample as u32);
        }
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

fn print_result(name: &str, median: Duration) {
    println!("bench {name:<48} median {median:>12.3?}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut routine: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        print_result(&format!("{}/{}", self.name, id), bencher.last_median);
        self
    }

    /// Benchmarks `routine` with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        print_result(&format!("{}/{}", self.name, id), bencher.last_median);
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: 10, _criterion: self }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: F) -> &mut Self {
        let mut bencher = Bencher::new(10);
        routine(&mut bencher);
        print_result(name, bencher.last_median);
        self
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
