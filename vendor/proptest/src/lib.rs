//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API used by this workspace's
//! property tests: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, range and tuple strategies,
//! `prop::collection::vec`, `prop_map`, and the `prop_assert*` macros.
//!
//! Cases are generated from a deterministic RNG (no shrinking). A failing
//! case panics with the rendered assertion message, which is what `cargo
//! test` needs to report a red property.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Per-test configuration (subset: case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Error raised by `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG threaded through strategy sampling.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Deterministic runner; every `proptest!` block replays the same cases.
    pub fn deterministic() -> Self {
        Self { rng: StdRng::seed_from_u64(0x5eed_cafe_f00d_0001) }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.sample(runner))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f32, f64);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(runner),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi_exclusive {
                self.size.lo
            } else {
                runner.rng().gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(runner)).collect()
        }
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRunner};
}

/// Asserts a condition inside a property body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {}: {}",
                stringify!($cond),
                format!($($fmt)*)
            )));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {} != {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {} != {} ({:?} vs {:?}): {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed: both sides equal {:?}",
                l
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies for a number of cases and
/// runs the body; `prop_assert*` failures abort with the case index.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!($config; $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr; ) => {};
    (
        $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::deterministic();
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut runner);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_fns!($config; $($rest)*);
    };
}
