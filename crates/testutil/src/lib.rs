//! # snoopy-testutil
//!
//! Shared test-support builders for the workspace's integration and property
//! tests. Before this crate, every test file under `crates/knn/tests/` and
//! `crates/estimators/tests/` grew its own copy of "random labelled point
//! cloud" and "Gaussian mixture task with known BER" — this crate is the one
//! home for those fixtures, so adding a tie-heavy or clustered variant
//! benefits every consumer at once.
//!
//! The builders reproduce the historical constructions byte for byte (same
//! RNG, same expressions), so routing an existing test through this crate
//! does not change the data it runs on. This is a dev-dependency-only crate:
//! it may depend on `snoopy-data` (and transitively `snoopy-knn`) because
//! cargo permits cycles through dev-dependencies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snoopy_data::gaussian::{GaussianMixture, GaussianMixtureSpec};
use snoopy_linalg::{rng, Matrix};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A self-cleaning scratch directory under the system temp dir — the
/// fixture behind every disk-dataset test and bench, so `cargo test -q`
/// leaves no artifacts behind. Each call gets a unique directory
/// (pid + sequence number), removed recursively on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh empty scratch directory tagged `tag` (for post-mortem
    /// readability if a crash ever strands one).
    pub fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "snoopy_{tag}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir { path }
    }

    /// The scratch directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Random labelled point cloud: `n × d` features uniform in `[-5, 5)` and
/// uniform labels in `0..classes`.
pub fn cloud(seed: u64, n: usize, d: usize, classes: u32) -> (Matrix, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = Matrix::from_fn(n, d, |_, _| rng.gen::<f32>() * 10.0 - 5.0);
    let y = (0..n).map(|_| rng.gen_range(0..classes)).collect();
    (m, y)
}

/// [`cloud`] with every 7th row duplicated from the row before it, so
/// distance ties actually occur — tie-breaking is part of the engines'
/// bit-identical contract and needs data that exercises it.
pub fn cloud_with_ties(seed: u64, n: usize, d: usize, classes: u32) -> (Matrix, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::from_fn(n, d, |_, _| rng.gen::<f32>() * 10.0 - 5.0);
    for r in (7..n).step_by(7) {
        let prev = m.row(r - 1).to_vec();
        m.row_mut(r).copy_from_slice(&prev);
    }
    let y = (0..n).map(|_| rng.gen_range(0..classes)).collect();
    (m, y)
}

/// Clustered synthetic features: `n` rows drawn round-robin from `centers`
/// Gaussian blobs (centres ~ N(0, spread²), within-blob std `within`). This
/// is the shape the exact-pruned clustered index thrives on; use it to
/// exercise (and assert) non-trivial pruning rates.
pub fn blob_cloud(seed: u64, n: usize, d: usize, centers: usize, spread: f64, within: f64) -> Matrix {
    let mut r = rng::seeded(seed);
    let cents = Matrix::from_fn(centers, d, |_, _| (rng::normal(&mut r) * spread) as f32);
    Matrix::from_fn(n, d, |row, col| cents.get(row % centers, col) + (rng::normal(&mut r) * within) as f32)
}

/// A synthetic classification task drawn from a Gaussian mixture with a
/// Monte-Carlo estimate of its true Bayes error — the standard fixture of
/// the estimator-comparison tests.
pub struct GaussianTask {
    /// Training features.
    pub train_x: Matrix,
    /// Training labels.
    pub train_y: Vec<u32>,
    /// Held-out evaluation features.
    pub test_x: Matrix,
    /// Held-out evaluation labels.
    pub test_y: Vec<u32>,
    /// Monte-Carlo estimate of the mixture's true Bayes error.
    pub true_ber: f64,
    /// Number of classes.
    pub num_classes: usize,
}

/// Builds a [`GaussianTask`] (latent dim 6, within-class std 1.0 — the
/// fixture the estimator comparison has always used).
pub fn gaussian_task(num_classes: usize, sep: f64, seed: u64, n_train: usize, n_test: usize) -> GaussianTask {
    let mix = GaussianMixture::from_spec(&GaussianMixtureSpec {
        num_classes,
        latent_dim: 6,
        class_sep: sep,
        within_std: 1.0,
        seed,
    });
    let mut r = rng::seeded(seed ^ 0xabc);
    let (train_x, train_y) = mix.sample(n_train, &mut r);
    let (test_x, test_y) = mix.sample(n_test, &mut r);
    let true_ber = mix.bayes_error_monte_carlo(20_000, seed ^ 0xd00d);
    GaussianTask { train_x, train_y, test_x, test_y, true_ber, num_classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_is_deterministic_and_shaped() {
        let (a, ya) = cloud(3, 20, 4, 3);
        let (b, yb) = cloud(3, 20, 4, 3);
        assert_eq!(a.data(), b.data());
        assert_eq!(ya, yb);
        assert_eq!(a.rows(), 20);
        assert_eq!(a.cols(), 4);
        assert!(ya.iter().all(|&y| y < 3));
    }

    #[test]
    fn ties_variant_actually_duplicates_rows() {
        let (m, _) = cloud_with_ties(5, 30, 3, 2);
        assert_eq!(m.row(7), m.row(6));
        assert_eq!(m.row(14), m.row(13));
        assert_ne!(m.row(8), m.row(7));
    }

    #[test]
    fn blob_cloud_groups_rows_round_robin() {
        let m = blob_cloud(9, 40, 5, 4, 6.0, 0.05);
        // Rows of the same blob are near each other, different blobs far.
        let same = Matrix::row_sq_dist(m.row(0), m.row(4));
        let diff = Matrix::row_sq_dist(m.row(0), m.row(1));
        assert!(same < diff, "within-blob {same} vs cross-blob {diff}");
    }

    #[test]
    fn gaussian_task_has_plausible_ber() {
        let t = gaussian_task(3, 2.5, 7, 60, 30);
        assert_eq!(t.train_x.rows(), 60);
        assert_eq!(t.test_y.len(), 30);
        assert!((0.0..=1.0).contains(&t.true_ber));
    }
}
