//! The deployed-task view of the use case: sliding-window drift monitoring.
//!
//! A feasibility study's answer is pinned to the data it saw at study time.
//! The deployed task keeps streaming labelled rows, and the distribution
//! drifts — so the operational companion to the one-shot study is a monitor
//! that keeps a windowed BER estimate live and alarms when it departs from
//! the study-time answer ([`SlidingWindowStudy`]). This module packages the
//! monitoring scenario the smoke tests and benchmarks drive: run the
//! study-time baseline, stream a drift-free phase (the task's own rows, no
//! alarm expected), then an injected concept shift (labels cycled to the
//! next class) that the alarm must catch.
//!
//! The scenario asserts its own correctness while it runs: the window must
//! actually slide (≥ 3 positions), the drift-free phase must stay quiet, and
//! the injected shift must raise an alarm.

use snoopy_core::{SlidingWindowConfig, SlidingWindowStudy, SnoopyConfig, WindowProgress};
use snoopy_data::{Dataset, TaskDataset};
use snoopy_embeddings::zoo_for_task;

/// Outcome of one monitoring scenario run.
pub struct SlidingRun {
    /// The study-time aggregated BER estimate the monitor compared against.
    pub baseline_ber: f64,
    /// Window positions streamed across both phases.
    pub positions: usize,
    /// Position (1-based, within the whole stream) of the first alarm.
    pub first_alarm_position: usize,
    /// Windowed BER estimate at the first alarm.
    pub alarm_ber: f64,
    /// Total queries re-scanned by buffer-drain evictions across the run.
    pub affected_queries: usize,
    /// Total incremental evaluation work (query–row pairs, post-pruning).
    pub eval_pairs: u64,
}

/// Runs the monitoring scenario on `task`: a drift-free phase streaming the
/// task's own training rows, followed by a concept-shift phase streaming the
/// same rows with every label cycled to the next class.
///
/// # Panics
/// Panics if the window slides fewer than 3 positions, if the drift-free
/// phase raises an alarm, or if the injected shift fails to raise one.
pub fn run_sliding_scenario(
    task: &TaskDataset,
    window: SlidingWindowConfig,
    config: SnoopyConfig,
) -> SlidingRun {
    let zoo = zoo_for_task(task, 7);
    let clean_rows = task.train.len();

    // Phase 1 rows are the task's own training split; phase 2 re-streams the
    // same features under cycled labels — a pure concept shift.
    let features = task.train.features.vstack(&task.train.features);
    let mut labels = task.train.labels.clone();
    labels.extend(task.train.labels.iter().map(|&y| (y + 1) % task.num_classes as u32));
    let stream = Dataset::new_clean(features, labels);

    let study = SlidingWindowStudy::new(config, window);
    let mut events: Vec<WindowProgress> = Vec::new();
    let report = study.run_with_progress(task, &zoo, &stream, |e| events.push(e));

    assert!(report.positions >= 3, "the window must slide at least 3 positions");
    let shift_from = clean_rows.div_ceil(window.slide);
    // The window straddles the phase boundary for a few slides; only
    // positions whose window is entirely pre-shift must stay quiet.
    let quiet_until = clean_rows.saturating_sub(window.window) / window.slide;
    assert!(
        report.alarms.iter().all(|a| a.position > quiet_until),
        "the drift-free phase must not alarm: {:?}",
        report.alarms.first()
    );
    let first_alarm = report.alarms.first().expect("the injected label shift must raise a drift alarm");
    assert!(
        first_alarm.position >= shift_from.min(report.positions),
        "the alarm must come from the shifted phase"
    );
    SlidingRun {
        baseline_ber: report.baseline.ber_estimate,
        positions: report.positions,
        first_alarm_position: first_alarm.position,
        alarm_ber: first_alarm.windowed_ber,
        affected_queries: report.affected_queries,
        eval_pairs: report.eval_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};

    #[test]
    fn sliding_smoke_alarms_on_injected_shift() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let window = SlidingWindowConfig { window: 48, slide: 16, drift_margin: 0.12, slack: 3 };
        let config = SnoopyConfig::with_target(0.85).batch_fraction(0.25);
        let run = run_sliding_scenario(&task, window, config);
        assert!(run.positions >= 3);
        assert!(run.first_alarm_position <= run.positions);
        assert!(run.alarm_ber > run.baseline_ber, "a label shift makes the task harder");
        assert!(run.eval_pairs > 0);
    }
}
