//! The end-to-end simulation loop (Figures 9, 10 and 21–27).

use crate::strategy::UserStrategy;
use snoopy_bandit::SelectionStrategy;
use snoopy_core::{FeasibilityDecision, IncrementalStudy, SnoopyConfig};
use snoopy_data::cleaning::clean_fraction;
use snoopy_data::TaskDataset;
use snoopy_embeddings::zoo_for_task;
use snoopy_linalg::rng;
use snoopy_models::logreg::{grid_search_error, LOGREG_GRID_SIZE};
use snoopy_models::{CostScenario, FineTuneBaseline};

/// Simulated seconds for one LR-proxy feasibility check: the paper trains the
/// 9-configuration grid once the embeddings are cached (no extra inference on
/// re-runs), so the per-check cost is `grid × per-sample training cost`.
const LOGREG_SECONDS_PER_SAMPLE_PER_CONFIG: f64 = 0.004;

/// Configuration of one end-to-end simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Target accuracy the user wants to reach.
    pub target_accuracy: f64,
    /// Cost scenario (label + machine costs).
    pub cost: CostScenario,
    /// Safety cap on the number of cleaning rounds.
    pub max_rounds: usize,
    /// Seed for cleaning order and model training.
    pub seed: u64,
    /// Use fast (reduced-epoch) models — appropriate for the scaled-down
    /// replicas; the *simulated* costs still reflect paper-scale training.
    pub quick_models: bool,
}

impl SimulationConfig {
    /// A reasonable default for the scaled-down tasks.
    pub fn new(target_accuracy: f64, cost: CostScenario, seed: u64) -> Self {
        Self { target_accuracy, cost, max_rounds: 200, seed, quick_models: true }
    }
}

/// One recorded step of the simulation.
#[derive(Debug, Clone)]
pub struct TracePoint {
    /// Index of the round that produced this point.
    pub round: usize,
    /// What happened ("finetune", "clean", "snoopy-check", "lr-check",
    /// "snoopy-bootstrap").
    pub action: String,
    /// Cumulative number of labels inspected so far.
    pub labels_inspected: usize,
    /// Fraction of all labels inspected so far.
    pub fraction_cleaned: f64,
    /// Cumulative dollars spent so far.
    pub dollars: f64,
    /// Accuracy achieved or projected by this action, when applicable.
    pub accuracy: Option<f64>,
}

/// The full trace of one simulated user.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Strategy that produced the trace.
    pub strategy: String,
    /// Recorded steps.
    pub points: Vec<TracePoint>,
    /// Total dollars spent.
    pub total_dollars: f64,
    /// Total labels inspected.
    pub labels_inspected: usize,
    /// Total simulated machine seconds spent (allows re-pricing the same
    /// trace under a different cost scenario).
    pub machine_seconds: f64,
    /// Number of expensive (FineTune) runs performed.
    pub expensive_runs: usize,
    /// Whether the target accuracy was reached by the final expensive run.
    pub reached_target: bool,
    /// Accuracy of the final expensive run.
    pub final_accuracy: f64,
}

struct Ledger {
    cost: CostScenario,
    labels_inspected: usize,
    machine_seconds: f64,
    points: Vec<TracePoint>,
    total_labels: usize,
}

impl Ledger {
    fn new(cost: CostScenario, total_labels: usize) -> Self {
        Self { cost, labels_inspected: 0, machine_seconds: 0.0, points: Vec::new(), total_labels }
    }

    fn dollars(&self) -> f64 {
        self.cost.total_dollars(self.labels_inspected, self.machine_seconds)
    }

    fn record(&mut self, round: usize, action: &str, accuracy: Option<f64>) {
        self.points.push(TracePoint {
            round,
            action: action.to_string(),
            labels_inspected: self.labels_inspected,
            fraction_cleaned: self.labels_inspected as f64 / self.total_labels.max(1) as f64,
            dollars: self.dollars(),
            accuracy,
        });
    }
}

/// Runs the simulation for one strategy on a (noisy) task. The task is cloned
/// internally so callers can reuse the same noisy dataset across strategies.
pub fn simulate(task: &TaskDataset, strategy: UserStrategy, config: &SimulationConfig) -> Trace {
    let mut task = task.clone();
    let mut ledger = Ledger::new(config.cost, task.total_len());
    let mut rng_ = rng::seeded(config.seed ^ 0xe2e);
    let finetune = if config.quick_models {
        FineTuneBaseline::quick(config.seed)
    } else {
        FineTuneBaseline { seed: config.seed, ..Default::default() }
    };

    let mut expensive_runs = 0usize;
    let mut final_accuracy = 0.0f64;
    let mut reached = false;

    let run_expensive = |task: &TaskDataset, ledger: &mut Ledger, round: usize| -> f64 {
        let outcome = finetune.run(task);
        ledger.machine_seconds += outcome.simulated_seconds;
        ledger.record(round, "finetune", Some(outcome.test_accuracy));
        outcome.test_accuracy
    };

    match strategy {
        UserStrategy::NoFeasibility { step_fraction } => {
            for round in 0..config.max_rounds {
                let accuracy = run_expensive(&task, &mut ledger, round);
                expensive_runs += 1;
                final_accuracy = accuracy;
                if accuracy >= config.target_accuracy {
                    reached = true;
                    break;
                }
                if task.observed_noise_rate() == 0.0 {
                    break;
                }
                let report = clean_fraction(&mut task, step_fraction, &mut rng_);
                ledger.labels_inspected += report.inspected_count();
                ledger.record(round, "clean", None);
            }
        }
        UserStrategy::LrProxyFeasibility { clean_fraction: step } => {
            // Embeddings are computed exactly once (Section VI-A): charge the
            // inference of the best embedding up front, then each check only
            // pays LR training time.
            let zoo = zoo_for_task(&task, config.seed);
            let best = zoo
                .iter()
                .max_by(|a, b| a.cost_per_sample().total_cmp(&b.cost_per_sample()))
                .expect("zoo is not empty");
            let train_embedded = best.transform(task.train.features_view());
            let test_embedded = best.transform(task.test.features_view());
            ledger.machine_seconds += best.cost_for(task.total_len());
            let epochs = if config.quick_models { 5 } else { 20 };
            let per_check_seconds =
                LOGREG_SECONDS_PER_SAMPLE_PER_CONFIG * task.train.len() as f64 * LOGREG_GRID_SIZE as f64;

            for round in 0..config.max_rounds {
                let (err, _) = grid_search_error(
                    &train_embedded,
                    &task.train.labels,
                    &test_embedded,
                    &task.test.labels,
                    task.num_classes,
                    epochs,
                    config.seed,
                );
                ledger.machine_seconds += per_check_seconds;
                let proxy_accuracy = 1.0 - err;
                ledger.record(round, "lr-check", Some(proxy_accuracy));
                if proxy_accuracy >= config.target_accuracy || task.observed_noise_rate() == 0.0 {
                    break;
                }
                let report = clean_fraction(&mut task, step, &mut rng_);
                ledger.labels_inspected += report.inspected_count();
                ledger.record(round, "clean", None);
            }
            let accuracy = run_expensive(&task, &mut ledger, config.max_rounds);
            expensive_runs += 1;
            final_accuracy = accuracy;
            reached = accuracy >= config.target_accuracy;
        }
        UserStrategy::SnoopyFeasibility { clean_fraction: step } => {
            let zoo = zoo_for_task(&task, config.seed);
            let snoopy_config = SnoopyConfig::with_target(config.target_accuracy)
                .strategy(SelectionStrategy::SuccessiveHalvingTangent)
                .batch_fraction(0.2);
            let mut study = IncrementalStudy::bootstrap(snoopy_config, &task, &zoo);
            ledger.machine_seconds += study.initial_report().simulated_cost_seconds;
            let mut decision = study.initial_report().decision;
            ledger.record(0, "snoopy-bootstrap", Some(study.initial_report().projected_accuracy));

            let mut round = 0usize;
            while decision == FeasibilityDecision::Unrealistic
                && task.observed_noise_rate() > 0.0
                && round < config.max_rounds
            {
                let report = clean_fraction(&mut task, step, &mut rng_);
                ledger.labels_inspected += report.inspected_count();
                ledger.record(round, "clean", None);
                // Incremental re-run: a single pass over the test set, whose
                // simulated cost is negligible (the paper reports ~0.2 ms).
                let answer = study.refresh(&task);
                ledger.machine_seconds += 1e-3;
                ledger.record(round, "snoopy-check", Some(answer.projected_accuracy));
                decision = answer.decision;
                round += 1;
            }
            let accuracy = run_expensive(&task, &mut ledger, round);
            expensive_runs += 1;
            final_accuracy = accuracy;
            reached = accuracy >= config.target_accuracy;
        }
    }

    Trace {
        strategy: strategy.name(),
        total_dollars: ledger.dollars(),
        labels_inspected: ledger.labels_inspected,
        machine_seconds: ledger.machine_seconds,
        expensive_runs,
        reached_target: reached,
        final_accuracy,
        points: ledger.points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::noise::NoiseModel;
    use snoopy_data::registry::{load_with_noise, SizeScale};
    use snoopy_models::{LabelCost, MachineCost};

    fn noisy_task(seed: u64) -> TaskDataset {
        load_with_noise("sst2", SizeScale::Tiny, &NoiseModel::Uniform(0.6), seed)
    }

    fn config(label: LabelCost) -> SimulationConfig {
        SimulationConfig::new(0.80, CostScenario { label, machine: MachineCost::default() }, 7)
    }

    #[test]
    fn snoopy_strategy_runs_the_expensive_model_exactly_once() {
        let task = noisy_task(1);
        let trace = simulate(
            &task,
            UserStrategy::SnoopyFeasibility { clean_fraction: 0.05 },
            &config(LabelCost::Cheap),
        );
        assert_eq!(trace.expensive_runs, 1);
        assert!(trace.points.iter().any(|p| p.action == "snoopy-bootstrap"));
        assert!(trace.total_dollars > 0.0);
        assert!(trace.final_accuracy > 0.0);
    }

    #[test]
    fn no_feasibility_small_steps_trigger_many_expensive_runs() {
        let task = noisy_task(2);
        let frequent =
            simulate(&task, UserStrategy::NoFeasibility { step_fraction: 0.05 }, &config(LabelCost::Free));
        let coarse =
            simulate(&task, UserStrategy::NoFeasibility { step_fraction: 0.50 }, &config(LabelCost::Free));
        let snoopy = simulate(
            &task,
            UserStrategy::SnoopyFeasibility { clean_fraction: 0.05 },
            &config(LabelCost::Free),
        );
        assert!(
            frequent.expensive_runs > coarse.expensive_runs,
            "small steps should retrain more often ({} vs {})",
            frequent.expensive_runs,
            coarse.expensive_runs
        );
        assert!(snoopy.expensive_runs <= coarse.expensive_runs);
    }

    #[test]
    fn feasibility_study_saves_money_when_machine_time_dominates() {
        // Free labels: the only cost is machine time, which the feasibility
        // study slashes by avoiding repeated expensive runs — claim (I) of
        // Section VI-D.
        let task = noisy_task(3);
        let cfg = config(LabelCost::Free);
        let naive = simulate(&task, UserStrategy::NoFeasibility { step_fraction: 0.05 }, &cfg);
        let snoopy = simulate(&task, UserStrategy::SnoopyFeasibility { clean_fraction: 0.05 }, &cfg);
        assert!(
            snoopy.total_dollars < naive.total_dollars,
            "snoopy {} should be cheaper than naive {}",
            snoopy.total_dollars,
            naive.total_dollars
        );
    }

    #[test]
    fn traces_are_monotone_in_cost_and_cleaning() {
        let task = noisy_task(4);
        let trace = simulate(
            &task,
            UserStrategy::LrProxyFeasibility { clean_fraction: 0.05 },
            &config(LabelCost::Expensive),
        );
        for pair in trace.points.windows(2) {
            assert!(pair[1].dollars + 1e-12 >= pair[0].dollars);
            assert!(pair[1].labels_inspected >= pair[0].labels_inspected);
        }
        assert!(trace.points.iter().any(|p| p.action == "lr-check"));
        assert_eq!(trace.labels_inspected, trace.points.last().unwrap().labels_inspected);
    }
}
