//! User interaction strategies of the end-to-end experiment.

/// How the user decides when to (re-)train the expensive model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UserStrategy {
    /// No feasibility study: train the expensive model, and whenever it
    /// misses the target clean `step_fraction` of the data and retrain
    /// (the paper's "FineTune (step x %)" lines).
    NoFeasibility {
        /// Fraction of the dataset cleaned between expensive runs
        /// (0.01, 0.05, 0.10 or 0.50 in the paper).
        step_fraction: f64,
    },
    /// Feasibility study with the cheap LR proxy: alternate LR-proxy checks
    /// and `clean_fraction` cleaning rounds until the proxy accuracy reaches
    /// the target, then run the expensive model.
    LrProxyFeasibility {
        /// Fraction cleaned per round (1 % in the paper).
        clean_fraction: f64,
    },
    /// Feasibility study with Snoopy: one full study up front, then
    /// incremental re-runs after every `clean_fraction` cleaning round until
    /// Snoopy reports REALISTIC, then run the expensive model.
    SnoopyFeasibility {
        /// Fraction cleaned per round (1 % in the paper).
        clean_fraction: f64,
    },
}

impl UserStrategy {
    /// Name used in reports and figures.
    pub fn name(&self) -> String {
        match self {
            UserStrategy::NoFeasibility { step_fraction } => {
                format!("finetune-step-{:.0}%", step_fraction * 100.0)
            }
            UserStrategy::LrProxyFeasibility { .. } => "lr-proxy".to_string(),
            UserStrategy::SnoopyFeasibility { .. } => "snoopy".to_string(),
        }
    }

    /// The strategy line-up evaluated in Figures 9/10: four no-feasibility
    /// step sizes plus the two feasibility-study variants.
    pub fn paper_lineup() -> Vec<UserStrategy> {
        vec![
            UserStrategy::NoFeasibility { step_fraction: 0.01 },
            UserStrategy::NoFeasibility { step_fraction: 0.05 },
            UserStrategy::NoFeasibility { step_fraction: 0.10 },
            UserStrategy::NoFeasibility { step_fraction: 0.50 },
            UserStrategy::LrProxyFeasibility { clean_fraction: 0.01 },
            UserStrategy::SnoopyFeasibility { clean_fraction: 0.01 },
        ]
    }

    /// Whether this strategy consults a feasibility signal before paying for
    /// expensive training.
    pub fn uses_feasibility_study(&self) -> bool {
        !matches!(self, UserStrategy::NoFeasibility { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_descriptive() {
        let lineup = UserStrategy::paper_lineup();
        assert_eq!(lineup.len(), 6);
        let names: Vec<String> = lineup.iter().map(|s| s.name()).collect();
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
        assert!(names.contains(&"snoopy".to_string()));
        assert!(names.iter().any(|n| n.contains("50%")));
    }

    #[test]
    fn feasibility_flag() {
        assert!(!UserStrategy::NoFeasibility { step_fraction: 0.1 }.uses_feasibility_study());
        assert!(UserStrategy::SnoopyFeasibility { clean_fraction: 0.01 }.uses_feasibility_study());
        assert!(UserStrategy::LrProxyFeasibility { clean_fraction: 0.01 }.uses_feasibility_study());
    }
}
