//! The server-side view of the use case: feasibility studies as a
//! multi-tenant service.
//!
//! The paper pitches feasibility studies as a cheap, repeatable check users
//! run *before* spending on training or labelling. Operationally that means
//! a server holding many users' tasks warm and answering repeated study
//! requests — exactly what [`FeasibilityService`] provides. This module
//! packages the serving scenario the benchmarks measure: `N` tenants each
//! submitting `R` study requests, every round served concurrently on the
//! shared worker pool, with warm per-tenant embedding caches after each
//! tenant's first request.
//!
//! The scenario asserts its own correctness while it runs: every repeated
//! request must report the same winner and BER estimate as the tenant's
//! first (the service's determinism contract), and requests after the first
//! must charge zero simulated inference (the warm-cache contract).

use snoopy_core::{FeasibilityService, SnoopyConfig, StudyReport, StudyRequest};
use snoopy_data::TaskDataset;
use snoopy_embeddings::{zoo_for_task, Transformation};
use std::time::Instant;

/// Outcome of one serving scenario run.
pub struct ServerRun {
    /// Final report per tenant (identical to every earlier round's report).
    pub reports: Vec<StudyReport>,
    /// Total studies answered (`tenants × requests_per_tenant`).
    pub total_studies: usize,
    /// Wall-clock seconds for the whole scenario.
    pub wall_clock_seconds: f64,
    /// Aggregate throughput: `total_studies / wall_clock_seconds`.
    pub studies_per_second: f64,
    /// Progress events streamed across all rounds and tenants.
    pub progress_events: usize,
}

/// Runs the serving scenario: every tenant submits `requests_per_tenant`
/// study requests, one per serving round; all tenants of a round are served
/// concurrently by one [`FeasibilityService`] (so round 1 is cold, every
/// later round is warm from the per-tenant embedding caches).
///
/// # Panics
/// Panics if a repeated request reports a different winner or BER estimate
/// than the tenant's first, or if a warm request charges inference cost.
pub fn run_server_scenario(
    tasks: &[TaskDataset],
    requests_per_tenant: usize,
    config: SnoopyConfig,
) -> ServerRun {
    assert!(!tasks.is_empty() && requests_per_tenant > 0, "scenario needs tenants and requests");
    let zoos: Vec<Vec<Box<dyn Transformation>>> = tasks.iter().map(|task| zoo_for_task(task, 7)).collect();
    let mut service = FeasibilityService::new();
    let mut progress_events = 0usize;
    let mut first_round: Option<Vec<StudyReport>> = None;
    let mut reports = Vec::new();
    let start = Instant::now();
    for round in 0..requests_per_tenant {
        let requests: Vec<StudyRequest<'_>> =
            tasks.iter().zip(&zoos).map(|(task, zoo)| StudyRequest { task, zoo, config }).collect();
        reports = service.serve_with_progress(&requests, |_| progress_events += 1);
        match &first_round {
            None => first_round = Some(reports.clone()),
            Some(first) => {
                for (warm, cold) in reports.iter().zip(first) {
                    assert_eq!(
                        warm.best_transformation, cold.best_transformation,
                        "a repeated request must report the same winner"
                    );
                    assert_eq!(
                        warm.ber_estimate, cold.ber_estimate,
                        "a repeated request must report the same BER estimate"
                    );
                    assert_eq!(
                        warm.simulated_cost_seconds, 0.0,
                        "round {round}: warm requests must charge no inference"
                    );
                }
            }
        }
    }
    let wall_clock_seconds = start.elapsed().as_secs_f64();
    let total_studies = tasks.len() * requests_per_tenant;
    ServerRun {
        reports,
        total_studies,
        wall_clock_seconds,
        studies_per_second: total_studies as f64 / wall_clock_seconds,
        progress_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_core::FeasibilityStudy;
    use snoopy_data::registry::{load_clean, SizeScale};

    #[test]
    fn scenario_matches_one_shot_studies_and_streams_progress() {
        let tasks = vec![load_clean("mnist", SizeScale::Tiny, 1), load_clean("sst2", SizeScale::Tiny, 3)];
        let config = SnoopyConfig::with_target(0.85).batch_fraction(0.25);
        let run = run_server_scenario(&tasks, 3, config);
        assert_eq!(run.total_studies, 6);
        assert!(run.progress_events > 0);
        assert!(run.studies_per_second > 0.0);
        for (report, task) in run.reports.iter().zip(&tasks) {
            let zoo = zoo_for_task(task, 7);
            let solo = FeasibilityStudy::new(config).run(task, &zoo);
            assert_eq!(report.best_transformation, solo.best_transformation);
            assert_eq!(report.ber_estimate, solo.ber_estimate);
        }
    }
}
