//! # snoopy-e2e
//!
//! The end-to-end label-cleaning use case of Section VI-D.
//!
//! A user holds a noisy dataset and a target accuracy, and can repeatedly
//! (1) clean a portion of the labels, (2) train an expensive high-accuracy
//! model, or (3) run a feasibility study (the cheap LR proxy or Snoopy).
//! The simulator plays out the paper's interaction models
//!
//! * **without** a feasibility study: train the expensive model, clean a
//!   fixed step (1 %, 5 %, 10 %, 50 %) whenever the target is missed, repeat;
//! * **with** a feasibility study: alternate cheap feasibility checks and 1 %
//!   cleaning rounds until the study reports REALISTIC, then train the
//!   expensive model once (re-cleaning further if the single expensive run
//!   still misses the target);
//!
//! under the paper's cost scenarios (free / cheap / expensive labels,
//! 0.9 $/GPU-hour), producing the cost-versus-cleaning traces of
//! Figures 9, 10 and 21–27.

pub mod oocore;
pub mod server;
pub mod simulate;
pub mod sliding;
pub mod strategy;

pub use oocore::{run_oocore_scenario, OocoreRun};
pub use server::{run_server_scenario, ServerRun};
pub use simulate::{simulate, SimulationConfig, Trace, TracePoint};
pub use sliding::{run_sliding_scenario, SlidingRun};
pub use strategy::UserStrategy;
