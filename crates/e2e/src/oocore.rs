//! The out-of-core use case end to end: a dataset too large for the shard
//! budget, written to the versioned disk format, studied through the
//! shard-paged index, and checked bit for bit against the fully-resident
//! answer.
//!
//! The scenario plays the deployment story the format exists for: features
//! and labels land on disk once, every later study memory-maps them and
//! pages cluster shards under a byte budget a quarter of the training
//! payload, with the default prefetch pipeline overlapping shard
//! materialisation with scanning. The scenario asserts its own correctness
//! while it runs — the budget must actually be exceeded (≥ 2 shard
//! evictions), the pipeline must land at least one prefetch commit, peak
//! residency must respect the `budget + max_shard × (1 + prefetch_depth)`
//! contract, and the paged [`snoopy_core::oocore::OutOfCoreReport`] must
//! match the resident reference bit for bit, estimates included.

use std::path::Path;

use snoopy_core::oocore::{run_oocore_study, run_resident_reference, OutOfCoreConfig};
use snoopy_data::gaussian::{GaussianMixture, GaussianMixtureSpec};
use snoopy_data::DiskLabeledDataset;
use snoopy_linalg::{rng, LabeledView};

/// Outcome of one out-of-core scenario run.
#[derive(Debug, Clone)]
pub struct OocoreRun {
    /// The aggregated (minimum) BER estimate — identical between the paged
    /// and resident runs by the time this struct exists.
    pub min_estimate: f64,
    /// Shards faulted in across the paged study.
    pub shards_faulted: usize,
    /// Shards evicted across the paged study (≥ 2 by assertion).
    pub shards_evicted: usize,
    /// Bytes paged in across the study.
    pub bytes_faulted: usize,
    /// Speculative shard loads issued by the prefetch pipeline.
    pub shards_prefetched: usize,
    /// Prefetched shards committed at visit time (≥ 1 by assertion).
    pub prefetch_committed: usize,
    /// Prefetched shards dropped without a commit.
    pub prefetch_wasted: usize,
    /// The prefetch depth the study ran at.
    pub prefetch_depth: usize,
    /// The resident shard budget the study ran under.
    pub budget_bytes: usize,
    /// Peak resident bytes observed (≤ budget + largest shard).
    pub peak_bytes: usize,
    /// Training rows paged from disk.
    pub train_rows: usize,
    /// Evaluation rows.
    pub eval_rows: usize,
}

/// Runs the out-of-core scenario in `dir` (a scratch directory owned by the
/// caller): samples `rows` labelled rows from a 4-class Gaussian mixture,
/// writes them as a [`DiskLabeledDataset`], and studies them under a shard
/// budget of one quarter of the training payload.
///
/// # Panics
/// Panics if the paged study diverges from the resident reference in any
/// bit, if fewer than 2 shards were evicted (the budget wasn't actually
/// binding), or if peak residency exceeds `budget + one shard`.
pub fn run_oocore_scenario(dir: &Path, rows: usize, seed: u64) -> OocoreRun {
    let num_classes = 4;
    let mix = GaussianMixture::from_spec(&GaussianMixtureSpec {
        num_classes,
        latent_dim: 6,
        class_sep: 2.5,
        within_std: 1.0,
        seed,
    });
    let mut r = rng::seeded(seed ^ 0x00c0_4e5e);
    let (x, y) = mix.sample(rows, &mut r);
    DiskLabeledDataset::write(dir, &LabeledView::from_parts(x.view(), &y, num_classes))
        .expect("write disk dataset");

    let eval_rows = (rows / 5).max(1);
    let train_rows = rows - eval_rows;
    let train_payload = train_rows * x.cols() * std::mem::size_of::<f32>();
    let cfg = OutOfCoreConfig {
        // A quarter of the raw training payload: the dataset is ≥ 4× the
        // resident budget, so the study cannot avoid paging.
        shard_budget_bytes: (train_payload / 4).max(1),
        nlist: 8,
        eval_rows,
        quantize: false,
        ..OutOfCoreConfig::default()
    };

    let paged = run_oocore_study(dir, &cfg).expect("paged study");
    let resident = run_resident_reference(dir, &cfg).expect("resident reference");
    assert_eq!(paged.table, resident.table, "paged table must be bit-identical to resident");
    assert_eq!(paged.estimates, resident.estimates, "estimates must match bit for bit");
    assert!(paged.paging.shards_evicted >= 2, "the budget must force ≥ 2 evictions, got {:?}", paged.paging);
    assert!(
        paged.paging.prefetch_committed >= 1,
        "the pipeline must land at least one prefetch commit, got {:?}",
        paged.paging
    );
    let rb = paged.residency;
    let allowance = rb.max_shard * (1 + cfg.prefetch_depth);
    assert!(
        rb.peak <= rb.budget + allowance,
        "peak residency {} exceeds budget {} + (1 + {}) x largest shard {}",
        rb.peak,
        rb.budget,
        cfg.prefetch_depth,
        rb.max_shard
    );

    OocoreRun {
        min_estimate: paged.min_estimate,
        shards_faulted: paged.paging.shards_faulted,
        shards_evicted: paged.paging.shards_evicted,
        bytes_faulted: paged.paging.bytes_faulted,
        shards_prefetched: paged.paging.shards_prefetched,
        prefetch_committed: paged.paging.prefetch_committed,
        prefetch_wasted: paged.paging.prefetch_wasted,
        prefetch_depth: cfg.prefetch_depth,
        budget_bytes: rb.budget,
        peak_bytes: rb.peak,
        train_rows: paged.train_rows,
        eval_rows: paged.eval_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_testutil::TempDir;

    #[test]
    fn oocore_smoke_pages_and_matches_resident() {
        let dir = TempDir::new("e2e_oocore");
        let run = run_oocore_scenario(dir.path(), 600, 42);
        assert!(run.shards_evicted >= 2);
        // Every eviction victim was admitted by a demand fault or a commit.
        assert!(run.shards_faulted + run.prefetch_committed >= run.shards_evicted);
        assert!(run.prefetch_committed >= 1, "smoke must exercise the pipeline");
        assert_eq!(
            run.shards_prefetched,
            run.prefetch_committed + run.prefetch_wasted,
            "every speculative load ends committed or wasted"
        );
        assert!(run.peak_bytes <= run.budget_bytes + run.bytes_faulted);
        assert!((0.0..=1.0).contains(&run.min_estimate));
        assert_eq!(run.train_rows + run.eval_rows, 600);
    }
}
