//! Thread-safe cache of transformed feature matrices.
//!
//! Running inference to obtain embeddings is the dominant cost of a
//! feasibility study (Section V). Within one study the same transformed
//! features are needed repeatedly — by the bandit scheduler, by the
//! convergence plots, and by the incremental re-runs after label cleaning
//! (cleaning never changes features, so cached embeddings stay valid). The
//! cache also tracks how much *simulated* inference cost has been paid so the
//! experiment harness can report Figure 4/5-style cost numbers.

use crate::transform::{apply_to_task, Transformation, TransformedTask};
use snoopy_data::TaskDataset;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Mutex;

/// Cache of per-transformation embeddings for one task.
#[derive(Default)]
pub struct EmbeddingCache {
    entries: Mutex<HashMap<String, Arc<TransformedTask>>>,
    simulated_cost: Mutex<f64>,
}

impl EmbeddingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached embedding for `transformation`, computing (and
    /// charging for) it on first use.
    pub fn get_or_compute(
        &self,
        transformation: &dyn Transformation,
        task: &TaskDataset,
    ) -> Arc<TransformedTask> {
        {
            let entries = self.entries.lock().expect("embedding cache lock poisoned");
            if let Some(hit) = entries.get(transformation.name()) {
                return Arc::clone(hit);
            }
        }
        // Compute outside the lock: transformations can be expensive and
        // different transformations may be requested concurrently.
        let computed = Arc::new(apply_to_task(transformation, task));
        let mut entries = self.entries.lock().expect("embedding cache lock poisoned");
        let entry = entries.entry(transformation.name().to_string()).or_insert_with(|| {
            *self.simulated_cost.lock().expect("embedding cache lock poisoned") += computed.inference_cost;
            Arc::clone(&computed)
        });
        Arc::clone(entry)
    }

    /// Whether an embedding is already cached.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.lock().expect("embedding cache lock poisoned").contains_key(name)
    }

    /// Number of cached embeddings.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("embedding cache lock poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total simulated inference cost charged so far, in seconds.
    pub fn simulated_cost(&self) -> f64 {
        *self.simulated_cost.lock().expect("embedding cache lock poisoned")
    }

    /// Drops all cached embeddings (the simulated cost already paid is kept —
    /// recomputation would charge again, as it would in reality).
    pub fn clear(&self) {
        self.entries.lock().expect("embedding cache lock poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::Identity;
    use crate::registry::vision_zoo;
    use snoopy_data::registry::{load_clean, SizeScale};

    #[test]
    fn caching_avoids_double_charging() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let cache = EmbeddingCache::new();
        let zoo = vision_zoo(&task, 2);
        let expensive = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let first = cache.get_or_compute(expensive.as_ref(), &task);
        let cost_after_first = cache.simulated_cost();
        let second = cache.get_or_compute(expensive.as_ref(), &task);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.simulated_cost(), cost_after_first);
        assert!(cost_after_first > 0.0);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains("efficientnet-b7"));
    }

    #[test]
    fn identity_costs_nothing() {
        let task = load_clean("mnist", SizeScale::Tiny, 3);
        let cache = EmbeddingCache::new();
        cache.get_or_compute(&Identity::new(task.raw_dim()), &task);
        assert_eq!(cache.simulated_cost(), 0.0);
    }

    #[test]
    fn clear_keeps_cost_but_drops_entries() {
        let task = load_clean("mnist", SizeScale::Tiny, 4);
        let cache = EmbeddingCache::new();
        let zoo = vision_zoo(&task, 5);
        cache.get_or_compute(zoo.last().unwrap().as_ref(), &task);
        let cost = cache.simulated_cost();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.simulated_cost(), cost);
    }
}
