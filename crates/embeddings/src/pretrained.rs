//! Simulated pre-trained embeddings.
//!
//! A real pre-trained encoder (ResNet, BERT, …) maps raw inputs to a
//! representation in which the task's semantic structure is far more linearly
//! separable than in pixel/bag-of-words space — but imperfectly so, and the
//! degree of imperfection (the transformation bias `δ_f` of Section IV-B)
//! varies across models in a way the user cannot know in advance. That is the
//! only property Snoopy's estimator interacts with.
//!
//! [`SimulatedPretrained`] reproduces it with a deterministic map
//!
//! ```text
//! f(x) = fidelity · tanh(gain · (x·L)·Q)  ⊕  (1 − fidelity) · tanh(x·B)
//! ```
//!
//! where `L` is the task's latent-recovery map (from the generative model),
//! `Q` an orthonormal expansion to the embedding's nominal width, and `B` a
//! fixed random matrix producing structured distortion. A fidelity of 1
//! recovers the latent space (tiny `δ_f`); a fidelity of 0 yields a random
//! nonlinear feature map (large `δ_f`). The cost per sample models GPU
//! inference and dominates the feasibility-study runtime exactly as in the
//! paper (Section V, "Computational Bottleneck").

use crate::transform::Transformation;
use snoopy_linalg::projection::random_orthonormal_map;
use snoopy_linalg::{rng, DatasetView, Matrix};

/// A simulated pre-trained embedding.
pub struct SimulatedPretrained {
    name: String,
    output_dim: usize,
    fidelity: f64,
    cost_per_sample: f64,
    /// Raw → latent recovery map (`d_raw × d_latent`).
    latent_map: Matrix,
    /// Latent → embedding expansion (`d_latent × output_dim`).
    expansion: Matrix,
    /// Raw → embedding distortion map (`d_raw × output_dim`).
    distortion: Matrix,
    /// Gain applied before the signal nonlinearity.
    gain: f32,
}

impl SimulatedPretrained {
    /// Builds a simulated embedding.
    ///
    /// * `latent_map` — the task's generative latent-recovery map,
    /// * `fidelity` — in `[0, 1]`, how much of the latent structure the
    ///   embedding captures,
    /// * `output_dim` — nominal width (e.g. 2048 for ResNet50-v2),
    /// * `cost_per_sample` — simulated inference seconds per sample,
    /// * `seed` — determines the expansion and distortion matrices.
    pub fn new(
        name: &str,
        latent_map: &Matrix,
        raw_dim: usize,
        output_dim: usize,
        fidelity: f64,
        cost_per_sample: f64,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&fidelity), "fidelity must be in [0, 1]");
        assert_eq!(latent_map.rows(), raw_dim, "latent map must start from the raw dimension");
        let latent_dim = latent_map.cols();
        let expansion = random_orthonormal_map(latent_dim, output_dim.min(latent_dim).max(1), seed ^ 0xe9);
        // If the nominal width exceeds the latent dimension, pad the expansion
        // with additional random orthonormal-ish directions so the embedding
        // has the advertised width (extra coordinates carry no signal, as the
        // trailing dimensions of real embeddings often do).
        let expansion = if output_dim > expansion.cols() {
            let extra = random_orthonormal_map(latent_dim, output_dim - expansion.cols(), seed ^ 0x77aa);
            concat_columns(&expansion, &extra)
        } else {
            expansion
        };
        let mut r = rng::seeded(seed ^ 0xd157);
        let scale = 1.0 / (raw_dim as f64).sqrt();
        let distortion = Matrix::from_fn(raw_dim, output_dim, |_, _| (rng::normal(&mut r) * scale) as f32);
        Self {
            name: name.to_string(),
            output_dim,
            fidelity,
            cost_per_sample,
            latent_map: latent_map.clone(),
            expansion,
            distortion,
            gain: 1.0,
        }
    }

    /// The fidelity knob (useful for tests and the theory experiments).
    pub fn fidelity(&self) -> f64 {
        self.fidelity
    }
}

fn concat_columns(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows());
    Matrix::from_fn(a.rows(), a.cols() + b.cols(), |r, c| {
        if c < a.cols() {
            a.get(r, c)
        } else {
            b.get(r, c - a.cols())
        }
    })
}

impl Transformation for SimulatedPretrained {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn cost_per_sample(&self) -> f64 {
        self.cost_per_sample
    }

    fn transform(&self, x: DatasetView<'_>) -> Matrix {
        // Signal path: recover latent coordinates, expand to the nominal
        // width, squash.
        let latent = x.matmul(&self.latent_map);
        let mut signal = latent.matmul(&self.expansion);
        for v in signal.data_mut() {
            *v = (self.gain * *v).tanh();
        }
        // Distortion path: random nonlinear features of the raw input.
        let mut noise = x.matmul(&self.distortion);
        for v in noise.data_mut() {
            *v = v.tanh();
        }
        let alpha = self.fidelity as f32;
        let mut out = signal;
        out.scale(alpha);
        noise.scale(1.0 - alpha);
        out.axpy(1.0, &noise);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};
    use snoopy_knn::{BruteForceIndex, Metric};

    fn one_nn_error_through(t: &dyn Transformation, task: &snoopy_data::TaskDataset) -> f64 {
        let train = t.transform_matrix(&task.train.features);
        let test = t.transform_matrix(&task.test.features);
        BruteForceIndex::new(&train, &task.train.labels, task.num_classes, Metric::SquaredEuclidean)
            .one_nn_error(&test, &task.test.labels)
    }

    #[test]
    fn output_has_requested_width() {
        let task = load_clean("cifar10", SizeScale::Tiny, 5);
        let map = task.meta.latent_map.clone().unwrap();
        let emb = SimulatedPretrained::new("resnet50-v2", &map, task.raw_dim(), 64, 0.8, 1e-3, 7);
        let out = emb.transform_matrix(&task.test.features);
        assert_eq!(out.cols(), 64);
        assert_eq!(out.rows(), task.test.len());
        assert_eq!(emb.output_dim(), 64);
        assert!((emb.fidelity() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn higher_fidelity_gives_lower_1nn_error() {
        let task = load_clean("cifar10", SizeScale::Tiny, 6);
        let map = task.meta.latent_map.clone().unwrap();
        let good = SimulatedPretrained::new("good", &map, task.raw_dim(), 48, 0.95, 1e-3, 11);
        let bad = SimulatedPretrained::new("bad", &map, task.raw_dim(), 48, 0.05, 1e-3, 11);
        let err_good = one_nn_error_through(&good, &task);
        let err_bad = one_nn_error_through(&bad, &task);
        assert!(
            err_good < err_bad,
            "high-fidelity embedding should dominate: good {err_good:.3}, bad {err_bad:.3}"
        );
    }

    #[test]
    fn good_embedding_beats_raw_features() {
        let task = load_clean("cifar10", SizeScale::Tiny, 8);
        let map = task.meta.latent_map.clone().unwrap();
        let good = SimulatedPretrained::new("good", &map, task.raw_dim(), 48, 0.92, 1e-3, 13);
        let err_good = one_nn_error_through(&good, &task);
        let raw_err = BruteForceIndex::new(
            &task.train.features,
            &task.train.labels,
            task.num_classes,
            Metric::SquaredEuclidean,
        )
        .one_nn_error(&task.test.features, &task.test.labels);
        assert!(
            err_good <= raw_err + 0.02,
            "pre-trained embedding ({err_good:.3}) should be at least as good as raw features ({raw_err:.3})"
        );
    }

    #[test]
    fn transform_is_deterministic() {
        let task = load_clean("sst2", SizeScale::Tiny, 9);
        let map = task.meta.latent_map.clone().unwrap();
        let emb = SimulatedPretrained::new("bert-base", &map, task.raw_dim(), 32, 0.7, 5e-3, 21);
        let a = emb.transform_matrix(&task.test.features);
        let b = emb.transform_matrix(&task.test.features);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    #[should_panic(expected = "fidelity must be in")]
    fn rejects_bad_fidelity() {
        let task = load_clean("sst2", SizeScale::Tiny, 10);
        let map = task.meta.latent_map.clone().unwrap();
        let _ = SimulatedPretrained::new("x", &map, task.raw_dim(), 8, 1.5, 1e-3, 1);
    }
}
