//! # snoopy-embeddings
//!
//! The feature-transformation zoo Snoopy consults.
//!
//! The paper runs its 1NN Bayes-error estimator on top of 15–20 publicly
//! available pre-trained embeddings per modality (Tables III and IV:
//! AlexNet … EfficientNet-B7 for vision, NNLM … XLNet-Large for text), plus
//! PCA and the raw representation. Offline, those checkpoints are replaced by
//! *simulated* pre-trained encoders: deterministic nonlinear maps that blend
//! a latent-recovery signal (how much of the task's generative structure the
//! embedding captures — its *fidelity*) with structured distortion. Each zoo
//! entry keeps the paper's embedding name, output dimensionality, and a
//! per-sample inference cost matching the relative cost ordering of the
//! original models, so the successive-halving and end-to-end cost experiments
//! exercise the same trade-offs.
//!
//! The crate provides:
//!
//! * the [`Transformation`] trait ([`transform`]),
//! * classical members of the zoo: identity, standardisation, PCA, random
//!   projection, and an LDA/NCA-style supervised projection ([`basic`]),
//! * simulated pre-trained encoders ([`pretrained`]),
//! * the vision and NLP registries with cost model ([`registry`]),
//! * a thread-safe embedding cache ([`cache`]).

pub mod basic;
pub mod cache;
pub mod pretrained;
pub mod registry;
pub mod transform;

pub use cache::EmbeddingCache;
pub use pretrained::SimulatedPretrained;
pub use registry::{nlp_zoo, vision_zoo, zoo_for_task, ZooEntry};
pub use transform::{Transformation, TransformedTask};
