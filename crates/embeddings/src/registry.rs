//! The embedding registries (Tables III and IV analogues) and their cost
//! model.
//!
//! Every entry keeps the original embedding's name, nominal output width and
//! a per-sample inference cost whose *ordering and rough magnitude* match the
//! public models (large NLP transformers are 1–2 orders of magnitude slower
//! than small vision CNNs, PCA and the identity are essentially free). Actual
//! simulated embeddings use a proportionally reduced width so that exact 1NN
//! stays fast on a laptop; the nominal width is retained for reporting
//! (`exp_table3_4`).
//!
//! Fidelities model how much task-relevant structure each embedding captures.
//! They broadly increase with model capacity — as observed in the paper,
//! bigger/better-pre-trained models usually yield lower 1NN error — but each
//! task adds a small deterministic, task-specific perturbation so that *which*
//! embedding is optimal varies by dataset (the reason Fig. 6 argues the
//! minimum aggregation is necessary).

use crate::basic::{
    Identity, PcaTransform, RandomProjectionTransform, StandardizeTransform, SupervisedProjection,
};
use crate::pretrained::SimulatedPretrained;
use crate::transform::Transformation;
use snoopy_data::{Modality, TaskDataset};

/// Static description of one registry entry.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Embedding name as reported in Tables III/IV.
    pub name: &'static str,
    /// Nominal output dimensionality of the original model.
    pub nominal_dim: usize,
    /// Source hub in the paper (for documentation/reporting only).
    pub source: &'static str,
    /// Base fidelity of the simulated replica.
    pub fidelity: f64,
    /// Simulated inference cost in seconds per sample.
    pub cost_per_sample: f64,
}

/// Table III: vision embeddings.
pub fn vision_entries() -> Vec<ZooEntry> {
    vec![
        ZooEntry {
            name: "alexnet",
            nominal_dim: 4096,
            source: "pytorch-hub",
            fidelity: 0.58,
            cost_per_sample: 0.8e-3,
        },
        ZooEntry {
            name: "googlenet",
            nominal_dim: 1024,
            source: "pytorch-hub",
            fidelity: 0.62,
            cost_per_sample: 1.0e-3,
        },
        ZooEntry {
            name: "vgg16",
            nominal_dim: 4096,
            source: "pytorch-hub",
            fidelity: 0.66,
            cost_per_sample: 3.0e-3,
        },
        ZooEntry {
            name: "vgg19",
            nominal_dim: 4096,
            source: "pytorch-hub",
            fidelity: 0.67,
            cost_per_sample: 3.2e-3,
        },
        ZooEntry {
            name: "inception-v3",
            nominal_dim: 2048,
            source: "tf-hub",
            fidelity: 0.70,
            cost_per_sample: 2.0e-3,
        },
        ZooEntry {
            name: "resnet50-v2",
            nominal_dim: 2048,
            source: "tf-hub",
            fidelity: 0.73,
            cost_per_sample: 2.2e-3,
        },
        ZooEntry {
            name: "resnet101-v2",
            nominal_dim: 2048,
            source: "tf-hub",
            fidelity: 0.75,
            cost_per_sample: 3.5e-3,
        },
        ZooEntry {
            name: "resnet152-v2",
            nominal_dim: 2048,
            source: "tf-hub",
            fidelity: 0.76,
            cost_per_sample: 4.5e-3,
        },
        ZooEntry {
            name: "efficientnet-b0",
            nominal_dim: 1280,
            source: "tf-hub",
            fidelity: 0.74,
            cost_per_sample: 1.5e-3,
        },
        ZooEntry {
            name: "efficientnet-b1",
            nominal_dim: 1280,
            source: "tf-hub",
            fidelity: 0.76,
            cost_per_sample: 2.0e-3,
        },
        ZooEntry {
            name: "efficientnet-b2",
            nominal_dim: 1408,
            source: "tf-hub",
            fidelity: 0.78,
            cost_per_sample: 2.5e-3,
        },
        ZooEntry {
            name: "efficientnet-b3",
            nominal_dim: 1536,
            source: "tf-hub",
            fidelity: 0.80,
            cost_per_sample: 3.5e-3,
        },
        ZooEntry {
            name: "efficientnet-b4",
            nominal_dim: 1792,
            source: "tf-hub",
            fidelity: 0.83,
            cost_per_sample: 5.0e-3,
        },
        ZooEntry {
            name: "efficientnet-b5",
            nominal_dim: 2048,
            source: "tf-hub",
            fidelity: 0.86,
            cost_per_sample: 7.0e-3,
        },
        ZooEntry {
            name: "efficientnet-b6",
            nominal_dim: 2304,
            source: "tf-hub",
            fidelity: 0.88,
            cost_per_sample: 9.0e-3,
        },
        ZooEntry {
            name: "efficientnet-b7",
            nominal_dim: 2560,
            source: "tf-hub",
            fidelity: 0.90,
            cost_per_sample: 12.0e-3,
        },
    ]
}

/// Table IV: NLP embeddings.
pub fn nlp_entries() -> Vec<ZooEntry> {
    vec![
        ZooEntry {
            name: "nnlm-en-50",
            nominal_dim: 50,
            source: "tf-hub",
            fidelity: 0.45,
            cost_per_sample: 0.3e-3,
        },
        ZooEntry {
            name: "nnlm-en-50-norm",
            nominal_dim: 50,
            source: "tf-hub",
            fidelity: 0.47,
            cost_per_sample: 0.3e-3,
        },
        ZooEntry {
            name: "nnlm-en-128",
            nominal_dim: 128,
            source: "tf-hub",
            fidelity: 0.52,
            cost_per_sample: 0.5e-3,
        },
        ZooEntry {
            name: "nnlm-en-128-norm",
            nominal_dim: 128,
            source: "tf-hub",
            fidelity: 0.54,
            cost_per_sample: 0.5e-3,
        },
        ZooEntry {
            name: "elmo",
            nominal_dim: 1024,
            source: "tf-hub",
            fidelity: 0.68,
            cost_per_sample: 50.0e-3,
        },
        ZooEntry { name: "use", nominal_dim: 512, source: "tf-hub", fidelity: 0.72, cost_per_sample: 2.0e-3 },
        ZooEntry {
            name: "use-large",
            nominal_dim: 512,
            source: "tf-hub",
            fidelity: 0.78,
            cost_per_sample: 20.0e-3,
        },
        ZooEntry {
            name: "bert-base-cased-pooled",
            nominal_dim: 768,
            source: "huggingface",
            fidelity: 0.66,
            cost_per_sample: 10.0e-3,
        },
        ZooEntry {
            name: "bert-base-uncased-pooled",
            nominal_dim: 768,
            source: "huggingface",
            fidelity: 0.67,
            cost_per_sample: 10.0e-3,
        },
        ZooEntry {
            name: "bert-base-cased",
            nominal_dim: 768,
            source: "huggingface",
            fidelity: 0.74,
            cost_per_sample: 10.0e-3,
        },
        ZooEntry {
            name: "bert-base-uncased",
            nominal_dim: 768,
            source: "huggingface",
            fidelity: 0.75,
            cost_per_sample: 10.0e-3,
        },
        ZooEntry {
            name: "bert-large-cased-pooled",
            nominal_dim: 1024,
            source: "huggingface",
            fidelity: 0.70,
            cost_per_sample: 30.0e-3,
        },
        ZooEntry {
            name: "bert-large-uncased-pooled",
            nominal_dim: 1024,
            source: "huggingface",
            fidelity: 0.71,
            cost_per_sample: 30.0e-3,
        },
        ZooEntry {
            name: "bert-large-cased",
            nominal_dim: 1024,
            source: "huggingface",
            fidelity: 0.79,
            cost_per_sample: 30.0e-3,
        },
        ZooEntry {
            name: "bert-large-uncased",
            nominal_dim: 1024,
            source: "huggingface",
            fidelity: 0.80,
            cost_per_sample: 30.0e-3,
        },
        ZooEntry {
            name: "xlnet",
            nominal_dim: 768,
            source: "huggingface",
            fidelity: 0.84,
            cost_per_sample: 40.0e-3,
        },
        ZooEntry {
            name: "xlnet-large",
            nominal_dim: 1024,
            source: "huggingface",
            fidelity: 0.87,
            cost_per_sample: 80.0e-3,
        },
    ]
}

/// Deterministic task-specific fidelity perturbation in `[-0.06, 0.06]`.
///
/// Real embeddings transfer unevenly across tasks (XLNet beats USE-Large on
/// IMDB but loses on SST2 in the paper's Fig. 6); hashing the task name with
/// the embedding name reproduces that behaviour deterministically.
pub fn task_fidelity_jitter(task_name: &str, embedding_name: &str) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in task_name.bytes().chain("::".bytes()).chain(embedding_name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (((h >> 16) % 10_000) as f64 / 10_000.0 - 0.5) * 0.12
}

/// Reduced width actually used by the simulated embedding (keeps exact 1NN
/// fast while preserving the ordering of nominal widths).
pub fn simulated_dim(nominal_dim: usize) -> usize {
    (nominal_dim / 32).clamp(16, 96)
}

/// Builds the full vision zoo for a task: raw, PCA32/64/128, NCA, a random
/// projection, and the 16 simulated pre-trained encoders of Table III.
pub fn vision_zoo(task: &TaskDataset, seed: u64) -> Vec<Box<dyn Transformation>> {
    let mut zoo: Vec<Box<dyn Transformation>> = Vec::new();
    let raw_dim = task.raw_dim();
    zoo.push(Box::new(Identity::new(raw_dim)));
    for k in [32usize, 64, 128] {
        if k < raw_dim {
            zoo.push(Box::new(PcaTransform::fit(&task.train.features, k)));
        }
    }
    zoo.push(Box::new(SupervisedProjection::fit(
        &task.train.features,
        &task.train.labels,
        task.num_classes,
        16,
    )));
    zoo.push(Box::new(RandomProjectionTransform::new(raw_dim, 32.min(raw_dim), seed ^ 0x52)));
    if let Some(map) = &task.meta.latent_map {
        for (i, entry) in vision_entries().into_iter().enumerate() {
            let fidelity = (entry.fidelity + task_fidelity_jitter(&task.name, entry.name)).clamp(0.05, 0.98);
            zoo.push(Box::new(SimulatedPretrained::new(
                entry.name,
                map,
                raw_dim,
                simulated_dim(entry.nominal_dim),
                fidelity,
                entry.cost_per_sample,
                seed.wrapping_add(i as u64 * 131),
            )));
        }
    }
    zoo
}

/// Builds the full NLP zoo for a task: raw term frequencies, standardised
/// frequencies, PCA64, and the 17 simulated pre-trained encoders of Table IV.
pub fn nlp_zoo(task: &TaskDataset, seed: u64) -> Vec<Box<dyn Transformation>> {
    let mut zoo: Vec<Box<dyn Transformation>> = Vec::new();
    let raw_dim = task.raw_dim();
    zoo.push(Box::new(Identity::new(raw_dim)));
    zoo.push(Box::new(StandardizeTransform::fit(&task.train.features)));
    if raw_dim > 64 {
        zoo.push(Box::new(PcaTransform::fit(&task.train.features, 64)));
    }
    if let Some(map) = &task.meta.latent_map {
        for (i, entry) in nlp_entries().into_iter().enumerate() {
            let fidelity = (entry.fidelity + task_fidelity_jitter(&task.name, entry.name)).clamp(0.05, 0.98);
            zoo.push(Box::new(SimulatedPretrained::new(
                entry.name,
                map,
                raw_dim,
                simulated_dim(entry.nominal_dim),
                fidelity,
                entry.cost_per_sample,
                seed.wrapping_add(i as u64 * 173),
            )));
        }
    }
    zoo
}

/// Builds the zoo appropriate for the task's modality.
pub fn zoo_for_task(task: &TaskDataset, seed: u64) -> Vec<Box<dyn Transformation>> {
    match task.meta.modality {
        Modality::Vision => vision_zoo(task, seed),
        Modality::Text => nlp_zoo(task, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};

    #[test]
    fn registries_match_table_sizes() {
        assert_eq!(vision_entries().len(), 16);
        assert_eq!(nlp_entries().len(), 17);
        // Cost ordering: EfficientNet-B7 is the most expensive vision model,
        // XLNet-Large the most expensive NLP model.
        let vis = vision_entries();
        let max_vis = vis.iter().max_by(|a, b| a.cost_per_sample.total_cmp(&b.cost_per_sample)).unwrap();
        assert_eq!(max_vis.name, "efficientnet-b7");
        let nlp = nlp_entries();
        let max_nlp = nlp.iter().max_by(|a, b| a.cost_per_sample.total_cmp(&b.cost_per_sample)).unwrap();
        assert_eq!(max_nlp.name, "xlnet-large");
    }

    #[test]
    fn simulated_dims_are_bounded() {
        for entry in vision_entries().iter().chain(nlp_entries().iter()) {
            let d = simulated_dim(entry.nominal_dim);
            assert!((16..=96).contains(&d), "{}: {d}", entry.name);
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let a = task_fidelity_jitter("cifar10", "xlnet");
        let b = task_fidelity_jitter("cifar10", "xlnet");
        assert_eq!(a, b);
        assert!(a.abs() <= 0.06 + 1e-9);
        let c = task_fidelity_jitter("imdb", "xlnet");
        assert_ne!(a, c, "different tasks should perturb fidelity differently");
    }

    #[test]
    fn vision_zoo_contains_expected_members() {
        let task = load_clean("cifar10", SizeScale::Tiny, 1);
        let zoo = vision_zoo(&task, 3);
        let names: Vec<&str> = zoo.iter().map(|t| t.name()).collect();
        assert!(names.contains(&"raw"));
        assert!(names.contains(&"nca"));
        assert!(names.iter().any(|n| n.starts_with("pca")));
        assert!(names.contains(&"efficientnet-b7"));
        assert!(zoo.len() >= 20, "zoo has {} members", zoo.len());
        // All zoo members can transform the test split.
        for t in &zoo {
            let out = t.transform_matrix(&task.test.features);
            assert_eq!(out.rows(), task.test.len());
            assert_eq!(out.cols(), t.output_dim(), "{}", t.name());
        }
    }

    #[test]
    fn nlp_zoo_contains_expected_members() {
        let task = load_clean("sst2", SizeScale::Tiny, 2);
        let zoo = nlp_zoo(&task, 4);
        let names: Vec<&str> = zoo.iter().map(|t| t.name()).collect();
        assert!(names.contains(&"raw"));
        assert!(names.contains(&"xlnet"));
        assert!(names.contains(&"use-large"));
        assert!(zoo.len() >= 18);
    }

    #[test]
    fn zoo_for_task_dispatches_on_modality() {
        let vision = load_clean("mnist", SizeScale::Tiny, 5);
        let text = load_clean("imdb", SizeScale::Tiny, 6);
        let vision_names: Vec<String> =
            zoo_for_task(&vision, 1).iter().map(|t| t.name().to_string()).collect();
        let text_names: Vec<String> = zoo_for_task(&text, 1).iter().map(|t| t.name().to_string()).collect();
        assert!(vision_names.iter().any(|n| n.starts_with("efficientnet")));
        assert!(text_names.iter().any(|n| n.starts_with("bert")));
    }
}
