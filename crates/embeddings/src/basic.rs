//! Classical zoo members: identity, standardisation, PCA, random projection,
//! and an LDA/NCA-style supervised projection.

use crate::transform::Transformation;
use snoopy_linalg::eigen::symmetric_eigen;
use snoopy_linalg::{DatasetView, Matrix, Pca, RandomProjection, Standardizer};

/// The identity ("Raw") transformation of Table III.
#[derive(Debug, Clone)]
pub struct Identity {
    dim: usize,
}

impl Identity {
    /// Creates the identity transformation for `dim`-dimensional inputs.
    pub fn new(dim: usize) -> Self {
        Self { dim }
    }
}

impl Transformation for Identity {
    fn name(&self) -> &str {
        "raw"
    }
    fn output_dim(&self) -> usize {
        self.dim
    }
    fn cost_per_sample(&self) -> f64 {
        0.0
    }
    fn transform(&self, x: DatasetView<'_>) -> Matrix {
        x.to_matrix()
    }
}

/// Per-feature z-scoring fitted on the training split ("with normalization"
/// variants of Table IV).
pub struct StandardizeTransform {
    name: String,
    standardizer: Standardizer,
    dim: usize,
    cost: f64,
}

impl StandardizeTransform {
    /// Fits the standardiser on `train`.
    pub fn fit(train: &Matrix) -> Self {
        Self {
            name: "standardize".to_string(),
            standardizer: Standardizer::fit(train),
            dim: train.cols(),
            cost: 1e-6,
        }
    }
}

impl Transformation for StandardizeTransform {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_dim(&self) -> usize {
        self.dim
    }
    fn cost_per_sample(&self) -> f64 {
        self.cost
    }
    fn transform(&self, x: DatasetView<'_>) -> Matrix {
        self.standardizer.transform(x)
    }
}

/// PCA projection fitted on the training split (PCA32/PCA64/PCA128 of
/// Table III).
pub struct PcaTransform {
    name: String,
    pca: Pca,
    cost: f64,
}

impl PcaTransform {
    /// Fits PCA with `k` components on `train`.
    pub fn fit(train: &Matrix, k: usize) -> Self {
        let pca = Pca::fit(train, k);
        Self { name: format!("pca{}", pca.num_components()), pca, cost: 2e-6 }
    }
}

impl Transformation for PcaTransform {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_dim(&self) -> usize {
        self.pca.num_components()
    }
    fn cost_per_sample(&self) -> f64 {
        self.cost
    }
    fn transform(&self, x: DatasetView<'_>) -> Matrix {
        self.pca.transform(x)
    }
}

/// Gaussian random projection (a deliberately mediocre zoo member used to
/// stress the minimum aggregation).
pub struct RandomProjectionTransform {
    name: String,
    projection: RandomProjection,
}

impl RandomProjectionTransform {
    /// Creates a random projection to `k` dimensions.
    pub fn new(input_dim: usize, k: usize, seed: u64) -> Self {
        Self { name: format!("random-proj{k}"), projection: RandomProjection::new(input_dim, k, seed) }
    }
}

impl Transformation for RandomProjectionTransform {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_dim(&self) -> usize {
        self.projection.output_dim()
    }
    fn cost_per_sample(&self) -> f64 {
        1e-6
    }
    fn transform(&self, x: DatasetView<'_>) -> Matrix {
        self.projection.transform(x)
    }
}

/// NCA/LDA-style supervised linear projection (the "NCA" entry of the paper's
/// vision zoo): projects onto the top eigenvectors of the between-class
/// scatter of standardised features.
pub struct SupervisedProjection {
    name: String,
    standardizer: Standardizer,
    /// `d × k` projection matrix.
    projection: Matrix,
}

impl SupervisedProjection {
    /// Fits the projection on labelled training data, keeping `k` directions
    /// (clamped to `min(C − 1, d)`).
    pub fn fit(train: &Matrix, labels: &[u32], num_classes: usize, k: usize) -> Self {
        assert_eq!(train.rows(), labels.len(), "feature/label count mismatch");
        let standardizer = Standardizer::fit(train);
        let std_train = standardizer.transform(train);
        let d = std_train.cols();
        let k = k.min(num_classes.saturating_sub(1).max(1)).min(d);

        // Between-class scatter of standardised data.
        let global_mean = std_train.column_means();
        let mut class_means = vec![vec![0.0f64; d]; num_classes];
        let mut counts = vec![0usize; num_classes];
        for (i, &y) in labels.iter().enumerate() {
            counts[y as usize] += 1;
            for (j, v) in std_train.row(i).iter().enumerate() {
                class_means[y as usize][j] += *v as f64;
            }
        }
        let mut scatter = Matrix::zeros(d, d);
        for (c, mean) in class_means.iter_mut().enumerate() {
            if counts[c] == 0 {
                continue;
            }
            for v in mean.iter_mut() {
                *v /= counts[c] as f64;
            }
            let weight = counts[c] as f64 / labels.len().max(1) as f64;
            for a in 0..d {
                let da = mean[a] - global_mean[a];
                for b in a..d {
                    let db = mean[b] - global_mean[b];
                    let add = (weight * da * db) as f32;
                    scatter.set(a, b, scatter.get(a, b) + add);
                    if a != b {
                        scatter.set(b, a, scatter.get(b, a) + add);
                    }
                }
            }
        }
        let eig = symmetric_eigen(&scatter, 60);
        let mut projection = Matrix::zeros(d, k);
        for col in 0..k {
            for row in 0..d {
                projection.set(row, col, eig.vectors.get(col, row));
            }
        }
        Self { name: "nca".to_string(), standardizer, projection }
    }
}

impl Transformation for SupervisedProjection {
    fn name(&self) -> &str {
        &self.name
    }
    fn output_dim(&self) -> usize {
        self.projection.cols()
    }
    fn cost_per_sample(&self) -> f64 {
        3e-6
    }
    fn transform(&self, x: DatasetView<'_>) -> Matrix {
        self.standardizer.transform(x).matmul(&self.projection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};
    use snoopy_knn::{BruteForceIndex, Metric};

    #[test]
    fn identity_is_a_noop_with_zero_cost() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let id = Identity::new(task.raw_dim());
        let out = id.transform_matrix(&task.train.features);
        assert_eq!(out.data(), task.train.features.data());
        assert_eq!(id.cost_per_sample(), 0.0);
        assert_eq!(id.output_dim(), task.raw_dim());
    }

    #[test]
    fn pca_transform_reduces_dimension() {
        let task = load_clean("mnist", SizeScale::Tiny, 2);
        let pca = PcaTransform::fit(&task.train.features, 16);
        assert_eq!(pca.output_dim(), 16);
        assert_eq!(pca.name(), "pca16");
        let out = pca.transform_matrix(&task.test.features);
        assert_eq!(out.rows(), task.test.len());
        assert_eq!(out.cols(), 16);
    }

    #[test]
    fn standardize_and_random_projection_shapes() {
        let task = load_clean("sst2", SizeScale::Tiny, 3);
        let st = StandardizeTransform::fit(&task.train.features);
        assert_eq!(st.output_dim(), task.raw_dim());
        assert_eq!(st.transform_matrix(&task.test.features).cols(), task.raw_dim());
        let rp = RandomProjectionTransform::new(task.raw_dim(), 24, 9);
        assert_eq!(rp.output_dim(), 24);
        assert_eq!(rp.name(), "random-proj24");
        assert_eq!(rp.transform_matrix(&task.test.features).cols(), 24);
    }

    #[test]
    fn supervised_projection_improves_1nn_over_random_projection() {
        let task = load_clean("cifar10", SizeScale::Tiny, 4);
        let k = 8;
        let sup = SupervisedProjection::fit(&task.train.features, &task.train.labels, task.num_classes, k);
        let rand_proj = RandomProjectionTransform::new(task.raw_dim(), k.min(task.num_classes - 1), 5);

        let err = |train: &Matrix, test: &Matrix| {
            BruteForceIndex::new(train, &task.train.labels, task.num_classes, Metric::SquaredEuclidean)
                .one_nn_error(test, &task.test.labels)
        };
        let sup_err =
            err(&sup.transform_matrix(&task.train.features), &sup.transform_matrix(&task.test.features));
        let rand_err = err(
            &rand_proj.transform_matrix(&task.train.features),
            &rand_proj.transform_matrix(&task.test.features),
        );
        assert!(
            sup_err <= rand_err + 0.05,
            "supervised projection ({sup_err:.3}) should not be much worse than random ({rand_err:.3})"
        );
        assert_eq!(sup.name(), "nca");
        assert!(sup.output_dim() < task.num_classes);
    }
}
