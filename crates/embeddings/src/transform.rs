//! The [`Transformation`] trait and helpers for applying transformations to
//! whole tasks.

use snoopy_data::TaskDataset;
use snoopy_linalg::{DatasetView, Matrix};

/// A (deterministic) feature transformation `f : R^d_raw → R^d_out`.
///
/// In the paper these are pre-trained embeddings, PCA/NCA projections, or the
/// identity; Snoopy only relies on a transformation being a fixed function of
/// the raw features with a known output dimension and a per-sample inference
/// cost (the dominant term of the feasibility study's runtime, Section V).
pub trait Transformation: Send + Sync {
    /// Name of the transformation (matches Tables III/IV for zoo members).
    fn name(&self) -> &str;

    /// Output dimensionality.
    fn output_dim(&self) -> usize;

    /// Simulated inference cost in seconds per sample on the reference GPU.
    fn cost_per_sample(&self) -> f64;

    /// Applies the transformation to every row of the (zero-copy) input
    /// view. Batch-streaming callers slice their raw features with
    /// [`DatasetView::slice_rows`] and embed without copying the input.
    fn transform(&self, x: DatasetView<'_>) -> Matrix;

    /// Convenience wrapper applying the transformation to a whole matrix.
    fn transform_matrix(&self, x: &Matrix) -> Matrix {
        self.transform(x.view())
    }

    /// Simulated cost of embedding `n` samples, in seconds.
    fn cost_for(&self, n: usize) -> f64 {
        self.cost_per_sample() * n as f64
    }
}

/// A task with both splits pushed through a transformation.
#[derive(Debug, Clone)]
pub struct TransformedTask {
    /// Name of the transformation that produced the features.
    pub transformation: String,
    /// Transformed training features.
    pub train_features: Matrix,
    /// Transformed test features.
    pub test_features: Matrix,
    /// Simulated inference cost in seconds spent producing both splits.
    pub inference_cost: f64,
}

/// Applies a transformation to both splits of a task.
pub fn apply_to_task(t: &dyn Transformation, task: &TaskDataset) -> TransformedTask {
    let train_features = t.transform(task.train.features_view());
    let test_features = t.transform(task.test.features_view());
    TransformedTask {
        transformation: t.name().to_string(),
        inference_cost: t.cost_for(task.train.len() + task.test.len()),
        train_features,
        test_features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};

    struct Doubler;
    impl Transformation for Doubler {
        fn name(&self) -> &str {
            "doubler"
        }
        fn output_dim(&self) -> usize {
            3
        }
        fn cost_per_sample(&self) -> f64 {
            0.5
        }
        fn transform(&self, x: DatasetView<'_>) -> Matrix {
            let mut out = x.to_matrix();
            out.scale(2.0);
            out
        }
    }

    #[test]
    fn cost_scales_linearly() {
        let d = Doubler;
        assert_eq!(d.cost_for(10), 5.0);
        assert_eq!(d.cost_for(0), 0.0);
    }

    #[test]
    fn apply_to_task_transforms_both_splits() {
        let task = load_clean("sst2", SizeScale::Tiny, 3);
        let d = Doubler;
        let out = apply_to_task(&d, &task);
        assert_eq!(out.transformation, "doubler");
        assert_eq!(out.train_features.rows(), task.train.len());
        assert_eq!(out.test_features.rows(), task.test.len());
        assert!((out.inference_cost - 0.5 * task.total_len() as f64).abs() < 1e-9);
        assert!((out.train_features.get(0, 0) - 2.0 * task.train.features.get(0, 0)).abs() < 1e-6);
    }
}
