//! Property-based tests for the zero-copy dataset views: arbitrary splits,
//! prefixes and batchings must tile the underlying data exactly, without
//! copying, and labelled views must keep features and labels aligned.

#![allow(clippy::needless_range_loop)] // index-driven assertions over parallel arrays

use proptest::prelude::*;
use snoopy_linalg::{DatasetView, LabeledView, Matrix};

fn labeled_data(rows: usize, cols: usize) -> impl Strategy<Value = (Matrix, Vec<u32>)> {
    (prop::collection::vec(-50.0f32..50.0, rows * cols), prop::collection::vec(0u32..5, rows))
        .prop_map(move |(data, labels)| (Matrix::from_vec(rows, cols, data), labels))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// split_at partitions the rows exactly, zero-copy.
    #[test]
    fn split_partitions_rows((m, _) in labeled_data(12, 5), mid in 0usize..=12) {
        let v = m.view();
        let (a, b) = v.split_at(mid);
        prop_assert_eq!(a.rows(), mid);
        prop_assert_eq!(b.rows(), 12 - mid);
        for r in 0..a.rows() {
            prop_assert_eq!(a.row(r), m.row(r));
        }
        for r in 0..b.rows() {
            prop_assert_eq!(b.row(r), m.row(mid + r));
        }
        // Zero-copy: both halves point into the parent buffer.
        if a.rows() > 0 {
            prop_assert_eq!(a.data().as_ptr(), m.data().as_ptr());
        }
        if b.rows() > 0 {
            prop_assert_eq!(b.data().as_ptr(), m.row(mid).as_ptr());
        }
    }

    /// Batches tile the view: concatenating them in order recovers every row
    /// exactly once, every batch but the last is full, and none is empty.
    #[test]
    fn batches_tile_the_view((m, _) in labeled_data(17, 3), batch in 1usize..25) {
        let v = m.view();
        let batches: Vec<DatasetView<'_>> = v.batches(batch).collect();
        prop_assert_eq!(batches.len(), 17usize.div_ceil(batch));
        let mut covered = 0usize;
        for (i, b) in batches.iter().enumerate() {
            prop_assert!(b.rows() > 0);
            if i + 1 < batches.len() {
                prop_assert_eq!(b.rows(), batch);
            }
            for r in 0..b.rows() {
                prop_assert_eq!(b.row(r), m.row(covered + r));
            }
            covered += b.rows();
        }
        prop_assert_eq!(covered, 17);
    }

    /// Nested slicing composes: slicing a slice addresses the same rows as
    /// slicing the parent directly.
    #[test]
    fn nested_slices_compose(
        (m, _) in labeled_data(20, 4),
        start in 0usize..10,
        len in 0usize..10,
        inner in 0usize..10,
    ) {
        let outer = m.view().slice_rows(start, start + len);
        let inner_start = inner.min(len);
        let nested = outer.slice_rows(inner_start, len);
        for r in 0..nested.rows() {
            prop_assert_eq!(nested.row(r), m.row(start + inner_start + r));
        }
    }

    /// Labelled views keep features and labels aligned through slice, prefix
    /// and batch operations, and preserve the class count.
    #[test]
    fn labeled_views_stay_aligned((m, y) in labeled_data(15, 4), mid in 0usize..=15, batch in 1usize..8) {
        let v = LabeledView::new(&m, &y).with_classes(5);
        let (a, b) = v.split_at(mid);
        prop_assert_eq!(a.len() + b.len(), 15);
        prop_assert_eq!(a.num_classes(), 5);
        for i in 0..a.len() {
            prop_assert_eq!(a.label(i), y[i]);
            prop_assert_eq!(a.features().row(i), m.row(i));
        }
        for i in 0..b.len() {
            prop_assert_eq!(b.label(i), y[mid + i]);
            prop_assert_eq!(b.features().row(i), m.row(mid + i));
        }
        let mut covered = 0usize;
        for chunk in v.batches(batch) {
            prop_assert_eq!(chunk.len(), chunk.features().rows());
            for i in 0..chunk.len() {
                prop_assert_eq!(chunk.label(i), y[covered + i]);
            }
            covered += chunk.len();
        }
        prop_assert_eq!(covered, 15);
        let p = v.prefix(mid);
        prop_assert_eq!(p.len(), mid);
        prop_assert_eq!(p.labels(), &y[..mid]);
    }

    /// Materialisation round-trips: to_matrix() of a slice equals the
    /// copying slice_rows() on the matrix itself.
    #[test]
    fn to_matrix_round_trips((m, _) in labeled_data(10, 6), start in 0usize..5, end in 5usize..=10) {
        let view_slice = m.view().slice_rows(start, end).to_matrix();
        let matrix_slice = m.slice_rows(start, end);
        prop_assert_eq!(view_slice, matrix_slice);
    }
}
