//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use snoopy_linalg::stats;
use snoopy_linalg::Matrix;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-100.0f32..100.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(m in small_matrix(5, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_is_associative((a, b, c) in (small_matrix(3, 4), small_matrix(4, 2), small_matrix(2, 5))) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            // Relative tolerance: f32 accumulation over entries up to ~1e7 in magnitude.
            prop_assert!((x - y).abs() <= 1e-2 + 5e-3 * x.abs().max(y.abs()));
        }
    }

    #[test]
    fn identity_is_neutral(m in small_matrix(4, 6)) {
        let id = Matrix::identity(6);
        let prod = m.matmul(&id);
        for (x, y) in prod.data().iter().zip(m.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn squared_distance_is_symmetric_nonnegative(
        a in prop::collection::vec(-50.0f32..50.0, 16),
        b in prop::collection::vec(-50.0f32..50.0, 16),
    ) {
        let dab = Matrix::row_sq_dist(&a, &b);
        let dba = Matrix::row_sq_dist(&b, &a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-3);
        prop_assert_eq!(Matrix::row_sq_dist(&a, &a), 0.0);
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..12)) {
        let p = stats::softmax_f32(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn quantile_is_monotone(values in prop::collection::vec(-1e3f64..1e3, 2..64)) {
        let q25 = stats::quantile(&values, 0.25);
        let q50 = stats::quantile(&values, 0.5);
        let q75 = stats::quantile(&values, 0.75);
        prop_assert!(q25 <= q50 + 1e-12);
        prop_assert!(q50 <= q75 + 1e-12);
    }

    #[test]
    fn linear_fit_residual_orthogonal_to_x(
        xs in prop::collection::vec(-100.0f64..100.0, 5..40),
        noise in prop::collection::vec(-1.0f64..1.0, 40),
    ) {
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, &x)| 2.0 * x + 1.0 + noise[i % noise.len()]).collect();
        let (slope, intercept) = stats::linear_fit(&xs, &ys);
        // Normal equations: sum of residuals is ~0.
        let resid_sum: f64 = xs.iter().zip(&ys).map(|(&x, &y)| y - (slope * x + intercept)).sum();
        prop_assert!(resid_sum.abs() < 1e-6 * (1.0 + ys.iter().map(|v| v.abs()).sum::<f64>()));
    }

    #[test]
    fn normal_cdf_is_monotone_and_bounded(x in -6.0f64..6.0, dx in 0.0f64..3.0) {
        let a = stats::normal_cdf(x);
        let b = stats::normal_cdf(x + dx);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b + 1e-9 >= a);
    }
}
