//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA (and the NCA-style supervised projection in `snoopy-embeddings`) only
//! ever needs the eigen-pairs of small symmetric matrices — covariance and
//! scatter matrices whose dimension equals the feature dimension after an
//! optional pre-projection — so an `O(d^3)` Jacobi sweep is entirely adequate
//! and keeps the workspace free of LAPACK bindings.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: eigenvalues in descending order
/// and the matching eigenvectors as rows of `vectors` (`vectors.row(i)` is the
/// unit eigenvector for `values[i]`).
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors, one per row, aligned with `values`.
    pub vectors: Matrix,
}

/// Computes all eigen-pairs of a symmetric matrix with the cyclic Jacobi
/// method.
///
/// `max_sweeps` bounds the number of full upper-triangle sweeps; 50 sweeps is
/// far more than needed for the matrices that arise from covariance of
/// standardised data. Off-diagonal mass below `1e-12` terminates early.
///
/// # Panics
/// Panics if the matrix is not square.
pub fn symmetric_eigen(matrix: &Matrix, max_sweeps: usize) -> SymmetricEigen {
    assert_eq!(matrix.rows(), matrix.cols(), "eigendecomposition requires a square matrix");
    let n = matrix.rows();
    // Work in f64 for accuracy.
    let mut a: Vec<f64> = matrix.data().iter().map(|&v| v as f64).collect();
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let idx = |r: usize, c: usize| r * n + c;

    for _sweep in 0..max_sweeps {
        let mut off: f64 = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a[idx(p, q)] * a[idx(p, q)];
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[idx(p, q)];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let app = a[idx(p, p)];
                let aqq = a[idx(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Update matrix A = J^T A J.
                for k in 0..n {
                    let akp = a[idx(k, p)];
                    let akq = a[idx(k, q)];
                    a[idx(k, p)] = c * akp - s * akq;
                    a[idx(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[idx(p, k)];
                    let aqk = a[idx(q, k)];
                    a[idx(p, k)] = c * apk - s * aqk;
                    a[idx(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors V = V J (columns of V are vectors).
                for k in 0..n {
                    let vkp = v[idx(k, p)];
                    let vkq = v[idx(k, q)];
                    v[idx(k, p)] = c * vkp - s * vkq;
                    v[idx(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[idx(i, i)], i)).collect();
    pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("NaN eigenvalue"));

    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (row, &(_, col)) in pairs.iter().enumerate() {
        for k in 0..n {
            vectors.set(row, k, v[idx(k, col)] as f32);
        }
    }
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_sorted_diagonal() {
        let m = Matrix::from_vec(3, 3, vec![2.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 1.0]);
        let eig = symmetric_eigen(&m, 50);
        assert!(approx(eig.values[0], 5.0, 1e-9));
        assert!(approx(eig.values[1], 2.0, 1e-9));
        assert!(approx(eig.values[2], 1.0, 1e-9));
    }

    #[test]
    fn known_2x2_eigenpairs() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2, (1,-1)/sqrt2.
        let m = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = symmetric_eigen(&m, 50);
        assert!(approx(eig.values[0], 3.0, 1e-9));
        assert!(approx(eig.values[1], 1.0, 1e-9));
        let v0 = eig.vectors.row(0);
        assert!(approx((v0[0] / v0[1]) as f64, 1.0, 1e-5));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_vec(
            4,
            4,
            vec![
                4.0, 1.0, 0.5, 0.0, //
                1.0, 3.0, 0.2, 0.1, //
                0.5, 0.2, 2.0, 0.3, //
                0.0, 0.1, 0.3, 1.0,
            ],
        );
        let eig = symmetric_eigen(&m, 50);
        for i in 0..4 {
            for j in 0..4 {
                let dot = Matrix::row_dot(eig.vectors.row(i), eig.vectors.row(j)) as f64;
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(approx(dot, expected, 1e-5), "dot({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn reconstruction_matches_original() {
        let m = Matrix::from_vec(3, 3, vec![2.0, 0.4, 0.1, 0.4, 1.5, 0.2, 0.1, 0.2, 1.0]);
        let eig = symmetric_eigen(&m, 50);
        // Reconstruct A = sum_i lambda_i v_i v_i^T.
        let mut recon = Matrix::zeros(3, 3);
        for (i, &lambda) in eig.values.iter().enumerate() {
            let v = eig.vectors.row(i);
            for r in 0..3 {
                for c in 0..3 {
                    let cur = recon.get(r, c);
                    recon.set(r, c, cur + (lambda as f32) * v[r] * v[c]);
                }
            }
        }
        for r in 0..3 {
            for c in 0..3 {
                assert!(approx(recon.get(r, c) as f64, m.get(r, c) as f64, 1e-4));
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let m = Matrix::from_vec(3, 3, vec![3.0, 1.0, 0.0, 1.0, 2.0, 0.5, 0.0, 0.5, 1.0]);
        let eig = symmetric_eigen(&m, 50);
        let trace: f64 = (0..3).map(|i| m.get(i, i) as f64).sum();
        let sum: f64 = eig.values.iter().sum();
        assert!(approx(trace, sum, 1e-6));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        symmetric_eigen(&m, 10);
    }
}
