//! Small numeric and statistics helpers shared across the workspace.

/// Index of the maximum element; ties resolve to the first occurrence.
///
/// # Panics
/// Panics if the slice is empty.
pub fn argmax(values: &[f64]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum element; ties resolve to the first occurrence.
///
/// # Panics
/// Panics if the slice is empty.
pub fn argmin(values: &[f64]) -> usize {
    assert!(!values.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if v < values[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable *online* log-sum-exp accumulator: folds one term at a
/// time in `O(1)` memory, so blocked distance kernels can accumulate
/// class-conditional kernel densities without materialising every log-kernel
/// first. Rescales the running sum whenever a new maximum arrives — the same
/// max-shift trick as [`log_sum_exp`], applied incrementally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineLse {
    max: f64,
    /// Sum of `exp(x_i - max)` over all folded terms.
    sum: f64,
}

impl Default for OnlineLse {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl OnlineLse {
    /// The empty accumulator; its [`value`](OnlineLse::value) is `-∞`.
    pub const EMPTY: OnlineLse = OnlineLse { max: f64::NEG_INFINITY, sum: 0.0 };

    /// Folds one term into the running log-sum-exp. A `-∞` term contributes
    /// `exp(-∞) = 0` and leaves the state unchanged (the naive update would
    /// poison the sum with `exp(-∞ − -∞) = NaN` while the state is empty).
    #[inline]
    pub fn add(&mut self, x: f64) {
        if x == f64::NEG_INFINITY {
            return;
        }
        if x <= self.max {
            self.sum += (x - self.max).exp();
        } else {
            // New maximum: rescale the existing sum into the new frame.
            self.sum = self.sum * (self.max - x).exp() + 1.0;
            self.max = x;
        }
    }

    /// Whether no term has been folded yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sum == 0.0
    }

    /// The accumulated `log Σ exp(x_i)` (`-∞` when empty).
    #[inline]
    pub fn value(&self) -> f64 {
        if self.sum == 0.0 {
            f64::NEG_INFINITY
        } else {
            self.max + self.sum.ln()
        }
    }
}

/// Numerically stable log-sum-exp.
pub fn log_sum_exp(values: &[f64]) -> f64 {
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = values.iter().map(|v| (v - max).exp()).sum();
    max + sum.ln()
}

/// In-place numerically stable softmax over `f64` logits.
pub fn softmax_inplace(logits: &mut [f64]) {
    let lse = log_sum_exp(logits);
    for l in logits.iter_mut() {
        *l = (*l - lse).exp();
    }
}

/// Softmax over `f32` logits, returning `f32` probabilities.
pub fn softmax_f32(logits: &[f32]) -> Vec<f32> {
    let mut tmp: Vec<f64> = logits.iter().map(|&v| v as f64).collect();
    softmax_inplace(&mut tmp);
    tmp.into_iter().map(|v| v as f32).collect()
}

/// Arithmetic mean; returns 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance; returns 0 for slices with fewer than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Empirical quantile with linear interpolation, `q` in `[0, 1]`.
///
/// # Panics
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (0.5 quantile).
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Ordinary least squares fit of `y ≈ slope * x + intercept`.
///
/// Returns `(slope, intercept)`. With fewer than two points, or degenerate
/// (constant) `x`, the slope is 0 and the intercept is the mean of `y`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "linear_fit requires equal-length inputs");
    let n = x.len();
    if n < 2 {
        return (0.0, mean(y));
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        sxx += (xi - mx) * (xi - mx);
        sxy += (xi - mx) * (yi - my);
    }
    if sxx <= f64::EPSILON {
        return (0.0, my);
    }
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// Coefficient of determination (R²) of a linear fit.
pub fn r_squared(x: &[f64], y: &[f64], slope: f64, intercept: f64) -> f64 {
    assert_eq!(x.len(), y.len());
    if y.len() < 2 {
        return 1.0;
    }
    let my = mean(y);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let pred = slope * xi + intercept;
        ss_res += (yi - pred) * (yi - pred);
        ss_tot += (yi - my) * (yi - my);
    }
    if ss_tot <= f64::EPSILON {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Clamps a probability-like value into `[0, 1]`.
#[inline]
pub fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, 1.0)
}

/// Standard normal cumulative distribution function (Abramowitz–Stegun 7.1.26
/// approximation of `erf`, absolute error below 1.5e-7). Used for analytic
/// Bayes-error computation of two-class Gaussian tasks.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let a1 = 0.254_829_592;
    let a2 = -0.284_496_736;
    let a3 = 1.421_413_741;
    let a4 = -1.453_152_027;
    let a5 = 1.061_405_429;
    let p = 0.327_591_1;
    let t = 1.0 / (1.0 + p * x);
    let y = 1.0 - ((((a5 * t + a4) * t + a3) * t + a2) * t + a1) * t * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_argmin_basic_and_ties() {
        let v = [0.5, 2.0, 2.0, -1.0];
        assert_eq!(argmax(&v), 1);
        assert_eq!(argmin(&v), 3);
        assert_eq!(argmax(&[7.0]), 0);
    }

    #[test]
    fn online_lse_matches_batch_lse() {
        let terms = [-3.0, 1.5, 1.5, -700.0, 4.0, 0.0];
        let mut online = OnlineLse::EMPTY;
        for &t in &terms {
            online.add(t);
        }
        assert!((online.value() - log_sum_exp(&terms)).abs() < 1e-12);
        assert!(!online.is_empty());
        // Extreme magnitudes stay finite thanks to the running rescale.
        let mut big = OnlineLse::default();
        big.add(-1000.0);
        big.add(-1000.0);
        assert!((big.value() - (-1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn online_lse_empty_is_neg_infinity() {
        let empty = OnlineLse::EMPTY;
        assert!(empty.is_empty());
        assert_eq!(empty.value(), f64::NEG_INFINITY);
    }

    #[test]
    fn online_lse_ignores_neg_infinity_terms() {
        // exp(-inf) = 0: folding -inf must not poison the state, whether it
        // arrives first, between finite terms, or alone.
        let mut lse = OnlineLse::EMPTY;
        lse.add(f64::NEG_INFINITY);
        assert!(lse.is_empty());
        assert_eq!(lse.value(), f64::NEG_INFINITY);
        lse.add(5.0);
        lse.add(f64::NEG_INFINITY);
        assert!((lse.value() - log_sum_exp(&[f64::NEG_INFINITY, 5.0, f64::NEG_INFINITY])).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable() {
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        let small = [-1000.0, -1000.0];
        assert!((log_sum_exp(&small) - (-1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let probs = softmax_f32(&[1.0, 2.0, 3.0]);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(probs[2] > probs[1] && probs[1] > probs[0]);
    }

    #[test]
    fn mean_variance_median() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&v) - 2.5).abs() < 1e-12);
        assert!((variance(&v) - 1.25).abs() < 1e-12);
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&v, 0.0), 10.0);
        assert_eq!(quantile(&v, 1.0), 50.0);
        assert!((quantile(&v, 0.25) - 20.0).abs() < 1e-12);
        assert!((quantile(&v, 0.1) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let (slope, intercept) = linear_fit(&x, &y);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept + 7.0).abs() < 1e-9);
        assert!((r_squared(&x, &y, slope, intercept) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        let (slope, intercept) = linear_fit(&[1.0], &[5.0]);
        assert_eq!(slope, 0.0);
        assert_eq!(intercept, 5.0);
        let (slope, intercept) = linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(slope, 0.0);
        assert!((intercept - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn clamp01_bounds() {
        assert_eq!(clamp01(-0.5), 0.0);
        assert_eq!(clamp01(0.25), 0.25);
        assert_eq!(clamp01(1.5), 1.0);
    }
}
