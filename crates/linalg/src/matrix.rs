//! Row-major dense matrix of `f32` values.
//!
//! Feature matrices in Snoopy are *n × d* with one sample per row. `f32` is
//! used for storage (halving memory traffic during nearest-neighbour search)
//! while reductions that need numerical headroom accumulate in `f64`.

use std::fmt;

/// A dense, row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length {} does not match {}x{}", data.len(), rows, cols);
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally long rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "inconsistent row length");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Shrinks the matrix to its first `rows` rows in place, keeping the
    /// buffer's allocation — the row-eviction primitive behind
    /// partition-buffer compaction.
    ///
    /// # Panics
    /// Panics if `rows` exceeds the current row count.
    pub fn truncate_rows(&mut self, rows: usize) {
        assert!(rows <= self.rows, "cannot truncate {} rows to {rows}", self.rows);
        self.data.truncate(rows * self.cols);
        self.rows = rows;
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows (samples).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature dimension).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has zero entries in either dimension.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns column `c` as an owned vector.
    pub fn column(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Returns the sub-matrix of rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows);
        Matrix::from_vec(end - start, self.cols, self.data[start * self.cols..end * self.cols].to_vec())
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        self.view().vstack(&other.view())
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Straightforward ikj-ordered triple loop; accumulation happens in `f32`
    /// which is sufficient for the moderate dimensions used in the workspace.
    ///
    /// # Panics
    /// Panics if inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.view().matmul(other)
    }

    /// Applies a linear map given as a `d_in × d_out` matrix to every row:
    /// the result is `n × d_out`.
    pub fn project(&self, map: &Matrix) -> Matrix {
        self.matmul(map)
    }

    /// Per-column mean as an `f64` vector.
    pub fn column_means(&self) -> Vec<f64> {
        self.view().column_means()
    }

    /// Per-column (population) standard deviation.
    pub fn column_stds(&self) -> Vec<f64> {
        self.view().column_stds()
    }

    /// Sample covariance matrix (`d × d`, `f64` accumulation, stored as `f32`).
    pub fn covariance(&self) -> Matrix {
        let d = self.cols;
        let means = self.column_means();
        let mut cov = vec![0.0f64; d * d];
        for row in self.rows_iter() {
            for i in 0..d {
                let di = row[i] as f64 - means[i];
                for j in i..d {
                    let dj = row[j] as f64 - means[j];
                    cov[i * d + j] += di * dj;
                }
            }
        }
        let denom = (self.rows.max(2) - 1) as f64;
        let mut out = Matrix::zeros(d, d);
        for i in 0..d {
            for j in i..d {
                let v = (cov[i * d + j] / denom) as f32;
                out.set(i, j, v);
                out.set(j, i, v);
            }
        }
        out
    }

    /// Squared Euclidean distance between two rows of possibly different matrices.
    #[inline]
    pub fn row_sq_dist(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b) {
            let d = x - y;
            acc += d * d;
        }
        acc
    }

    /// Dot product of two row slices.
    #[inline]
    pub fn row_dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Euclidean norm of a row slice.
    #[inline]
    pub fn row_norm(a: &[f32]) -> f32 {
        Self::row_dot(a, a).sqrt()
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }

    /// Adds `other` scaled by `alpha` in place (`self += alpha * other`).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every entry by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Appends a constant-one column (bias feature) and returns the new matrix.
    pub fn with_bias_column(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.set(r, self.cols, 1.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_panics_on_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_fn_and_identity() {
        let m = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(m, Matrix::identity(3));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 0.0, 9.0]);
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn column_statistics() {
        let m = Matrix::from_vec(4, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let means = m.column_means();
        assert!((means[0] - 2.5).abs() < 1e-9);
        assert!((means[1] - 25.0).abs() < 1e-9);
        let stds = m.column_stds();
        assert!((stds[0] - 1.118_033_988_7).abs() < 1e-6);
    }

    #[test]
    fn covariance_of_independent_columns_is_diagonalish() {
        let m = Matrix::from_vec(4, 2, vec![1.0, 1.0, 2.0, -1.0, 3.0, 1.0, 4.0, -1.0]);
        let cov = m.covariance();
        assert!((cov.get(0, 0) - 1.666_67).abs() < 1e-3);
        assert!((cov.get(1, 1) - 1.333_33).abs() < 1e-3);
        assert_eq!(cov.get(0, 1), cov.get(1, 0));
    }

    #[test]
    fn select_and_slice_rows() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        let sl = m.slice_rows(1, 3);
        assert_eq!(sl.rows(), 2);
        assert_eq!(sl.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let v = a.vstack(&b);
        assert_eq!(v.rows(), 3);
        assert_eq!(v.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn row_helpers() {
        let a = [0.0f32, 3.0];
        let b = [4.0f32, 0.0];
        assert_eq!(Matrix::row_sq_dist(&a, &b), 25.0);
        assert_eq!(Matrix::row_dot(&a, &b), 0.0);
        assert_eq!(Matrix::row_norm(&a), 3.0);
    }

    #[test]
    fn axpy_scale_and_bias_column() {
        let mut a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
        let wb = a.with_bias_column();
        assert_eq!(wb.cols(), 3);
        assert_eq!(wb.get(0, 2), 1.0);
    }

    #[test]
    fn frobenius_norm_matches_hand_value() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
