//! Principal component analysis.
//!
//! Snoopy's transformation zoo includes PCA32/PCA64/PCA128 entries (Table III
//! of the paper). PCA here is the classic covariance-eigendecomposition
//! variant: fit on the training split, then apply to train and test alike.

use crate::eigen::symmetric_eigen;
use crate::matrix::Matrix;
use crate::view::DatasetView;

/// A fitted PCA transform.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Per-feature mean subtracted before projecting.
    mean: Vec<f32>,
    /// `k × d` matrix whose rows are the top-`k` principal directions.
    components: Matrix,
    /// Eigenvalues (variances) associated with the retained components.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits PCA with `k` components on the rows of `data`.
    ///
    /// `k` is clamped to the feature dimension. Fitting on an empty matrix
    /// yields an all-zero transform of the requested width.
    pub fn fit(data: &Matrix, k: usize) -> Self {
        let d = data.cols();
        let k = k.min(d).max(1);
        if data.rows() == 0 || d == 0 {
            return Self {
                mean: vec![0.0; d],
                components: Matrix::zeros(k, d),
                explained_variance: vec![0.0; k],
            };
        }
        let mean_f64 = data.column_means();
        let mean: Vec<f32> = mean_f64.iter().map(|&m| m as f32).collect();
        let cov = data.covariance();
        let eig = symmetric_eigen(&cov, 60);
        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        for i in 0..k {
            components.row_mut(i).copy_from_slice(eig.vectors.row(i));
            explained.push(eig.values[i].max(0.0));
        }
        Self { mean, components, explained_variance: explained }
    }

    /// Number of retained components.
    pub fn num_components(&self) -> usize {
        self.components.rows()
    }

    /// Variance explained by each retained component, in descending order.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by the retained components, given
    /// the total variance of the fitted data (sum of all eigenvalues equals
    /// the trace of the covariance).
    pub fn explained_variance_ratio(&self, total_variance: f64) -> f64 {
        if total_variance <= 0.0 {
            return 0.0;
        }
        (self.explained_variance.iter().sum::<f64>() / total_variance).min(1.0)
    }

    /// Projects each row of `data` onto the principal subspace, producing an
    /// `n × k` matrix. Accepts owned matrices (`&Matrix`) and zero-copy
    /// [`DatasetView`]s alike.
    pub fn transform<'a>(&self, data: impl Into<DatasetView<'a>>) -> Matrix {
        let data = data.into();
        let n = data.rows();
        let d = self.mean.len();
        assert_eq!(data.cols(), d, "PCA transform dimension mismatch");
        let k = self.components.rows();
        let mut out = Matrix::zeros(n, k);
        for r in 0..n {
            let row = data.row(r);
            let out_row = out.row_mut(r);
            for (c, out_val) in out_row.iter_mut().enumerate() {
                let comp = self.components.row(c);
                let mut acc = 0.0f32;
                for j in 0..d {
                    acc += (row[j] - self.mean[j]) * comp[j];
                }
                *out_val = acc;
            }
        }
        out
    }

    /// The principal directions as a `k × d` matrix (rows are unit vectors).
    pub fn components(&self) -> &Matrix {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use rand::Rng;

    /// Generates points along a dominant direction with small orthogonal noise.
    fn line_cloud(n: usize, seed: u64) -> Matrix {
        let mut r = rng::seeded(seed);
        let mut m = Matrix::zeros(n, 3);
        for i in 0..n {
            let t: f32 = r.gen::<f32>() * 10.0 - 5.0;
            // Dominant direction (1, 2, 0)/sqrt(5), small noise elsewhere.
            let noise = rng::normal_vec(&mut r, 3);
            m.set(i, 0, t * 1.0 + 0.05 * noise[0]);
            m.set(i, 1, t * 2.0 + 0.05 * noise[1]);
            m.set(i, 2, 0.05 * noise[2]);
        }
        m
    }

    #[test]
    fn first_component_aligns_with_dominant_direction() {
        let data = line_cloud(500, 42);
        let pca = Pca::fit(&data, 1);
        let c = pca.components().row(0);
        // Expected direction (1,2,0)/sqrt(5) up to sign.
        let expected = [1.0 / 5.0f32.sqrt(), 2.0 / 5.0f32.sqrt(), 0.0];
        let dot: f32 = c.iter().zip(&expected).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.999, "dot = {dot}");
    }

    #[test]
    fn transform_has_requested_width_and_centered_scores() {
        let data = line_cloud(300, 7);
        let pca = Pca::fit(&data, 2);
        let t = pca.transform(&data);
        assert_eq!(t.rows(), 300);
        assert_eq!(t.cols(), 2);
        let means = t.column_means();
        assert!(means[0].abs() < 1e-3);
        assert!(means[1].abs() < 1e-3);
    }

    #[test]
    fn k_is_clamped_to_dimension() {
        let data = line_cloud(50, 3);
        let pca = Pca::fit(&data, 10);
        assert_eq!(pca.num_components(), 3);
    }

    #[test]
    fn explained_variance_is_descending_and_ratio_bounded() {
        let data = line_cloud(400, 11);
        let pca = Pca::fit(&data, 3);
        let ev = pca.explained_variance();
        assert!(ev[0] >= ev[1] && ev[1] >= ev[2]);
        let total: f64 = ev.iter().sum();
        let ratio = pca.explained_variance_ratio(total);
        assert!((ratio - 1.0).abs() < 1e-9);
        assert!(pca.explained_variance_ratio(0.0) == 0.0);
    }

    #[test]
    fn components_are_orthonormal() {
        let data = line_cloud(400, 13);
        let pca = Pca::fit(&data, 3);
        for i in 0..3 {
            for j in 0..3 {
                let dot = Matrix::row_dot(pca.components().row(i), pca.components().row(j));
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-4, "dot({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn empty_fit_is_well_defined() {
        let data = Matrix::zeros(0, 4);
        let pca = Pca::fit(&data, 2);
        assert_eq!(pca.num_components(), 2);
        let out = pca.transform(&Matrix::zeros(0, 4));
        assert_eq!(out.rows(), 0);
    }
}
