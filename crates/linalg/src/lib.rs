//! # snoopy-linalg
//!
//! Dense linear-algebra and random-number substrate for the Snoopy
//! feasibility-study system.
//!
//! The crate deliberately implements only what the rest of the workspace
//! needs, from scratch and — apart from the contained `mmap` wrapper in
//! [`disk`] — without unsafe code:
//!
//! * a row-major [`Matrix`] of `f32` features with the usual constructors,
//!   slicing, and matrix operations (`matmul`, `transpose`, covariance,
//!   row/column statistics),
//! * the register-blocked dot-product microkernel ([`kernel`]): fixed-order
//!   multi-lane accumulation plus a row-tile driver whose results are
//!   bit-identical to the scalar path for every tile shape — the compute
//!   substrate of every distance evaluation in `snoopy-knn`,
//! * zero-copy dataset views ([`view::DatasetView`], [`view::LabeledView`])
//!   — the shared data handshake between the dataset registry, the kNN
//!   engine, the Bayes-error estimators, and the feasibility study,
//! * the out-of-core backing for those views ([`disk`]): a versioned
//!   on-disk format (row-major f32 features, u32 labels sidecar, FNV-1a
//!   checksum) and an mmap-backed [`disk::DiskDataset`] /
//!   [`disk::DiskLabels`] pair whose windows are indistinguishable from
//!   in-memory matrices downstream,
//! * Lloyd's k-means with deterministic seeding and cluster-contiguous
//!   row-partition buffers ([`kmeans`]) — the coarse-partition substrate of
//!   the exact pruned nearest-neighbour index in `snoopy-knn`,
//! * a Jacobi eigen-solver for symmetric matrices ([`eigen`]),
//! * principal component analysis ([`pca::Pca`]), feature standardisation
//!   ([`projection::Standardizer`]) and Gaussian random projections
//!   ([`projection::RandomProjection`]),
//! * small statistics helpers (softmax, log-sum-exp, argmax, quantiles,
//!   ordinary least squares) in [`stats`],
//! * RNG helpers in [`rng`] (Box–Muller normal draws, categorical sampling,
//!   Fisher–Yates subsets) built only on the `rand` crate so that no extra
//!   dependency on `rand_distr` is needed.
//!
//! Everything is deterministic given a seed, which the experiment harness
//! relies on to regenerate the paper's tables and figures reproducibly.

pub mod disk;
pub mod eigen;
pub mod kernel;
pub mod kmeans;
pub mod matrix;
pub mod pca;
pub mod projection;
pub mod rng;
pub mod stats;
pub mod view;

pub use disk::{DiskDataset, DiskDatasetError, DiskLabels};
pub use kmeans::{lloyd_kmeans, partition_rows, KMeans, RowPartition};
pub use matrix::Matrix;
pub use pca::Pca;
pub use projection::{RandomProjection, Standardizer};
pub use view::{DatasetView, LabeledView};
