//! Zero-copy dataset views shared by the whole workspace.
//!
//! Every layer of Snoopy used to invent its own data handshake: the
//! estimators carried a private labelled-view struct, the kNN crate took raw
//! `Matrix` + label-slice pairs, and the scheduler re-sliced (and copied)
//! feature matrices batch by batch. [`DatasetView`] and [`LabeledView`] are
//! the single shared abstraction: borrowed, row-contiguous windows over a
//! [`Matrix`] (plus labels and class count for the labelled variant) with
//! cheap O(1) split / prefix / batch operations. Consumers materialise an
//! owned [`Matrix`] only when they genuinely need one (e.g. pooling two
//! samples for an MST).

use crate::matrix::Matrix;

/// A borrowed, row-contiguous `rows × cols` window over feature data.
///
/// Copyable and O(1) to slice; no feature data is ever cloned.
#[derive(Clone, Copy, PartialEq)]
pub struct DatasetView<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
}

impl std::fmt::Debug for DatasetView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DatasetView({}x{})", self.rows, self.cols)
    }
}

impl<'a> DatasetView<'a> {
    /// Views an entire matrix.
    pub fn from_matrix(m: &'a Matrix) -> Self {
        Self { data: m.data(), rows: m.rows(), cols: m.cols() }
    }

    /// Views a raw row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_raw(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length {} does not match {rows}x{cols}", data.len());
        Self { data, rows, cols }
    }

    /// Views a single feature vector as a one-row dataset (e.g. to push one
    /// query through a batch kernel).
    pub fn from_row(row: &'a [f32]) -> Self {
        Self { data: row, rows: 1, cols: row.len() }
    }

    /// Number of rows (samples).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature dimension).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the view covers zero rows or columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The underlying row-major buffer of the viewed window.
    #[inline]
    pub fn data(&self) -> &'a [f32] {
        self.data
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Row `r` as a slice borrowing from the underlying matrix.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &'a [f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Zero-copy sub-view of rows `[start, end)`.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > rows`.
    pub fn slice_rows(&self, start: usize, end: usize) -> DatasetView<'a> {
        assert!(
            start <= end && end <= self.rows,
            "row slice {start}..{end} out of bounds for {} rows",
            self.rows
        );
        DatasetView {
            data: &self.data[start * self.cols..end * self.cols],
            rows: end - start,
            cols: self.cols,
        }
    }

    /// Zero-copy prefix of the first `n` rows (clamped to the view length).
    pub fn prefix(&self, n: usize) -> DatasetView<'a> {
        self.slice_rows(0, n.min(self.rows))
    }

    /// Splits the view into `[0, mid)` and `[mid, rows)` without copying.
    pub fn split_at(&self, mid: usize) -> (DatasetView<'a>, DatasetView<'a>) {
        (self.slice_rows(0, mid), self.slice_rows(mid, self.rows))
    }

    /// Iterator over consecutive row batches of at most `batch` rows; the
    /// final batch may be shorter. `batch` is clamped to at least 1.
    pub fn batches(&self, batch: usize) -> impl Iterator<Item = DatasetView<'a>> + '_ {
        let batch = batch.max(1);
        let n = self.rows;
        let view = *self;
        (0..n.div_ceil(batch)).map(move |i| view.slice_rows(i * batch, ((i + 1) * batch).min(n)))
    }

    /// Materialises the viewed window as an owned matrix.
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.to_vec())
    }

    /// Materialises the selected rows (a gather; necessarily a copy).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Materialises every `stride`-th row starting from row 0 (deterministic
    /// subsample; a copy). `stride` is clamped to at least 1.
    pub fn subsample_stride(&self, stride: usize) -> Matrix {
        let keep: Vec<usize> = (0..self.rows).step_by(stride.max(1)).collect();
        self.select_rows(&keep)
    }

    /// Vertically stacks this view on top of `other` into an owned matrix.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &DatasetView<'_>) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack requires equal column counts");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(self.data);
        data.extend_from_slice(other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    /// Matrix product `view * other` (an `n × d` view times a `d × k`
    /// matrix), mirroring [`Matrix::matmul`].
    ///
    /// # Panics
    /// Panics if inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows(), "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols());
        for (i, a_row) in self.rows_iter().enumerate() {
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (j, &b_kj) in b_row.iter().enumerate() {
                    out_row[j] += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// Per-column mean as an `f64` vector.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0f64; self.cols];
        for row in self.rows_iter() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v as f64;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Per-column (population) standard deviation.
    pub fn column_stds(&self) -> Vec<f64> {
        let means = self.column_means();
        let mut vars = vec![0.0f64; self.cols];
        for row in self.rows_iter() {
            for ((v, &x), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let n = self.rows.max(1) as f64;
        vars.iter().map(|v| (v / n).sqrt()).collect()
    }
}

impl Matrix {
    /// A zero-copy view over the whole matrix.
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView::from_matrix(self)
    }
}

impl<'a> From<&'a Matrix> for DatasetView<'a> {
    fn from(m: &'a Matrix) -> Self {
        m.view()
    }
}

/// A borrowed labelled sample: features, aligned labels, and the class count.
///
/// This is the one handshake every consumer of labelled data speaks — the
/// kNN indexes, the Bayes-error estimators, the feasibility study, and the
/// experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct LabeledView<'a> {
    features: DatasetView<'a>,
    labels: &'a [u32],
    num_classes: usize,
}

impl<'a> LabeledView<'a> {
    /// Creates a view over a full matrix with an unspecified class count
    /// (recorded as 0; use [`LabeledView::with_classes`] when known).
    ///
    /// # Panics
    /// Panics if features and labels disagree in length.
    pub fn new(features: &'a Matrix, labels: &'a [u32]) -> Self {
        Self::from_parts(features.view(), labels, 0)
    }

    /// Creates a view from an existing feature view plus labels.
    ///
    /// # Panics
    /// Panics if features and labels disagree in length.
    pub fn from_parts(features: DatasetView<'a>, labels: &'a [u32], num_classes: usize) -> Self {
        assert_eq!(features.rows(), labels.len(), "feature/label count mismatch");
        Self { features, labels, num_classes }
    }

    /// Returns the same view annotated with an explicit class count.
    pub fn with_classes(mut self, num_classes: usize) -> Self {
        self.num_classes = num_classes;
        self
    }

    /// The feature window.
    #[inline]
    pub fn features(&self) -> DatasetView<'a> {
        self.features
    }

    /// The labels aligned with the feature rows.
    #[inline]
    pub fn labels(&self) -> &'a [u32] {
        self.labels
    }

    /// The class count `C = |Y|` (0 when unspecified at construction).
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Label of sample `i`.
    #[inline]
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// Zero-copy sub-view of samples `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> LabeledView<'a> {
        LabeledView {
            features: self.features.slice_rows(start, end),
            labels: &self.labels[start..end],
            num_classes: self.num_classes,
        }
    }

    /// Zero-copy prefix of the first `n` samples (clamped).
    pub fn prefix(&self, n: usize) -> LabeledView<'a> {
        self.slice(0, n.min(self.len()))
    }

    /// Splits into `[0, mid)` and `[mid, len)` without copying.
    pub fn split_at(&self, mid: usize) -> (LabeledView<'a>, LabeledView<'a>) {
        (self.slice(0, mid), self.slice(mid, self.len()))
    }

    /// Iterator over consecutive batches of at most `batch` samples.
    pub fn batches(&self, batch: usize) -> impl Iterator<Item = LabeledView<'a>> + '_ {
        let batch = batch.max(1);
        let n = self.len();
        let view = *self;
        (0..n.div_ceil(batch)).map(move |i| view.slice(i * batch, ((i + 1) * batch).min(n)))
    }

    /// Size of the label space actually used: `max(label) + 1` (0 when
    /// empty). Useful for sizing vote/count vectors when the view was built
    /// without an explicit class count; NOT a distinct-class count.
    pub fn observed_classes(&self) -> usize {
        self.labels.iter().map(|&y| y as usize + 1).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_fn(6, 3, |r, c| (r * 10 + c) as f32)
    }

    #[test]
    fn view_accessors_mirror_matrix() {
        let m = sample_matrix();
        let v = m.view();
        assert_eq!(v.rows(), 6);
        assert_eq!(v.cols(), 3);
        assert_eq!(v.row(2), m.row(2));
        assert_eq!(v.get(4, 1), m.get(4, 1));
        assert_eq!(v.to_matrix(), m);
        assert!(!v.is_empty());
    }

    #[test]
    fn slicing_is_zero_copy_and_consistent() {
        let m = sample_matrix();
        let v = m.view().slice_rows(1, 5);
        assert_eq!(v.rows(), 4);
        assert_eq!(v.row(0), m.row(1));
        // The slice's buffer points into the parent's allocation.
        assert_eq!(v.data().as_ptr(), m.row(1).as_ptr());
        let (a, b) = v.split_at(2);
        assert_eq!(a.row(1), m.row(2));
        assert_eq!(b.row(0), m.row(3));
    }

    #[test]
    fn from_row_views_one_query() {
        let m = sample_matrix();
        let v = DatasetView::from_row(m.row(3));
        assert_eq!(v.rows(), 1);
        assert_eq!(v.cols(), 3);
        assert_eq!(v.row(0), m.row(3));
        assert_eq!(v.data().as_ptr(), m.row(3).as_ptr());
    }

    #[test]
    fn batches_cover_all_rows_in_order() {
        let m = sample_matrix();
        let batches: Vec<_> = m.view().batches(4).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].rows(), 4);
        assert_eq!(batches[1].rows(), 2);
        assert_eq!(batches[1].row(1), m.row(5));
    }

    #[test]
    fn gather_and_stride_subsample() {
        let m = sample_matrix();
        let picked = m.view().select_rows(&[5, 0]);
        assert_eq!(picked.row(0), m.row(5));
        let strided = m.view().subsample_stride(3);
        assert_eq!(strided.rows(), 2);
        assert_eq!(strided.row(1), m.row(3));
    }

    #[test]
    fn vstack_and_column_stats_match_matrix() {
        let m = sample_matrix();
        let v = m.view();
        let stacked = v.slice_rows(0, 2).vstack(&v.slice_rows(4, 6));
        assert_eq!(stacked.rows(), 4);
        assert_eq!(stacked.row(3), m.row(5));
        assert_eq!(v.column_means(), m.column_means());
        assert_eq!(v.column_stds(), m.column_stds());
    }

    #[test]
    fn labeled_view_slices_labels_and_features_together() {
        let m = sample_matrix();
        let labels = vec![0u32, 1, 2, 0, 1, 2];
        let v = LabeledView::new(&m, &labels).with_classes(3);
        assert_eq!(v.num_classes(), 3);
        assert_eq!(v.len(), 6);
        assert_eq!(v.dim(), 3);
        let s = v.slice(2, 5);
        assert_eq!(s.labels(), &[2, 0, 1]);
        assert_eq!(s.features().row(0), m.row(2));
        assert_eq!(s.num_classes(), 3);
        let batches: Vec<_> = v.batches(4).collect();
        assert_eq!(batches[1].labels(), &[1, 2]);
        assert_eq!(v.observed_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        let m = sample_matrix();
        let labels = vec![0u32; 3];
        let _ = LabeledView::new(&m, &labels);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let m = sample_matrix();
        let _ = m.view().slice_rows(2, 9);
    }
}
