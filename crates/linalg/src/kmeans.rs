//! Lloyd's k-means coarse partitioner and per-cluster row-partition buffers.
//!
//! This is the *indexing* substrate of the clustered nearest-neighbour path
//! in `snoopy-knn`: [`lloyd_kmeans`] learns a small set of centroids over a
//! [`DatasetView`] and [`partition_rows`] regroups the rows into
//! cluster-contiguous buffers (each remembering the original row index), so a
//! pruned query can scan one cluster as a plain row-contiguous window.
//!
//! Correctness of the exact pruned search does **not** depend on the quality
//! of the clustering — any total assignment of rows to centroids yields valid
//! triangle-inequality bounds — so the implementation favours determinism and
//! simplicity: seeded initial centroids drawn with the crate's own
//! [`rng`](crate::rng) helpers, assignment ties resolved to the lowest
//! cluster index, centroid means accumulated in `f64`, and a fixed iteration
//! cap. Only the assignment step (the `O(n · k · d)` hot loop) is
//! chunk-parallel; everything else is serial and byte-for-byte reproducible
//! for a given seed.

use crate::view::DatasetView;
use crate::{rng, Matrix};

/// Result of a Lloyd's k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// `k × d` centroid matrix (`k` after clamping to the row count).
    pub centroids: Matrix,
    /// Cluster id of every input row (`assignments[i] < centroids.rows()`).
    pub assignments: Vec<usize>,
    /// Number of assignment passes performed (at least 1).
    pub iterations: usize,
}

/// Runs Lloyd's k-means on `data` with `k` clusters.
///
/// * Initial centroids are `k` distinct rows drawn without replacement from a
///   [`rng::seeded`] generator, so runs are deterministic per seed.
/// * Each iteration assigns every row to its nearest centroid by squared
///   Euclidean distance (ties to the lowest cluster index; rows are chunked
///   over `threads` workers) and recomputes centroids as `f64`-accumulated
///   means. Clusters that lose all rows keep their previous centroid.
/// * Stops when an assignment pass changes nothing or after `max_iters`
///   passes.
///
/// `k` is clamped to `[1, data.rows()]`.
///
/// # Panics
/// Panics if `data` has no rows or no columns.
pub fn lloyd_kmeans(data: DatasetView<'_>, k: usize, max_iters: usize, seed: u64, threads: usize) -> KMeans {
    let n = data.rows();
    let d = data.cols();
    assert!(n > 0 && d > 0, "cannot cluster an empty dataset");
    let k = k.clamp(1, n);

    let mut r = rng::seeded(seed);
    let mut picks = rng::sample_without_replacement(&mut r, n, k);
    picks.sort_unstable();
    let mut centroids = data.select_rows(&picks);

    // `usize::MAX` marks "unassigned" so the first pass always counts as a
    // change for every row.
    let mut assignments = vec![usize::MAX; n];
    let mut iterations = 0;
    for _ in 0..max_iters.max(1) {
        iterations += 1;
        let changed = assign_rows(data, &centroids, threads, &mut assignments);
        if changed == 0 {
            break;
        }
        // Update step: f64-accumulated means per cluster.
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for (row, &a) in data.rows_iter().zip(&assignments) {
            counts[a] += 1;
            for (acc, &v) in sums[a * d..(a + 1) * d].iter_mut().zip(row) {
                *acc += v as f64;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                continue; // empty cluster keeps its previous centroid
            }
            let inv = 1.0 / count as f64;
            for j in 0..d {
                centroids.set(c, j, (sums[c * d + j] * inv) as f32);
            }
        }
    }
    KMeans { centroids, assignments, iterations }
}

/// One parallel assignment pass: writes each row's nearest-centroid id into
/// `out` and returns how many assignments changed.
fn assign_rows(data: DatasetView<'_>, centroids: &Matrix, threads: usize, out: &mut [usize]) -> usize {
    let n = data.rows();
    let threads = threads.clamp(1, n);
    if threads <= 1 {
        return assign_chunk(data, centroids, 0, out);
    }
    let chunk = n.div_ceil(threads);
    let mut changed = vec![0usize; out.len().div_ceil(chunk)];
    snoopy_pool::scope(|scope| {
        for ((t, slot), changed) in out.chunks_mut(chunk).enumerate().zip(changed.iter_mut()) {
            let start = t * chunk;
            scope.spawn(move || *changed = assign_chunk(data, centroids, start, slot));
        }
    });
    changed.iter().sum()
}

/// One-shot nearest-centroid assignment of `data`'s rows against a fixed
/// centroid set (ties to the lowest centroid index, chunk-parallel over
/// `threads` workers) — the append path of the incremental clustered index
/// folds new rows into an *existing* partition with this instead of
/// re-running Lloyd's per batch. Any total assignment yields valid
/// triangle-inequality bounds, so assigning against stale centroids only
/// costs pruning power, never correctness.
///
/// # Panics
/// Panics if `centroids` is empty or the dimensionalities disagree.
pub fn assign_to_centroids(data: DatasetView<'_>, centroids: &Matrix, threads: usize) -> Vec<usize> {
    assert!(centroids.rows() > 0, "cannot assign rows to an empty centroid set");
    assert_eq!(data.cols(), centroids.cols(), "row/centroid dimensionality mismatch");
    let mut out = vec![usize::MAX; data.rows()];
    if !out.is_empty() {
        assign_rows(data, centroids, threads, &mut out);
    }
    out
}

/// Assigns rows `[start, start + out.len())`; ties resolve to the lowest
/// cluster index (strict `<` keeps the first minimum).
fn assign_chunk(data: DatasetView<'_>, centroids: &Matrix, start: usize, out: &mut [usize]) -> usize {
    let mut changed = 0;
    for (i, slot) in out.iter_mut().enumerate() {
        let row = data.row(start + i);
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (c, cent) in centroids.rows_iter().enumerate() {
            let dist = Matrix::row_sq_dist(row, cent);
            if dist < best_d {
                best_d = dist;
                best = c;
            }
        }
        if *slot != best {
            *slot = best;
            changed += 1;
        }
    }
    changed
}

/// Rows regrouped into group-contiguous buffers.
///
/// Group `g` occupies rows `offsets[g]..offsets[g + 1]` of `data`;
/// `original[r]` is the input row index that regrouped row `r` was copied
/// from. Within a group, rows keep ascending original order, so a scan over a
/// group visits original indices in increasing order.
#[derive(Debug, Clone)]
pub struct RowPartition {
    /// The regrouped feature rows (same shape as the input).
    pub data: Matrix,
    /// `groups + 1` prefix offsets into `data`'s rows.
    pub offsets: Vec<usize>,
    /// Regrouped row → original row index.
    pub original: Vec<usize>,
}

impl RowPartition {
    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of rows in group `g`.
    pub fn group_len(&self, g: usize) -> usize {
        self.offsets[g + 1] - self.offsets[g]
    }

    /// Drops every regrouped row whose `keep` flag is false, compacting the
    /// row buffer, the original-index map, and the group offsets in place —
    /// the partition bookkeeping behind sliding-window eviction. Groups may
    /// become empty but are kept (callers needing dense groups compact
    /// separately); rows keep their order, so ascending original order within
    /// a group is preserved. Returns the number of rows removed.
    ///
    /// # Panics
    /// Panics if `keep.len()` differs from the regrouped row count.
    pub fn retain_rows(&mut self, keep: &[bool]) -> usize {
        assert_eq!(keep.len(), self.original.len(), "one keep flag per regrouped row required");
        let groups = self.groups();
        let cols = self.data.cols();
        let flat = self.data.data_mut();
        let mut new_offsets = Vec::with_capacity(groups + 1);
        new_offsets.push(0usize);
        let mut kept = 0usize;
        for g in 0..groups {
            #[allow(clippy::needless_range_loop)] // r indexes keep, original, and the flat buffer alike
            for r in self.offsets[g]..self.offsets[g + 1] {
                if keep[r] {
                    if kept != r {
                        flat.copy_within(r * cols..(r + 1) * cols, kept * cols);
                        self.original[kept] = self.original[r];
                    }
                    kept += 1;
                }
            }
            new_offsets.push(kept);
        }
        let removed = self.original.len() - kept;
        self.original.truncate(kept);
        self.data.truncate_rows(kept);
        self.offsets = new_offsets;
        removed
    }
}

/// Regroups `data`'s rows by `assignments` into `groups` contiguous buffers
/// (a stable counting sort by group id — a gather, necessarily a copy).
///
/// # Panics
/// Panics if `assignments` disagrees with the row count or contains an id
/// `>= groups`.
pub fn partition_rows(data: DatasetView<'_>, assignments: &[usize], groups: usize) -> RowPartition {
    assert_eq!(data.rows(), assignments.len(), "one assignment per row required");
    let mut counts = vec![0usize; groups];
    for &a in assignments {
        assert!(a < groups, "assignment {a} out of range for {groups} groups");
        counts[a] += 1;
    }
    let mut offsets = Vec::with_capacity(groups + 1);
    offsets.push(0usize);
    for &c in &counts {
        offsets.push(offsets.last().expect("non-empty") + c);
    }
    let mut cursor = offsets[..groups].to_vec();
    let mut original = vec![0usize; data.rows()];
    let mut out = Matrix::zeros(data.rows(), data.cols());
    for (i, &a) in assignments.iter().enumerate() {
        let pos = cursor[a];
        cursor[a] += 1;
        original[pos] = i;
        out.row_mut(pos).copy_from_slice(data.row(i));
    }
    RowPartition { data: out, offsets, original }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, d: usize, centers: usize, seed: u64) -> Matrix {
        let mut r = rng::seeded(seed);
        let centroids = Matrix::from_fn(centers, d, |_, _| (rng::normal(&mut r) * 5.0) as f32);
        Matrix::from_fn(n, d, |row, col| {
            centroids.get(row % centers, col) + (rng::normal(&mut r) * 0.1) as f32
        })
    }

    #[test]
    fn kmeans_is_deterministic_per_seed_and_thread_count() {
        let data = blobs(120, 6, 4, 3);
        let a = lloyd_kmeans(data.view(), 4, 20, 7, 1);
        let b = lloyd_kmeans(data.view(), 4, 20, 7, 8);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids.data(), b.centroids.data());
        let c = lloyd_kmeans(data.view(), 4, 20, 8, 1);
        // A different seed picks different initial rows (not a hard guarantee
        // in general, but true for this fixture).
        assert!(a.assignments != c.assignments || a.centroids.data() != c.centroids.data());
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        // Random-row init can collide inside one blob, so exact recovery is
        // per-seed; require it for at least one seed and the structural
        // invariants for all of them.
        let data = blobs(200, 5, 4, 11);
        let mut recovered = false;
        for seed in 0..8u64 {
            let km = lloyd_kmeans(data.view(), 4, 30, seed, 4);
            assert_eq!(km.centroids.rows(), 4);
            assert!(km.iterations >= 1);
            assert!(km.assignments.iter().all(|&a| a < 4));
            recovered |= (4..200).all(|i| km.assignments[i] == km.assignments[i % 4]);
        }
        assert!(recovered, "no seed in 0..8 recovered 4 well-separated blobs");
    }

    #[test]
    fn k_is_clamped_and_duplicates_are_tolerated() {
        let data = Matrix::from_fn(5, 3, |_, _| 1.25); // all rows identical
        let km = lloyd_kmeans(data.view(), 64, 10, 2, 2);
        assert_eq!(km.centroids.rows(), 5);
        assert!(km.assignments.iter().all(|&a| a < 5));
        // All rows tie to every centroid: the lowest cluster index wins.
        assert!(km.assignments.iter().all(|&a| a == km.assignments[0]));
    }

    #[test]
    fn partition_is_a_permutation_with_ascending_order_within_groups() {
        let data = blobs(97, 4, 3, 5);
        let km = lloyd_kmeans(data.view(), 3, 20, 9, 2);
        let part = partition_rows(data.view(), &km.assignments, km.centroids.rows());
        assert_eq!(part.groups(), 3);
        assert_eq!(*part.offsets.last().unwrap(), 97);
        let mut seen: Vec<usize> = part.original.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..97).collect::<Vec<_>>(), "partition must be a permutation");
        for g in 0..part.groups() {
            let group = &part.original[part.offsets[g]..part.offsets[g + 1]];
            assert!(group.windows(2).all(|w| w[0] < w[1]), "group {g} must keep ascending original order");
            for (r, &orig) in group.iter().enumerate() {
                assert_eq!(
                    part.data.row(part.offsets[g] + r),
                    data.row(orig),
                    "rows must be copied verbatim"
                );
                assert_eq!(km.assignments[orig], g);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_rejects_out_of_range_assignment() {
        let data = Matrix::zeros(3, 2);
        let _ = partition_rows(data.view(), &[0, 2, 1], 2);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn kmeans_rejects_empty_input() {
        let data = Matrix::zeros(0, 4);
        let _ = lloyd_kmeans(data.view(), 2, 5, 0, 1);
    }
}
