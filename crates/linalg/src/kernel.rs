//! The register-blocked dot-product microkernel: the one inner loop behind
//! every distance evaluation in the workspace.
//!
//! Pairwise distances used to be computed one `(query, row)` pair at a time
//! with a scalar accumulation (`acc += d * d`). That loop carries a serial
//! dependency through `acc`, so the compiler cannot vectorise it without
//! reassociating floating-point additions — which it (correctly) refuses to
//! do. This module fixes the accumulation order *by definition*:
//!
//! * [`dot`] accumulates into [`LANES`] independent lanes — element `i` goes
//!   to lane `i % LANES` (a trailing partial chunk fills lanes `0..rem`) —
//!   and the lanes are combined by a fixed pairwise tree. With the
//!   dependency chain split eight ways the loop auto-vectorises cleanly.
//! * [`dot_row_tile`] computes one query against a *tile* of consecutive
//!   rows, [`ROW_BLOCK`] rows at a time, so each loaded query chunk is
//!   reused across the register block instead of being re-streamed per row.
//! * [`dot_row_tile2`] computes **two** queries against the same row tile —
//!   the engine's hot configuration. The 2 × 4 register block reuses every
//!   loaded row chunk across both queries and every query chunk across four
//!   rows, cutting load traffic per accumulated element roughly in half
//!   again (measured ~2.4× over the 1 × 4 block at d = 64 on this
//!   workload's shapes).
//!
//! Crucially, every pair inside any block keeps its own lane accumulators
//! walking the dimensions in exactly the order of [`dot`], so the tiled
//! results are **bit-identical** to the scalar call on the same pair —
//! results cannot depend on tile shape, on pairing, or on which code path
//! computed them.
//!
//! Distance *expressions* (the norm-trick squared Euclidean, cosine
//! dissimilarity) live one layer up, in `snoopy_knn::kernel`; this module
//! only knows about dot products and squared norms. `f32` multiplies and
//! adds are exactly rounded IEEE operations, so the fixed order makes
//! results portable across machines as well as across shapes.

/// Independent accumulator lanes per dot product. Eight `f32` lanes fill one
/// 256-bit vector register (two 128-bit ones on SSE-only targets).
pub const LANES: usize = 8;

/// Rows evaluated per register block in the tile drivers.
pub const ROW_BLOCK: usize = 4;

/// Fixed pairwise reduction tree over the lane accumulators — part of the
/// kernel's bit-exactness contract (a linear re-sum would round differently).
#[inline]
fn sum_lanes(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Dot product `⟨a, b⟩` in the kernel's fixed lane order.
///
/// This is *the* reference accumulation: every tiled path in the workspace
/// produces bit-identical values to this function on the same pair.
///
/// # Panics
/// Debug-asserts equal lengths (callers pass rows of dimension-checked
/// views).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let (ca, ta) = a.as_chunks::<LANES>();
    let (cb, tb) = b.as_chunks::<LANES>();
    for (xa, xb) in ca.iter().zip(cb) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    for (l, (&x, &y)) in ta.iter().zip(tb).enumerate() {
        acc[l] += x * y;
    }
    sum_lanes(acc)
}

/// Squared Euclidean norm `‖a‖²` in the kernel's fixed lane order
/// (= [`dot`]`(a, a)`).
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// One register block: `q` against four rows, all four pairs sharing each
/// loaded query chunk. Per-pair accumulation order is identical to [`dot`].
#[inline]
fn dot_block4(q: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> [f32; 4] {
    let mut acc = [[0.0f32; LANES]; ROW_BLOCK];
    let (cq, tq) = q.as_chunks::<LANES>();
    let (c0, t0) = r0.as_chunks::<LANES>();
    let (c1, t1) = r1.as_chunks::<LANES>();
    let (c2, t2) = r2.as_chunks::<LANES>();
    let (c3, t3) = r3.as_chunks::<LANES>();
    for ((xq, x0), ((x1, x2), x3)) in cq.iter().zip(c0).zip(c1.iter().zip(c2).zip(c3)) {
        for l in 0..LANES {
            acc[0][l] += xq[l] * x0[l];
            acc[1][l] += xq[l] * x1[l];
            acc[2][l] += xq[l] * x2[l];
            acc[3][l] += xq[l] * x3[l];
        }
    }
    for (r, t) in [t0, t1, t2, t3].iter().enumerate() {
        for (l, (&x, &y)) in tq.iter().zip(t.iter()).enumerate() {
            acc[r][l] += x * y;
        }
    }
    [sum_lanes(acc[0]), sum_lanes(acc[1]), sum_lanes(acc[2]), sum_lanes(acc[3])]
}

/// The 2 × 4 register block: two queries against four rows, eight pairs
/// sharing every loaded chunk. Per-pair accumulation order is identical to
/// [`dot`].
#[inline]
fn dot_block2x4(qa: &[f32], qb: &[f32], rows: [&[f32]; ROW_BLOCK]) -> [[f32; ROW_BLOCK]; 2] {
    let mut acc = [[0.0f32; LANES]; 2 * ROW_BLOCK];
    let (ca, ta) = qa.as_chunks::<LANES>();
    let (cb, tb) = qb.as_chunks::<LANES>();
    let (c0, t0) = rows[0].as_chunks::<LANES>();
    let (c1, t1) = rows[1].as_chunks::<LANES>();
    let (c2, t2) = rows[2].as_chunks::<LANES>();
    let (c3, t3) = rows[3].as_chunks::<LANES>();
    for ((xa, xb), (((x0, x1), x2), x3)) in ca.iter().zip(cb).zip(c0.iter().zip(c1).zip(c2).zip(c3)) {
        for l in 0..LANES {
            acc[0][l] += xa[l] * x0[l];
            acc[1][l] += xa[l] * x1[l];
            acc[2][l] += xa[l] * x2[l];
            acc[3][l] += xa[l] * x3[l];
            acc[4][l] += xb[l] * x0[l];
            acc[5][l] += xb[l] * x1[l];
            acc[6][l] += xb[l] * x2[l];
            acc[7][l] += xb[l] * x3[l];
        }
    }
    for (r, t) in [t0, t1, t2, t3].iter().enumerate() {
        for (l, (&y, (&xa, &xb))) in t.iter().zip(ta.iter().zip(tb)).enumerate() {
            acc[r][l] += xa * y;
            acc[ROW_BLOCK + r][l] += xb * y;
        }
    }
    [
        [sum_lanes(acc[0]), sum_lanes(acc[1]), sum_lanes(acc[2]), sum_lanes(acc[3])],
        [sum_lanes(acc[4]), sum_lanes(acc[5]), sum_lanes(acc[6]), sum_lanes(acc[7])],
    ]
}

/// Fills `out[j] = ⟨q, row t0 + j of the row-major buffer `rows`⟩` for
/// `j in 0..out.len()`, walking the rows in register blocks of
/// [`ROW_BLOCK`] with a scalar tail. Every entry is bit-identical to
/// [`dot`] on the same pair — ragged tile edges (row counts not a multiple
/// of the block, dimensions not a multiple of [`LANES`]) only change
/// *which* loop computes a pair, never its value.
///
/// The row side is a raw `(buffer, cols)` pair rather than a
/// [`DatasetView`](crate::view::DatasetView) on purpose: the plain-slice
/// parameters are what lets LLVM keep the register block in registers
/// (callers destructure a view with `view.data()` / `view.cols()`). The
/// function is also deliberately *not* inlinable — the call boundary
/// carries the `noalias` guarantee on `out`; inlined into a consumer loop,
/// the tile stores could alias the row data and every chunk would be
/// reloaded, undoing the register blocking.
///
/// # Panics
/// Panics (via slice indexing) if `(t0 + out.len()) * cols` exceeds the
/// buffer or `q.len()` differs from `cols`.
#[inline(never)]
pub fn dot_row_tile(q: &[f32], rows: &[f32], cols: usize, t0: usize, out: &mut [f32]) {
    let n = out.len();
    let row = |r: usize| &rows[r * cols..(r + 1) * cols];
    let mut j = 0;
    while j + ROW_BLOCK <= n {
        let d = dot_block4(q, row(t0 + j), row(t0 + j + 1), row(t0 + j + 2), row(t0 + j + 3));
        out[j..j + ROW_BLOCK].copy_from_slice(&d);
        j += ROW_BLOCK;
    }
    while j < n {
        out[j] = dot(q, row(t0 + j));
        j += 1;
    }
}

/// Two-query variant of [`dot_row_tile`]: fills
/// `out_a[j] = ⟨qa, rows.row(t0 + j)⟩` and
/// `out_b[j] = ⟨qb, rows.row(t0 + j)⟩` through the 2 × 4 register block.
/// Bit-identical to two [`dot_row_tile`] calls (hence to [`dot`]) on the
/// same pairs.
///
/// # Panics
/// Panics if `out_a.len() != out_b.len()` or the tile range exceeds the
/// buffer.
#[inline(never)] // see `dot_row_tile` — same parameter-shape and `noalias` boundary argument
pub fn dot_row_tile2(
    qa: &[f32],
    qb: &[f32],
    rows: &[f32],
    cols: usize,
    t0: usize,
    out_a: &mut [f32],
    out_b: &mut [f32],
) {
    assert_eq!(out_a.len(), out_b.len(), "paired tile buffers must have equal lengths");
    let n = out_a.len();
    let row = |r: usize| &rows[r * cols..(r + 1) * cols];
    let mut j = 0;
    while j + ROW_BLOCK <= n {
        let block = [row(t0 + j), row(t0 + j + 1), row(t0 + j + 2), row(t0 + j + 3)];
        let [da, db] = dot_block2x4(qa, qb, block);
        out_a[j..j + ROW_BLOCK].copy_from_slice(&da);
        out_b[j..j + ROW_BLOCK].copy_from_slice(&db);
        j += ROW_BLOCK;
    }
    while j < n {
        out_a[j] = dot(qa, row(t0 + j));
        out_b[j] = dot(qb, row(t0 + j));
        j += 1;
    }
}

/// Asymmetric integer dot product `Σ v[j] · x[j]` of an `i16` query code
/// row against an `i8` data code row, accumulated in `i32` — the quantized
/// counterpart of [`dot`].
///
/// Unlike the float kernels there is no lane machinery here: integer
/// addition is associative, every product is exact, and the sum is the
/// mathematical integer whatever order the compiler picks — so the loop is
/// written as a plain reduction the autovectorizer turns into widening
/// multiply-add (`pmaddwd` on baseline x86-64) without any determinism
/// caveat. Bit-for-bit reproducibility across tile shapes, machines, and
/// thread counts is inherited from exactness.
///
/// The caller owns the overflow budget: with `|v[j]| ≤ 8191` and
/// `|x[j]| ≤ 127` the sum stays inside `i32` for up to 2064 dimensions
/// (`8191 · 127 · 2064 < 2³¹`); `snoopy-knn`'s quantized shadow enforces a
/// 2000-dimension cap before ever calling in.
///
/// # Panics
/// Debug-asserts equal lengths.
#[inline]
pub fn dot_q8(v: &[i16], x: &[i8]) -> i32 {
    debug_assert_eq!(v.len(), x.len());
    // Blocked 32 elements at a time: widen the `x` block to i16 first (byte
    // unpack + arithmetic shift), then reduce the block as an
    // i16 × i16 → i32 dot, which lowers to four full-width widening
    // multiply-adds (`pmaddwd`) with one horizontal reduction per block.
    // Measured ~2× over the straight `zip` reduction (which only manages
    // half-width multiply-adds) on baseline x86-64 — and any grouping
    // computes the same exact integer, so the block shape is purely a
    // codegen choice with no determinism caveat.
    let mut acc = 0i32;
    let mut vc = v.chunks_exact(32);
    let mut xc = x.chunks_exact(32);
    for (cv, cx) in (&mut vc).zip(&mut xc) {
        let mut wide = [0i16; 32];
        for (w, &b) in wide.iter_mut().zip(cx) {
            *w = b as i16;
        }
        let mut block = 0i32;
        for (&a, &b) in cv.iter().zip(&wide) {
            block += a as i32 * b as i32;
        }
        acc += block;
    }
    for (&a, &b) in vc.remainder().iter().zip(xc.remainder()) {
        acc += a as i32 * b as i32;
    }
    acc
}

/// Fills `out[j] = Σ v · code row t0 + j` over a row-major `i8` code buffer
/// — the quantized counterpart of [`dot_row_tile`], one byte per dimension
/// of row-side traffic. Exact integer results need no cross-loop
/// bit-identity argument; each row is one [`dot_q8`] reduction.
///
/// Same parameter-shape rationale as [`dot_row_tile`]: raw `(buffer, cols)`
/// slices plus the `#[inline(never)]` call boundary give the optimizer a
/// `noalias` view of `out` against the inputs.
///
/// # Panics
/// Panics (via slice indexing) if `(t0 + out.len()) * cols` exceeds the
/// code buffer or `v.len()` differs from `cols`.
#[inline(never)]
pub fn dot_q8_row_tile(v: &[i16], codes: &[i8], cols: usize, t0: usize, out: &mut [i32]) {
    for (j, o) in out.iter_mut().enumerate() {
        let r = t0 + j;
        *o = dot_q8(v, &codes[r * cols..(r + 1) * cols]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn wavy(n: usize, d: usize, phase: f32) -> Matrix {
        Matrix::from_fn(n, d, |r, c| ((r * d + c) as f32 * 0.61 + phase).sin() * 2.0)
    }

    /// Naive f64 dot for tolerance checks (the lane order is *not* expected
    /// to match this bit for bit, only to be close).
    fn dot_f64(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
    }

    #[test]
    fn lane_dot_is_close_to_f64_for_every_ragged_dimension() {
        for d in [1usize, 2, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
            let m = wavy(2, d, 0.3);
            let got = dot(m.row(0), m.row(1)) as f64;
            let want = dot_f64(m.row(0), m.row(1));
            let tol = 1e-5 * (1.0 + want.abs());
            assert!((got - want).abs() < tol, "d {d}: {got} vs {want}");
        }
    }

    #[test]
    fn tile_is_bit_identical_to_scalar_dot_for_ragged_shapes() {
        for d in [1usize, 3, 8, 11, 16, 29] {
            for n in [1usize, 2, 3, 4, 5, 7, 8, 13] {
                let rows = wavy(n, d, 0.0);
                let q = wavy(1, d, 1.1);
                for t0 in 0..n {
                    for len in 0..=(n - t0) {
                        let mut out = vec![0.0f32; len];
                        dot_row_tile(q.row(0), rows.data(), d, t0, &mut out);
                        for (j, &v) in out.iter().enumerate() {
                            let scalar = dot(q.row(0), rows.row(t0 + j));
                            assert_eq!(v.to_bits(), scalar.to_bits(), "d {d} n {n} t0 {t0} len {len} j {j}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn paired_tile_is_bit_identical_to_scalar_dot_for_ragged_shapes() {
        for d in [1usize, 3, 7, 8, 9, 16, 29] {
            for n in [1usize, 3, 4, 5, 8, 11] {
                let rows = wavy(n, d, 0.0);
                let queries = wavy(2, d, 1.7);
                for t0 in 0..n {
                    let len = n - t0;
                    let mut out_a = vec![0.0f32; len];
                    let mut out_b = vec![0.0f32; len];
                    dot_row_tile2(queries.row(0), queries.row(1), rows.data(), d, t0, &mut out_a, &mut out_b);
                    for j in 0..len {
                        let sa = dot(queries.row(0), rows.row(t0 + j));
                        let sb = dot(queries.row(1), rows.row(t0 + j));
                        assert_eq!(out_a[j].to_bits(), sa.to_bits(), "a: d {d} n {n} t0 {t0} j {j}");
                        assert_eq!(out_b[j].to_bits(), sb.to_bits(), "b: d {d} n {n} t0 {t0} j {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn norm_sq_matches_dot_with_self_and_simple_values() {
        let a = [3.0f32, 4.0];
        assert_eq!(norm_sq(&a), 25.0);
        let m = wavy(1, 23, 0.7);
        assert_eq!(norm_sq(m.row(0)).to_bits(), dot(m.row(0), m.row(0)).to_bits());
    }

    #[test]
    fn dot_is_exactly_symmetric() {
        let m = wavy(2, 37, 0.0);
        assert_eq!(dot(m.row(0), m.row(1)).to_bits(), dot(m.row(1), m.row(0)).to_bits());
    }

    fn wavy_codes(n: usize, d: usize, phase: i32) -> Vec<i8> {
        (0..n * d).map(|i| (((i as i32 * 37 + phase) % 255) - 127) as i8).collect()
    }

    fn wavy_qcodes(d: usize, phase: i32) -> Vec<i16> {
        (0..d).map(|i| (((i as i32 * 113 + phase) % 16383) - 8191) as i16).collect()
    }

    #[test]
    fn q8_dot_equals_exact_i64_sum() {
        // The i32 accumulation must be the mathematical integer — checked
        // against an i64 reference across ragged dimensions.
        for d in [1usize, 2, 7, 8, 9, 15, 16, 17, 31, 64, 257] {
            let v = wavy_qcodes(d, 11);
            let codes = wavy_codes(1, d, 5);
            let want: i64 = v.iter().zip(&codes).map(|(&a, &b)| a as i64 * b as i64).sum();
            assert_eq!(dot_q8(&v, &codes) as i64, want, "d {d}");
        }
    }

    #[test]
    fn q8_tile_matches_scalar_q8_dot_for_ragged_shapes() {
        for d in [1usize, 3, 8, 11, 16, 29] {
            for n in [1usize, 2, 3, 4, 5, 7, 8, 13] {
                let codes = wavy_codes(n, d, 3);
                let v = wavy_qcodes(d, 7);
                for t0 in 0..n {
                    for len in 0..=(n - t0) {
                        let mut out = vec![0i32; len];
                        dot_q8_row_tile(&v, &codes, d, t0, &mut out);
                        for (j, &got) in out.iter().enumerate() {
                            let scalar = dot_q8(&v, &codes[(t0 + j) * d..(t0 + j + 1) * d]);
                            assert_eq!(got, scalar, "d {d} n {n} t0 {t0} len {len} j {j}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn q8_extreme_codes_stay_inside_i32() {
        // The documented overflow budget: |v| ≤ 8191, |x| ≤ 127, d ≤ 2064
        // keeps the sum inside i32 — exercised at the worst corner.
        let d = 2064;
        let v = vec![8191i16; d];
        let codes = vec![127i8; d];
        let want = 8191i64 * 127 * d as i64;
        assert!(want <= i32::MAX as i64);
        assert_eq!(dot_q8(&v, &codes) as i64, want);
        let neg = vec![-127i8; d];
        assert_eq!(dot_q8(&v, &neg) as i64, -want);
        assert_eq!(dot_q8(&[8191], &[-127]), -8191 * 127);
    }

    #[test]
    fn empty_and_zero_inputs() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm_sq(&[]), 0.0);
        let z = vec![0.0f32; 13];
        assert_eq!(norm_sq(&z), 0.0);
        let mut out: Vec<f32> = vec![];
        dot_row_tile(&z, Matrix::zeros(4, 13).data(), 13, 2, &mut out);
        let mut out_b: Vec<f32> = vec![];
        dot_row_tile2(&z, &z, Matrix::zeros(4, 13).data(), 13, 2, &mut out, &mut out_b);
        assert_eq!(dot_q8(&[], &[]), 0);
        let mut out_q: Vec<i32> = vec![];
        dot_q8_row_tile(&[0i16; 13], &[0i8; 4 * 13], 13, 2, &mut out_q);
    }
}
