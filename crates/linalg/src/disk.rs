//! Out-of-core dataset backing: a versioned on-disk format plus an
//! mmap-backed [`DiskDataset`] that hands out the exact same zero-copy
//! [`DatasetView`] windows as an in-memory [`crate::Matrix`].
//!
//! ## Format
//!
//! A file is a fixed 64-byte header followed by the raw row-major payload
//! (`f32` features or `u32` labels, native byte order):
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"SNPYDSET"
//!      8     4  format version (currently 1)
//!     12     4  endianness tag 0x01020304 — a file written on a
//!               foreign-endian machine reads back as 0x04030201
//!     16     8  rows (u64)
//!     24     8  cols (u64; 1 for label files)
//!     32     8  FNV-1a 64 checksum of the payload bytes
//!     40     4  element kind: 0 = f32 features, 1 = u32 labels
//!     44     4  extra: num_classes for label files, 0 for features
//!     48    16  zero padding (reserves room for future fields)
//! ```
//!
//! The header is 64 bytes — a multiple of every element alignment — so a
//! page-aligned `mmap` base puts the payload on an `f32`/`u32` boundary by
//! construction (debug-asserted at every view).
//!
//! ## Validation contract
//!
//! [`DiskDataset::open`] / [`DiskLabels::open`] *never* return a garbage
//! view: wrong magic, an unknown version, a foreign-endian file, the wrong
//! element kind, or a payload whose byte length disagrees with the header
//! all fail with the matching [`DiskDatasetError`] variant. The payload
//! checksum is deliberately **not** verified at open (that would fault every
//! page of a dataset whose whole point is lazy paging) — callers that want
//! end-to-end integrity run [`DiskDataset::verify_checksum`], one streaming
//! pass.
//!
//! ## Backing
//!
//! On Unix the payload is memory-mapped read-only (`PROT_READ`,
//! `MAP_PRIVATE`) through a minimal raw-syscall wrapper — the one place in
//! the crate that uses `unsafe` — so views page in on demand and the OS
//! evicts cold pages under memory pressure. Elsewhere the payload is read
//! into an owned buffer (same API, eager residency).

use crate::view::DatasetView;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// First 8 bytes of every Snoopy disk-dataset file.
pub const MAGIC: [u8; 8] = *b"SNPYDSET";
/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;
/// Endianness probe: reads back byte-reversed on a foreign-endian machine.
pub const ENDIAN_TAG: u32 = 0x0102_0304;
/// Header length in bytes; also the payload offset. A multiple of the page
/// and element alignments, so mapped payloads are element-aligned.
pub const HEADER_LEN: usize = 64;

const KIND_F32: u32 = 0;
const KIND_U32_LABELS: u32 = 1;

/// Typed failure of opening or validating a disk dataset. Every variant
/// means "no view was produced" — the open path never hands out a window
/// over bytes it could not vouch for.
#[derive(Debug)]
pub enum DiskDatasetError {
    /// Underlying filesystem or mapping failure.
    Io(std::io::Error),
    /// The first 8 bytes are not [`MAGIC`] — not a Snoopy dataset file.
    BadMagic([u8; 8]),
    /// A format version this build does not understand.
    UnsupportedVersion(u32),
    /// The endianness tag read back as something other than [`ENDIAN_TAG`]:
    /// the file was written on a machine with different byte order.
    ForeignEndianness(u32),
    /// The header is valid but describes the other element kind (e.g. a
    /// labels sidecar opened as a feature matrix).
    WrongKind {
        /// Kind the caller asked for.
        expected: u32,
        /// Kind the header declares.
        found: u32,
    },
    /// `rows × cols × elem_size` overflows — the header is corrupt.
    ImplausibleShape {
        /// Row count the header declares.
        rows: u64,
        /// Column count the header declares.
        cols: u64,
    },
    /// The file's byte length disagrees with the header's shape.
    Truncated {
        /// Bytes the header implies (header + payload).
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload hash does not match the header checksum (only produced
    /// by the explicit `verify_checksum` pass).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        actual: u64,
    },
}

impl fmt::Display for DiskDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskDatasetError::Io(e) => write!(f, "disk dataset I/O error: {e}"),
            DiskDatasetError::BadMagic(m) => write!(f, "bad magic {m:02x?} (not a Snoopy dataset file)"),
            DiskDatasetError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            DiskDatasetError::ForeignEndianness(tag) => {
                write!(f, "endianness tag {tag:#010x} (file written on a foreign-endian machine)")
            }
            DiskDatasetError::WrongKind { expected, found } => {
                write!(f, "wrong element kind: expected {expected}, found {found}")
            }
            DiskDatasetError::ImplausibleShape { rows, cols } => {
                write!(f, "implausible shape {rows} x {cols} (payload size overflows)")
            }
            DiskDatasetError::Truncated { expected, actual } => {
                write!(f, "truncated file: header implies {expected} bytes, found {actual}")
            }
            DiskDatasetError::ChecksumMismatch { expected, actual } => {
                write!(f, "payload checksum mismatch: header {expected:#018x}, payload {actual:#018x}")
            }
        }
    }
}

impl std::error::Error for DiskDatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskDatasetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DiskDatasetError {
    fn from(e: std::io::Error) -> Self {
        DiskDatasetError::Io(e)
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and byte-order oblivious since it
/// hashes the payload in file order.
#[derive(Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Parsed, validated header fields.
struct Header {
    rows: usize,
    cols: usize,
    checksum: u64,
    extra: u32,
}

fn encode_header(rows: u64, cols: u64, checksum: u64, kind: u32, extra: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_ne_bytes());
    h[12..16].copy_from_slice(&ENDIAN_TAG.to_ne_bytes());
    h[16..24].copy_from_slice(&rows.to_ne_bytes());
    h[24..32].copy_from_slice(&cols.to_ne_bytes());
    h[32..40].copy_from_slice(&checksum.to_ne_bytes());
    h[40..44].copy_from_slice(&kind.to_ne_bytes());
    h[44..48].copy_from_slice(&extra.to_ne_bytes());
    h
}

/// Validates a raw header against the expected element kind and the actual
/// file length (`elem_size` bytes per element), in the order an archaeologist
/// would want the failure reported: identity, version, byte order, kind,
/// then shape.
fn decode_header(
    h: &[u8; HEADER_LEN],
    expected_kind: u32,
    elem_size: u64,
    file_len: u64,
) -> Result<Header, DiskDatasetError> {
    let u32_at = |o: usize| u32::from_ne_bytes(h[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_ne_bytes(h[o..o + 8].try_into().expect("8 bytes"));
    if h[0..8] != MAGIC {
        return Err(DiskDatasetError::BadMagic(h[0..8].try_into().expect("8 bytes")));
    }
    let version = u32_at(8);
    if version != FORMAT_VERSION {
        return Err(DiskDatasetError::UnsupportedVersion(version));
    }
    let endian = u32_at(12);
    if endian != ENDIAN_TAG {
        return Err(DiskDatasetError::ForeignEndianness(endian));
    }
    let kind = u32_at(40);
    if kind != expected_kind {
        return Err(DiskDatasetError::WrongKind { expected: expected_kind, found: kind });
    }
    let (rows, cols) = (u64_at(16), u64_at(24));
    let payload = rows
        .checked_mul(cols)
        .and_then(|n| n.checked_mul(elem_size))
        .and_then(|n| n.checked_add(HEADER_LEN as u64))
        .filter(|&n| n <= usize::MAX as u64)
        .ok_or(DiskDatasetError::ImplausibleShape { rows, cols })?;
    if payload != file_len {
        return Err(DiskDatasetError::Truncated { expected: payload, actual: file_len });
    }
    Ok(Header { rows: rows as usize, cols: cols as usize, checksum: u64_at(32), extra: u32_at(44) })
}

/// Reads the 64-byte header and reports the file length.
fn read_header(file: &mut File) -> Result<([u8; HEADER_LEN], u64), DiskDatasetError> {
    let len = file.metadata()?.len();
    if len < HEADER_LEN as u64 {
        return Err(DiskDatasetError::Truncated { expected: HEADER_LEN as u64, actual: len });
    }
    let mut h = [0u8; HEADER_LEN];
    file.read_exact(&mut h)?;
    Ok((h, len))
}

/// Minimal read-only `mmap` wrapper over raw syscalls — no `libc`
/// dependency, `PROT_READ` + `MAP_PRIVATE` only. The mapping covers the
/// whole file (header included) and is unmapped on drop.
#[cfg(unix)]
mod mapping {
    use std::ffi::c_void;
    use std::fs::File;
    use std::os::raw::c_int;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    /// A live read-only mapping of an entire file.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and owned: sharing a `&Mmap` across threads
    // is no different from sharing a `&[u8]`.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `len` bytes of `file` starting at offset 0. `len` must be
        /// non-zero (zero-length mappings are an `EINVAL` by spec).
        pub fn map(file: &File, len: usize) -> std::io::Result<Mmap> {
            assert!(len > 0, "cannot map an empty file");
            // SAFETY: a fresh anonymous-address read-only private mapping of
            // a file we hold open; failure is reported as MAP_FAILED (-1).
            let ptr = unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, held until drop. MAP_PRIVATE keeps concurrent file
            // writers from mutating our pages underneath us.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact range this struct mapped.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// Reinterprets the payload region of a whole-file mapping as a `T` slice,
/// debug-asserting the alignment the format guarantees (page-aligned base +
/// 64-byte header ⇒ element-aligned payload).
#[cfg(unix)]
fn payload_as<T>(bytes: &[u8], count: usize) -> &[T] {
    let payload = &bytes[HEADER_LEN..];
    debug_assert_eq!(payload.len(), count * size_of::<T>(), "header/payload length mismatch");
    debug_assert_eq!(
        payload.as_ptr() as usize % align_of::<T>(),
        0,
        "mmap payload must be element-aligned (page-aligned base + 64-byte header)"
    );
    // SAFETY: length and alignment checked above; T is a plain number type
    // (f32/u32) for which any bit pattern is valid.
    unsafe { std::slice::from_raw_parts(payload.as_ptr() as *const T, count) }
}

/// Views a native-endian scalar slice as its raw bytes — the bulk inverse
/// of [`payload_as`]. Writing and hashing the payload through one slice
/// produces byte-for-byte what per-element `to_ne_bytes` loops did, while
/// letting `write_all` and the checksum walk the buffer without a
/// 4-bytes-at-a-time call per element.
fn payload_bytes<T>(data: &[T]) -> &[u8] {
    // SAFETY: T is a plain number type (f32/u32) whose every byte is
    // initialised; the length covers exactly the slice's memory.
    unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data)) }
}

enum F32Backing {
    #[cfg(unix)]
    Mapped(mapping::Mmap),
    Owned(Vec<f32>),
}

enum U32Backing {
    #[cfg(unix)]
    Mapped(mapping::Mmap),
    Owned(Vec<u32>),
}

/// A read-only, disk-backed `rows × cols` f32 feature matrix. Opening
/// validates the header hard (see the [module docs](self)); the payload
/// itself pages in lazily through the OS on Unix.
///
/// [`DiskDataset::view`] hands out the same zero-copy [`DatasetView`] an
/// in-memory [`crate::Matrix`] does, so every downstream consumer — the
/// kernels, the kNN engines, the estimators — is oblivious to the backing.
pub struct DiskDataset {
    backing: F32Backing,
    rows: usize,
    cols: usize,
    checksum: u64,
}

impl DiskDataset {
    /// Writes `data` to `path` in the format of the [module docs](self),
    /// checksum included. Overwrites an existing file.
    pub fn write(path: &Path, data: DatasetView<'_>) -> Result<(), DiskDatasetError> {
        let payload = payload_bytes(data.data());
        let mut hash = Fnv1a::new();
        hash.update(payload);
        let header = encode_header(data.rows() as u64, data.cols() as u64, hash.finish(), KIND_F32, 0);
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&header)?;
        out.write_all(payload)?;
        out.flush()?;
        Ok(())
    }

    /// Opens and hard-validates `path`. On Unix the payload is memory-mapped
    /// (lazy residency); elsewhere it is read into an owned buffer. The
    /// checksum is *not* verified here — see [`DiskDataset::verify_checksum`].
    pub fn open(path: &Path) -> Result<Self, DiskDatasetError> {
        let mut file = File::open(path)?;
        let (raw, file_len) = read_header(&mut file)?;
        let h = decode_header(&raw, KIND_F32, size_of::<f32>() as u64, file_len)?;
        let count = h.rows * h.cols;
        let backing = if count == 0 {
            F32Backing::Owned(Vec::new())
        } else {
            open_f32_backing(&mut file, file_len as usize, count)?
        };
        Ok(DiskDataset { backing, rows: h.rows, cols: h.cols, checksum: h.checksum })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The payload checksum recorded in the header.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    fn floats(&self) -> &[f32] {
        match &self.backing {
            #[cfg(unix)]
            F32Backing::Mapped(m) => payload_as::<f32>(m.bytes(), self.rows * self.cols),
            F32Backing::Owned(v) => v,
        }
    }

    /// The zero-copy window over the (possibly memory-mapped) payload —
    /// indistinguishable from a [`crate::Matrix`] view downstream.
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView::from_raw(self.floats(), self.rows, self.cols)
    }

    /// One streaming pass re-hashing the payload against the header
    /// checksum. Faults every page in, so this is an explicit opt-in rather
    /// than part of [`DiskDataset::open`].
    pub fn verify_checksum(&self) -> Result<(), DiskDatasetError> {
        let mut hash = Fnv1a::new();
        hash.update(payload_bytes(self.floats()));
        let actual = hash.finish();
        if actual != self.checksum {
            return Err(DiskDatasetError::ChecksumMismatch { expected: self.checksum, actual });
        }
        Ok(())
    }
}

#[cfg(unix)]
fn open_f32_backing(file: &mut File, file_len: usize, _count: usize) -> Result<F32Backing, DiskDatasetError> {
    Ok(F32Backing::Mapped(mapping::Mmap::map(file, file_len)?))
}

#[cfg(not(unix))]
fn open_f32_backing(file: &mut File, _file_len: usize, count: usize) -> Result<F32Backing, DiskDatasetError> {
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut v = Vec::with_capacity(count);
    for chunk in bytes.chunks_exact(size_of::<f32>()) {
        v.push(f32::from_ne_bytes(chunk.try_into().expect("4 bytes")));
    }
    Ok(F32Backing::Owned(v))
}

/// The labels sidecar: a read-only, disk-backed `u32` label vector with the
/// class count carried in the header's extra field. Same format, same
/// validation contract, same lazy mapping as [`DiskDataset`].
pub struct DiskLabels {
    backing: U32Backing,
    len: usize,
    num_classes: usize,
    checksum: u64,
}

impl DiskLabels {
    /// Writes `labels` (with its class count) to `path`.
    pub fn write(path: &Path, labels: &[u32], num_classes: usize) -> Result<(), DiskDatasetError> {
        let payload = payload_bytes(labels);
        let mut hash = Fnv1a::new();
        hash.update(payload);
        let header =
            encode_header(labels.len() as u64, 1, hash.finish(), KIND_U32_LABELS, num_classes as u32);
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(&header)?;
        out.write_all(payload)?;
        out.flush()?;
        Ok(())
    }

    /// Opens and hard-validates a labels sidecar.
    pub fn open(path: &Path) -> Result<Self, DiskDatasetError> {
        let mut file = File::open(path)?;
        let (raw, file_len) = read_header(&mut file)?;
        let h = decode_header(&raw, KIND_U32_LABELS, size_of::<u32>() as u64, file_len)?;
        let count = h.rows * h.cols;
        let backing = if count == 0 {
            U32Backing::Owned(Vec::new())
        } else {
            open_u32_backing(&mut file, file_len as usize, count)?
        };
        Ok(DiskLabels { backing, len: count, num_classes: h.extra as usize, checksum: h.checksum })
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sidecar is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The class count recorded at write time.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The (possibly memory-mapped) labels.
    pub fn labels(&self) -> &[u32] {
        match &self.backing {
            #[cfg(unix)]
            U32Backing::Mapped(m) => payload_as::<u32>(m.bytes(), self.len),
            U32Backing::Owned(v) => v,
        }
    }

    /// Streaming checksum verification, mirroring
    /// [`DiskDataset::verify_checksum`].
    pub fn verify_checksum(&self) -> Result<(), DiskDatasetError> {
        let mut hash = Fnv1a::new();
        hash.update(payload_bytes(self.labels()));
        let actual = hash.finish();
        if actual != self.checksum {
            return Err(DiskDatasetError::ChecksumMismatch { expected: self.checksum, actual });
        }
        Ok(())
    }
}

#[cfg(unix)]
fn open_u32_backing(file: &mut File, file_len: usize, _count: usize) -> Result<U32Backing, DiskDatasetError> {
    Ok(U32Backing::Mapped(mapping::Mmap::map(file, file_len)?))
}

#[cfg(not(unix))]
fn open_u32_backing(file: &mut File, _file_len: usize, count: usize) -> Result<U32Backing, DiskDatasetError> {
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let mut v = Vec::with_capacity(count);
    for chunk in bytes.chunks_exact(size_of::<u32>()) {
        v.push(u32::from_ne_bytes(chunk.try_into().expect("4 bytes")));
    }
    Ok(U32Backing::Owned(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Self-cleaning scratch directory for the format tests.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "snoopy_disk_{tag}_{}_{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).expect("create scratch dir");
            Scratch(dir)
        }

        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * cols + c) as f32).sin() * 3.0)
    }

    #[test]
    fn f32_roundtrip_is_bit_identical_and_aligned() {
        let dir = Scratch::new("roundtrip");
        let m = sample(37, 5);
        let path = dir.file("features.snpy");
        DiskDataset::write(&path, m.view()).expect("write");
        let disk = DiskDataset::open(&path).expect("open");
        assert_eq!(disk.rows(), 37);
        assert_eq!(disk.cols(), 5);
        let v = disk.view();
        assert_eq!(v.data(), m.view().data(), "payload must round-trip bit for bit");
        assert_eq!(v.data().as_ptr() as usize % align_of::<f32>(), 0);
        disk.verify_checksum().expect("checksum");
    }

    #[test]
    fn labels_roundtrip_with_class_count() {
        let dir = Scratch::new("labels");
        let path = dir.file("labels.snpy");
        let y: Vec<u32> = (0..91).map(|i| i % 7).collect();
        DiskLabels::write(&path, &y, 7).expect("write");
        let disk = DiskLabels::open(&path).expect("open");
        assert_eq!(disk.labels(), &y[..]);
        assert_eq!(disk.num_classes(), 7);
        disk.verify_checksum().expect("checksum");
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let dir = Scratch::new("empty");
        let path = dir.file("empty.snpy");
        DiskDataset::write(&path, Matrix::zeros(0, 4).view()).expect("write");
        let disk = DiskDataset::open(&path).expect("open");
        assert_eq!(disk.rows(), 0);
        assert_eq!(disk.cols(), 4);
        assert!(disk.view().is_empty());
        disk.verify_checksum().expect("checksum of nothing");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let dir = Scratch::new("magic");
        let path = dir.file("bad.snpy");
        DiskDataset::write(&path, sample(4, 3).view()).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        bytes[0] = b'X';
        fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(DiskDataset::open(&path), Err(DiskDatasetError::BadMagic(_))));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let dir = Scratch::new("version");
        let path = dir.file("v9.snpy");
        DiskDataset::write(&path, sample(4, 3).view()).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        bytes[8..12].copy_from_slice(&9u32.to_ne_bytes());
        fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(DiskDataset::open(&path), Err(DiskDatasetError::UnsupportedVersion(9))));
    }

    #[test]
    fn foreign_endianness_is_rejected() {
        let dir = Scratch::new("endian");
        let path = dir.file("be.snpy");
        DiskDataset::write(&path, sample(4, 3).view()).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        let tag: [u8; 4] = bytes[12..16].try_into().expect("4 bytes");
        bytes[12..16].copy_from_slice(&[tag[3], tag[2], tag[1], tag[0]]);
        fs::write(&path, &bytes).expect("rewrite");
        assert!(matches!(DiskDataset::open(&path), Err(DiskDatasetError::ForeignEndianness(_))));
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let dir = Scratch::new("truncated");
        let path = dir.file("cut.snpy");
        DiskDataset::write(&path, sample(8, 4).view()).expect("write");
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncate");
        assert!(matches!(DiskDataset::open(&path), Err(DiskDatasetError::Truncated { .. })));
        let mut grown = bytes.clone();
        grown.extend_from_slice(&[0u8; 12]);
        fs::write(&path, &grown).expect("grow");
        assert!(matches!(DiskDataset::open(&path), Err(DiskDatasetError::Truncated { .. })));
        fs::write(&path, &bytes[..HEADER_LEN - 10]).expect("cut header");
        assert!(matches!(DiskDataset::open(&path), Err(DiskDatasetError::Truncated { .. })));
    }

    #[test]
    fn wrong_kind_is_rejected_both_ways() {
        let dir = Scratch::new("kind");
        let feat = dir.file("features.snpy");
        let lab = dir.file("labels.snpy");
        DiskDataset::write(&feat, sample(6, 1).view()).expect("write features");
        DiskLabels::write(&lab, &[0, 1, 2], 3).expect("write labels");
        assert!(matches!(DiskDataset::open(&lab), Err(DiskDatasetError::WrongKind { .. })));
        assert!(matches!(DiskLabels::open(&feat), Err(DiskDatasetError::WrongKind { .. })));
    }

    #[test]
    fn corrupted_payload_fails_checksum_but_still_opens() {
        let dir = Scratch::new("checksum");
        let path = dir.file("flip.snpy");
        DiskDataset::write(&path, sample(16, 4).view()).expect("write");
        let mut bytes = fs::read(&path).expect("read");
        let mid = HEADER_LEN + bytes[HEADER_LEN..].len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        // Open is lazy by contract: the flipped byte is only caught by the
        // explicit streaming verification pass.
        let disk = DiskDataset::open(&path).expect("open stays lazy");
        assert!(matches!(disk.verify_checksum(), Err(DiskDatasetError::ChecksumMismatch { .. })));
    }
}
