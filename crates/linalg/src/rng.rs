//! Random-number helpers built on `rand` only.
//!
//! The workspace avoids a dependency on `rand_distr`; the handful of
//! distributions needed (standard normal draws via Box–Muller, categorical
//! sampling, Dirichlet-ish simplex points, random subsets) are implemented
//! here. All helpers take `&mut impl Rng` so callers can thread a seeded
//! [`rand::rngs::StdRng`] through an entire experiment for reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws a single standard-normal value using the Box–Muller transform.
pub fn normal(rng: &mut impl Rng) -> f64 {
    // Avoid log(0) by sampling u1 from the open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal value with the given mean and standard deviation.
pub fn normal_with(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

/// Fills a vector with `n` i.i.d. standard-normal `f32` values.
pub fn normal_vec(rng: &mut impl Rng, n: usize) -> Vec<f32> {
    (0..n).map(|_| normal(rng) as f32).collect()
}

/// Samples an index from a discrete distribution given by non-negative
/// weights (not necessarily normalised).
///
/// # Panics
/// Panics if all weights are zero or the slice is empty.
pub fn categorical(rng: &mut impl Rng, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "categorical sampling from empty weights");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "categorical weights must not all be zero");
    let mut t = rng.gen::<f64>() * total;
    let mut last_nonzero = 0;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            last_nonzero = i;
        }
        t -= w;
        if t <= 0.0 && w > 0.0 {
            return i;
        }
    }
    // Floating-point slack can leave `t` marginally positive after the loop;
    // fall back to the last index with non-zero mass.
    last_nonzero
}

/// Samples a point from the probability simplex by normalising exponential
/// draws; `concentration > 1` pushes mass towards uniformity, `< 1` towards
/// sparse corners. Used to generate per-class topic/word distributions.
pub fn simplex_point(rng: &mut impl Rng, dim: usize, concentration: f64) -> Vec<f64> {
    // Gamma(k, 1) draws via the Marsaglia–Tsang method for k >= 1 and the
    // boost trick for k < 1; normalising Gamma draws yields a Dirichlet
    // sample with symmetric parameter `concentration`.
    let mut draws: Vec<f64> = (0..dim).map(|_| gamma(rng, concentration)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Degenerate fallback: uniform distribution.
        return vec![1.0 / dim as f64; dim];
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Gamma(shape, 1) sample (Marsaglia–Tsang squeeze method).
pub fn gamma(rng: &mut impl Rng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boosting: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Returns `k` distinct indices drawn uniformly from `0..n` (partial
/// Fisher–Yates). Order of the returned indices is random.
///
/// # Panics
/// Panics if `k > n`.
pub fn sample_without_replacement(rng: &mut impl Rng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// In-place Fisher–Yates shuffle.
pub fn shuffle<T>(rng: &mut impl Rng, items: &mut [T]) {
    let n = items.len();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Pre-computed cumulative distribution for repeated categorical sampling in
/// `O(log n)` per draw (the naive [`categorical`] helper is `O(n)`).
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    cdf: Vec<f64>,
}

impl CumulativeSampler {
    /// Builds the sampler from non-negative weights.
    ///
    /// # Panics
    /// Panics if the weights are empty or all zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "cumulative sampler needs at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "negative weight");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for c in &mut cdf {
            *c /= acc;
        }
        Self { cdf }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|probe| probe.partial_cmp(&u).expect("NaN in cdf")) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Draws from Bernoulli(p).
pub fn bernoulli(rng: &mut impl Rng, p: f64) -> bool {
    rng.gen::<f64>() < p
}

/// Poisson(λ) draw via inversion for small λ and normal approximation for
/// large λ; used for document-length sampling in the NLP-like generator.
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> usize {
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let v = normal_with(rng, lambda, lambda.sqrt()).round();
        v.max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = seeded(1);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = seeded(2);
        let weights = [0.1, 0.0, 0.9];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[categorical(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac2 = counts[2] as f64 / 20_000.0;
        assert!((frac2 - 0.9).abs() < 0.02, "frac {frac2}");
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn categorical_rejects_zero_weights() {
        let mut rng = seeded(3);
        categorical(&mut rng, &[0.0, 0.0]);
    }

    #[test]
    fn simplex_point_sums_to_one() {
        let mut rng = seeded(4);
        for conc in [0.1, 1.0, 10.0] {
            let p = simplex_point(&mut rng, 25, conc);
            assert_eq!(p.len(), 25);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = seeded(5);
        for shape in [0.5f64, 2.0, 7.5] {
            let n = 30_000;
            let mean = (0..n).map(|_| gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!((mean - shape).abs() < 0.12 * shape.max(1.0), "shape {shape}, mean {mean}");
        }
    }

    #[test]
    fn cumulative_sampler_matches_weights() {
        let mut rng = seeded(10);
        let sampler = CumulativeSampler::new(&[1.0, 3.0, 0.0, 6.0]);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[1] as f64 / 40_000.0 - 0.3).abs() < 0.02);
        assert!((counts[3] as f64 / 40_000.0 - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn cumulative_sampler_rejects_empty() {
        let _ = CumulativeSampler::new(&[]);
    }

    #[test]
    fn sampling_without_replacement_is_distinct_and_bounded() {
        let mut rng = seeded(6);
        let picks = sample_without_replacement(&mut rng, 100, 40);
        assert_eq!(picks.len(), 40);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
        assert!(picks.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = seeded(7);
        let mut items: Vec<usize> = (0..64).collect();
        shuffle(&mut rng, &mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = seeded(8);
        for lambda in [3.0f64, 80.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| poisson(&mut rng, lambda) as f64).sum::<f64>() / n as f64;
            assert!((mean - lambda).abs() < 0.05 * lambda + 0.2, "lambda {lambda}, mean {mean}");
        }
    }
}
