//! Feature standardisation and Gaussian random projections.
//!
//! Both are members of Snoopy's transformation zoo: standardisation is the
//! "with normalization" variant of several embeddings in Table IV, and random
//! projection is the classic dimensionality-reduction baseline used to
//! populate the zoo with deliberately mediocre transformations.

use crate::matrix::Matrix;
use crate::rng;
use crate::view::DatasetView;
use rand::Rng;

/// Per-feature z-scoring fitted on a training split.
#[derive(Debug, Clone)]
pub struct Standardizer {
    mean: Vec<f32>,
    inv_std: Vec<f32>,
}

impl Standardizer {
    /// Fits means and standard deviations on `data`. Features with (near-)zero
    /// variance are left unscaled to avoid dividing by zero.
    pub fn fit(data: &Matrix) -> Self {
        let mean: Vec<f32> = data.column_means().iter().map(|&m| m as f32).collect();
        let inv_std: Vec<f32> =
            data.column_stds().iter().map(|&s| if s > 1e-8 { (1.0 / s) as f32 } else { 1.0 }).collect();
        Self { mean, inv_std }
    }

    /// Applies the fitted scaling to every row of `data`.
    pub fn transform<'a>(&self, data: impl Into<DatasetView<'a>>) -> Matrix {
        let data = data.into();
        assert_eq!(data.cols(), self.mean.len(), "standardizer dimension mismatch");
        let mut out = data.to_matrix();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[j]) * self.inv_std[j];
            }
        }
        out
    }
}

/// Dense Gaussian random projection `R^d -> R^k` with entries
/// `N(0, 1/k)`, which approximately preserves pairwise distances
/// (Johnson–Lindenstrauss).
#[derive(Debug, Clone)]
pub struct RandomProjection {
    /// `d × k` projection matrix.
    map: Matrix,
}

impl RandomProjection {
    /// Creates a projection from `input_dim` to `output_dim` using the given seed.
    pub fn new(input_dim: usize, output_dim: usize, seed: u64) -> Self {
        let mut r = rng::seeded(seed);
        let scale = 1.0 / (output_dim as f64).sqrt();
        let map = Matrix::from_fn(input_dim, output_dim, |_, _| (rng::normal(&mut r) * scale) as f32);
        Self { map }
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.map.cols()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.map.rows()
    }

    /// Projects every row of `data`.
    pub fn transform<'a>(&self, data: impl Into<DatasetView<'a>>) -> Matrix {
        let data = data.into();
        assert_eq!(data.cols(), self.map.rows(), "random projection dimension mismatch");
        data.matmul(&self.map)
    }
}

/// Generates a random orthonormal-ish linear map by Gram–Schmidt on Gaussian
/// columns. Used by the simulated pre-trained encoders to mix latent and
/// nuisance directions deterministically.
pub fn random_orthonormal_map(input_dim: usize, output_dim: usize, seed: u64) -> Matrix {
    let mut r = rng::seeded(seed);
    let k = output_dim.min(input_dim);
    // Build orthonormal columns in f64, then emit d x output_dim (extra
    // columns, if any, are fresh Gaussian directions of unit norm).
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(output_dim);
    for _ in 0..output_dim {
        let mut v: Vec<f64> = (0..input_dim).map(|_| rng::normal(&mut r)).collect();
        for prev in cols.iter().take(k) {
            let dot: f64 = v.iter().zip(prev).map(|(a, b)| a * b).sum();
            for (vi, pi) in v.iter_mut().zip(prev) {
                *vi -= dot * pi;
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for vi in &mut v {
                *vi /= norm;
            }
        } else {
            // Extremely unlikely; fall back to a unit basis vector.
            let idx = r.gen_range(0..input_dim);
            v = vec![0.0; input_dim];
            v[idx] = 1.0;
        }
        cols.push(v);
    }
    Matrix::from_fn(input_dim, output_dim, |r_i, c_i| cols[c_i][r_i] as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn standardizer_zero_mean_unit_variance() {
        let mut r = rng::seeded(1);
        let data =
            Matrix::from_fn(500, 3, |_, c| (rng::normal_with(&mut r, c as f64 * 5.0, (c + 1) as f64)) as f32);
        let s = Standardizer::fit(&data);
        let t = s.transform(&data);
        let means = t.column_means();
        let stds = t.column_stds();
        for j in 0..3 {
            assert!(means[j].abs() < 1e-4, "mean[{j}] = {}", means[j]);
            assert!((stds[j] - 1.0).abs() < 1e-3, "std[{j}] = {}", stds[j]);
        }
    }

    #[test]
    fn standardizer_handles_constant_features() {
        let data = Matrix::from_vec(3, 2, vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0]);
        let s = Standardizer::fit(&data);
        let t = s.transform(&data);
        // Constant column becomes zero (mean removed) without NaNs.
        for r in 0..3 {
            assert_eq!(t.get(r, 0), 0.0);
            assert!(t.get(r, 1).is_finite());
        }
    }

    #[test]
    fn random_projection_shape_and_determinism() {
        let p1 = RandomProjection::new(64, 16, 9);
        let p2 = RandomProjection::new(64, 16, 9);
        assert_eq!(p1.output_dim(), 16);
        assert_eq!(p1.input_dim(), 64);
        let mut r = rng::seeded(2);
        let data = Matrix::from_fn(10, 64, |_, _| rng::normal(&mut r) as f32);
        assert_eq!(p1.transform(&data).data(), p2.transform(&data).data());
    }

    #[test]
    fn random_projection_roughly_preserves_distances() {
        let mut r = rng::seeded(3);
        let data = Matrix::from_fn(40, 256, |_, _| rng::normal(&mut r) as f32);
        let proj = RandomProjection::new(256, 64, 5).transform(&data);
        let mut ratios = Vec::new();
        for i in 0..data.rows() {
            for j in (i + 1)..data.rows() {
                let d_orig = Matrix::row_sq_dist(data.row(i), data.row(j)) as f64;
                let d_proj = Matrix::row_sq_dist(proj.row(i), proj.row(j)) as f64;
                ratios.push(d_proj / d_orig);
            }
        }
        let mean_ratio = crate::stats::mean(&ratios);
        assert!((mean_ratio - 1.0).abs() < 0.15, "mean ratio {mean_ratio}");
    }

    #[test]
    fn orthonormal_map_has_orthonormal_columns() {
        let m = random_orthonormal_map(32, 8, 4);
        for i in 0..8 {
            let ci: Vec<f32> = m.column(i);
            let norm = Matrix::row_dot(&ci, &ci);
            assert!((norm - 1.0).abs() < 1e-4);
            for j in (i + 1)..8 {
                let cj: Vec<f32> = m.column(j);
                let dot = Matrix::row_dot(&ci, &cj);
                assert!(dot.abs() < 1e-4, "columns {i},{j} dot {dot}");
            }
        }
    }
}
