//! # snoopy-pool
//!
//! A small persistent work-stealing thread pool — the one set of worker
//! threads every parallel path in the workspace shares.
//!
//! Before this crate existed, each `EvalEngine` call, each k-means
//! assignment pass, and each bandit round spawned fresh scoped threads
//! (`std::thread::scope`) and joined them microseconds later. A feasibility
//! *service* answering many small requests pays that churn on every hot
//! call, and nesting (bandit arms spawning engine workers spawning nothing)
//! oversubscribes the machine. This pool replaces all of it:
//!
//! * **Persistent workers.** `ThreadPool::new(n)` spawns `n` workers once;
//!   submitting a task is a queue push + condvar notify, not a thread spawn.
//! * **Per-worker deques + global injector.** A worker pushes its own
//!   spawns onto its local deque and pops them LIFO (cache-warm); external
//!   submissions land in the injector; idle workers steal FIFO from the
//!   injector first, then from other workers — classic work stealing, with
//!   one `Mutex`-guarded queue set instead of lock-free deques (tasks here
//!   are chunk-sized scans and arm pulls, microseconds and up, so queue
//!   contention is noise).
//! * **Scoped spawning.** [`scope`] mirrors `std::thread::scope`: tasks may
//!   borrow from the caller's stack, and the scope does not return until
//!   every spawned task ran. While waiting, the scope's owner *helps* —
//!   it pops and runs pool tasks — so nested scopes (a bandit arm task
//!   opening an engine scope on the same pool) can never deadlock, even on
//!   a one-worker pool. Panics inside tasks are caught and resumed on the
//!   scope owner, like `std::thread::scope` join does.
//! * **Detached tasks with completion handles.** [`spawn`] submits one
//!   `'static` task and returns a [`JoinHandle`] to its eventual result —
//!   the primitive behind pipelined work that outlives any single scope
//!   (shard prefetch, background checksum verification). [`JoinHandle::join`]
//!   *helps* exactly like a waiting scope does, so joining from inside a
//!   pool task cannot deadlock even on a one-worker pool; dropping a handle
//!   also waits for the task (a `JoinHandle` is a completion obligation, not
//!   a fire-and-forget token — see its docs).
//! * **Determinism.** The pool never changes *what* is computed, only
//!   *where*: callers split work into chunks exactly as before, each chunk
//!   writes a disjoint `&mut` slice, and every consumer in this workspace
//!   admits candidates by a total order (`(distance, index)`). Results are
//!   bit-identical at every worker count — pinned by proptests in
//!   `snoopy-knn`.
//!
//! ## Current pool and worker counts
//!
//! [`workers`] / [`scope`] operate on the *current* pool: the pool whose
//! [`ThreadPool::install`] frame encloses the call (worker threads are
//! permanently installed on their own pool), falling back to the lazily
//! created global pool. The global pool's size is resolved **once** —
//! `SNOOPY_POOL_WORKERS` if set, else `available_parallelism()` clamped to
//! `[1, 16]` — so `EvalEngine::num_threads()` and `Arm::on_concurrency`
//! derive from one cached value instead of re-querying the OS per call.
//!
//! ```
//! let pool = snoopy_pool::ThreadPool::new(2);
//! let mut out = vec![0usize; 8];
//! pool.install(|| {
//!     snoopy_pool::scope(|s| {
//!         for (i, slot) in out.iter_mut().enumerate() {
//!             s.spawn(move || *slot = i * i);
//!         }
//!     });
//! });
//! assert_eq!(out[7], 49);
//! ```

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Task = Box<dyn FnOnce() + Send + 'static>;

/// All queues of one pool behind a single lock: the global injector plus one
/// deque per worker. Tasks in this workspace are chunk-sized (a blocked
/// distance scan, an arm pull), so one uncontended-in-practice mutex beats
/// the complexity of lock-free deques.
struct Queues {
    injector: VecDeque<Task>,
    locals: Vec<VecDeque<Task>>,
    shutdown: bool,
}

struct Shared {
    queues: Mutex<Queues>,
    /// Signalled on every push (and at shutdown); workers sleep here.
    work_ready: Condvar,
}

impl Shared {
    /// Pops one task: own deque back (LIFO, cache-warm), then injector
    /// front, then steal from the other workers' fronts (FIFO).
    fn pop_locked(q: &mut Queues, me: Option<usize>) -> Option<Task> {
        if let Some(i) = me {
            if let Some(t) = q.locals[i].pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = q.injector.pop_front() {
            return Some(t);
        }
        let n = q.locals.len();
        let start = me.map_or(0, |i| i + 1);
        for off in 0..n {
            let j = (start + off) % n;
            if Some(j) == me {
                continue;
            }
            if let Some(t) = q.locals[j].pop_front() {
                return Some(t);
            }
        }
        None
    }

    fn try_pop(&self, me: Option<usize>) -> Option<Task> {
        let mut q = self.queues.lock().expect("pool queue lock poisoned");
        Self::pop_locked(&mut q, me)
    }

    fn push(&self, task: Task, me: Option<usize>) {
        {
            let mut q = self.queues.lock().expect("pool queue lock poisoned");
            match me {
                Some(i) => q.locals[i].push_back(task),
                None => q.injector.push_back(task),
            }
        }
        self.work_ready.notify_one();
    }
}

/// What a thread knows about the pool it belongs to (or has installed).
#[derive(Clone)]
struct PoolCtx {
    shared: Arc<Shared>,
    workers: usize,
    /// `Some(i)` on pool worker `i`; `None` on threads that merely
    /// installed the pool.
    worker_index: Option<usize>,
}

thread_local! {
    static CURRENT: RefCell<Option<PoolCtx>> = const { RefCell::new(None) };
}

/// A handle to a persistent pool of worker threads. Dropping the last handle
/// shuts the workers down and joins them (the global pool is never dropped).
#[derive(Clone)]
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    shared: Arc<Shared>,
    workers: usize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queues.lock().expect("pool queue lock poisoned");
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.lock().expect("pool handle lock poisoned").drain(..) {
            let _ = h.join();
        }
    }
}

impl ThreadPool {
    /// Spawns a pool with `workers` persistent worker threads (clamped to
    /// ≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: Mutex::new(Queues {
                injector: VecDeque::new(),
                locals: (0..workers).map(|_| VecDeque::new()).collect(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("snoopy-pool-{i}"))
                    .spawn(move || worker_loop(shared, i, workers))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { inner: Arc::new(PoolInner { shared, workers, handles: Mutex::new(handles) }) }
    }

    /// Number of persistent worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Runs `f` with this pool installed as the calling thread's current
    /// pool: [`scope`] and [`workers`] inside `f` (and inside anything it
    /// calls) resolve to this pool instead of the global one. Restored on
    /// exit, including on panic.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let ctx = PoolCtx {
            shared: Arc::clone(&self.inner.shared),
            workers: self.inner.workers,
            worker_index: None,
        };
        let prev = CURRENT.with(|c| c.borrow_mut().replace(ctx));
        struct Restore(Option<PoolCtx>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// [`scope`] on this specific pool, regardless of what is installed.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let me = current_ctx()
            .filter(|ctx| Arc::ptr_eq(&ctx.shared, &self.inner.shared))
            .and_then(|ctx| ctx.worker_index);
        scope_on(&self.inner.shared, me, f)
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize, workers: usize) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(PoolCtx { shared: Arc::clone(&shared), workers, worker_index: Some(index) });
    });
    loop {
        let task = {
            let mut q = shared.queues.lock().expect("pool queue lock poisoned");
            loop {
                if let Some(t) = Shared::pop_locked(&mut q, Some(index)) {
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work_ready.wait(q).expect("pool queue lock poisoned");
            }
        };
        task();
    }
}

fn current_ctx() -> Option<PoolCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The cached worker count the global pool is (or will be) built with:
/// `SNOOPY_POOL_WORKERS` if set and valid (a positive integer), otherwise
/// `available_parallelism()`, clamped to `[1, 16]`. Resolved exactly once
/// per process. An invalid value — `0`, unparseable, empty — is **rejected
/// with a one-time warning on stderr** and the machine-shaped default is
/// used instead: a typo'd pin must not silently reshape every parallel
/// consumer in the process.
pub fn default_workers() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let from_env = std::env::var("SNOOPY_POOL_WORKERS").ok().and_then(|v| match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!(
                    "warning: ignoring invalid SNOOPY_POOL_WORKERS={v:?} \
                         (expected an integer >= 1); using available parallelism"
                );
                None
            }
        });
        from_env
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
            .clamp(1, 16)
    })
}

fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(default_workers()))
}

/// Worker count of the current pool (the innermost installed one, else the
/// global pool). This is the machine-shaped default every parallel consumer
/// sizes its chunking by.
pub fn workers() -> usize {
    match current_ctx() {
        Some(ctx) => ctx.workers,
        None => global().workers(),
    }
}

/// Per-scope completion state. Tasks hold an `Arc` to it; the scope owner
/// waits (helping) until `pending` drains to zero, then resumes the first
/// captured panic, if any.
struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

struct ScopeSync {
    pending: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// A spawn handle tied to the enclosing [`scope`] call; tasks may borrow
/// anything that outlives that call (`'env`).
pub struct Scope<'pool, 'env> {
    shared: &'pool Arc<Shared>,
    state: Arc<ScopeState>,
    /// The spawning thread's worker index on this pool, if any — its spawns
    /// go to its local deque (LIFO) instead of the injector.
    me: Option<usize>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Spawns a task onto the pool. The task runs at most once, on some pool
    /// worker or on the scope owner while it waits; the enclosing [`scope`]
    /// call returns only after the task finished.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        self.state.sync.lock().expect("scope lock poisoned").pending += 1;
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            let mut sync = state.sync.lock().expect("scope lock poisoned");
            if let Err(p) = result {
                sync.panic.get_or_insert(p);
            }
            sync.pending -= 1;
            if sync.pending == 0 {
                drop(sync);
                state.done.notify_all();
            }
        });
        // SAFETY: lifetime erasure only. `scope_on` does not return until
        // `pending` reaches zero, i.e. until this closure has *finished*
        // executing (it decrements `pending` as its final act), so every
        // `'env` borrow the task captures strictly outlives its use. The
        // task box never outlives execution: whichever thread pops it runs
        // and drops it.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(task)
        };
        self.shared.push(task, self.me);
    }
}

/// Runs `f` with a [`Scope`] on the current pool (innermost installed, else
/// global) and waits for every task it spawned — executing queued pool tasks
/// itself while it waits, so nested scopes make progress even on a
/// one-worker pool. The first task panic is resumed here, after all tasks
/// finished (mirroring `std::thread::scope`).
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
    match current_ctx() {
        Some(ctx) => scope_on(&ctx.shared, ctx.worker_index, f),
        None => {
            let pool = global();
            scope_on(&pool.inner.shared, None, f)
        }
    }
}

fn scope_on<'env, R>(shared: &Arc<Shared>, me: Option<usize>, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
    let state = Arc::new(ScopeState {
        sync: Mutex::new(ScopeSync { pending: 0, panic: None }),
        done: Condvar::new(),
    });
    let scope = Scope { shared, state: Arc::clone(&state), me, _env: std::marker::PhantomData };
    // `f` itself may panic after spawning; the spawned tasks still borrow
    // the caller's stack, so completion must be awaited before unwinding.
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    complete_scope(shared, &state, me);
    match result {
        Ok(r) => {
            let panic = state.sync.lock().expect("scope lock poisoned").panic.take();
            if let Some(p) = panic {
                resume_unwind(p);
            }
            r
        }
        Err(p) => resume_unwind(p),
    }
}

/// Waits until every task of `state` ran, executing available pool tasks in
/// the meantime (the "caller helps" rule that makes nesting deadlock-free).
fn complete_scope(shared: &Arc<Shared>, state: &Arc<ScopeState>, me: Option<usize>) {
    loop {
        if state.sync.lock().expect("scope lock poisoned").pending == 0 {
            return;
        }
        if let Some(task) = shared.try_pop(me) {
            // Possibly a task of an unrelated scope — running it is still
            // progress, and our own queued tasks are reachable the same way.
            task();
            continue;
        }
        // Nothing runnable anywhere: our remaining tasks are in flight on
        // other threads. Sleep until one completes, then rescan.
        let mut sync = state.sync.lock().expect("scope lock poisoned");
        while sync.pending > 0 {
            sync = state.done.wait(sync).expect("scope lock poisoned");
        }
        return;
    }
}

/// Completion state of one detached task: the slot the worker stores the
/// (caught) result into, plus the condvar a joiner sleeps on when the pool
/// has nothing else runnable.
struct TaskState<T> {
    sync: Mutex<Option<std::thread::Result<T>>>,
    done: Condvar,
}

/// Owner side of a detached task submitted with [`spawn`] /
/// [`ThreadPool::spawn`].
///
/// A `JoinHandle` is a **completion obligation**, not a fire-and-forget
/// token: [`JoinHandle::join`] waits for the task and returns its result
/// (resuming the task's panic, if it panicked), and *dropping* the handle
/// also waits for the task to finish — discarding the result and swallowing
/// any panic payload. Wait-on-drop is what lets callers erase non-`'static`
/// borrows into a spawned task soundly: as long as every handle is joined or
/// dropped before the borrowed data goes away, the task can never observe a
/// dangling reference, even while unwinding. Both `join` and the drop wait
/// *help* — they pop and run queued pool tasks — so waiting from inside a
/// pool task cannot deadlock, even on a one-worker pool.
pub struct JoinHandle<T> {
    shared: Arc<Shared>,
    /// `Some` until the result has been claimed by [`join`] (or awaited by
    /// drop); taking it is what disarms the drop wait.
    state: Option<Arc<TaskState<T>>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has finished running (its result is ready to
    /// [`join`] without waiting).
    pub fn is_finished(&self) -> bool {
        match &self.state {
            Some(state) => state.sync.lock().expect("task lock poisoned").is_some(),
            None => true,
        }
    }

    /// Waits for the task and returns its result. If the task panicked, the
    /// panic is resumed here. While waiting, this thread executes queued
    /// pool tasks (the same "caller helps" rule as [`scope`]), so joining
    /// from inside a pool task makes progress even on a one-worker pool.
    pub fn join(mut self) -> T {
        let state = self.state.take().expect("join handle already consumed");
        complete_task(&self.shared, &state, help_index(&self.shared));
        let result = state
            .sync
            .lock()
            .expect("task lock poisoned")
            .take()
            .expect("completed task must have stored a result");
        match result {
            Ok(v) => v,
            Err(p) => resume_unwind(p),
        }
    }
}

impl<T> Drop for JoinHandle<T> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            complete_task(&self.shared, &state, help_index(&self.shared));
        }
    }
}

/// The calling thread's worker index on `shared`'s pool, if it is one of its
/// workers — resolved at wait time, not spawn time, because a handle may be
/// joined on a different thread than the one that spawned it.
fn help_index(shared: &Arc<Shared>) -> Option<usize> {
    current_ctx().filter(|ctx| Arc::ptr_eq(&ctx.shared, shared)).and_then(|ctx| ctx.worker_index)
}

/// Waits until the detached task of `state` stored its result, executing
/// available pool tasks in the meantime (mirrors [`complete_scope`]).
fn complete_task<T>(shared: &Arc<Shared>, state: &TaskState<T>, me: Option<usize>) {
    loop {
        if state.sync.lock().expect("task lock poisoned").is_some() {
            return;
        }
        if let Some(task) = shared.try_pop(me) {
            task();
            continue;
        }
        // Nothing runnable anywhere: the task is in flight on another
        // thread. Sleep until it stores its result.
        let mut sync = state.sync.lock().expect("task lock poisoned");
        while sync.is_none() {
            sync = state.done.wait(sync).expect("task lock poisoned");
        }
        return;
    }
}

/// Submits one detached `'static` task to the current pool (innermost
/// installed, else global) and returns a [`JoinHandle`] to its eventual
/// result. Unlike [`scope`], the task's lifetime is not tied to any stack
/// frame — it is tied to the handle (which waits on drop; see
/// [`JoinHandle`]).
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    match current_ctx() {
        Some(ctx) => spawn_on(&ctx.shared, ctx.worker_index, f),
        None => {
            let pool = global();
            spawn_on(&pool.inner.shared, None, f)
        }
    }
}

impl ThreadPool {
    /// [`spawn`] on this specific pool, regardless of what is installed.
    pub fn spawn<T, F>(&self, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let me = current_ctx()
            .filter(|ctx| Arc::ptr_eq(&ctx.shared, &self.inner.shared))
            .and_then(|ctx| ctx.worker_index);
        spawn_on(&self.inner.shared, me, f)
    }
}

fn spawn_on<T, F>(shared: &Arc<Shared>, me: Option<usize>, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let state = Arc::new(TaskState { sync: Mutex::new(None), done: Condvar::new() });
    let task_state = Arc::clone(&state);
    let task: Task = Box::new(move || {
        let result = catch_unwind(AssertUnwindSafe(f));
        *task_state.sync.lock().expect("task lock poisoned") = Some(result);
        task_state.done.notify_all();
    });
    shared.push(task, me);
    JoinHandle { shared: Arc::clone(shared), state: Some(state) }
}

/// Runs two closures, potentially in parallel, and returns both results —
/// the binary convenience over [`scope`].
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|| rb = Some(b()));
        a()
    });
    (ra, rb.expect("spawned half of join completed"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_every_task_and_borrows_stack() {
        let pool = ThreadPool::new(2);
        let mut out = vec![0usize; 100];
        pool.install(|| {
            scope(|s| {
                for (i, slot) in out.iter_mut().enumerate() {
                    s.spawn(move || *slot = i + 1);
                }
            });
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }

    #[test]
    fn nested_scopes_complete_on_a_single_worker() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.install(|| {
            scope(|outer| {
                for _ in 0..4 {
                    outer.spawn(|| {
                        scope(|inner| {
                            for _ in 0..4 {
                                inner.spawn(|| {
                                    hits.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn install_overrides_worker_count_and_restores() {
        let outer = ThreadPool::new(3);
        let inner = ThreadPool::new(2);
        outer.install(|| {
            assert_eq!(workers(), 3);
            inner.install(|| assert_eq!(workers(), 2));
            assert_eq!(workers(), 3);
        });
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(2);
        let (a, b) = pool.install(|| join(|| 2 + 2, || "ok"));
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_ran() {
        let pool = ThreadPool::new(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                scope(|s| {
                    s.spawn(|| panic!("boom"));
                    for _ in 0..8 {
                        s.spawn(|| {
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }));
        assert!(result.is_err(), "the task panic must surface at the scope");
        assert_eq!(ran.load(Ordering::Relaxed), 8, "other tasks still ran to completion");
    }

    #[test]
    fn many_scopes_reuse_the_same_workers() {
        let pool = ThreadPool::new(2);
        pool.install(|| {
            for round in 0..200 {
                let mut acc = [0usize; 8];
                scope(|s| {
                    for (i, slot) in acc.iter_mut().enumerate() {
                        s.spawn(move || *slot = round + i);
                    }
                });
                assert!(acc.iter().enumerate().all(|(i, &v)| v == round + i));
            }
        });
    }

    #[test]
    fn default_workers_is_cached_and_positive() {
        let a = default_workers();
        let b = default_workers();
        assert_eq!(a, b);
        assert!((1..=16).contains(&a));
    }

    #[test]
    fn spawn_join_returns_the_task_result() {
        let pool = ThreadPool::new(2);
        let handle = pool.spawn(|| 21 * 2);
        assert_eq!(handle.join(), 42);
    }

    #[test]
    fn spawn_resolves_to_the_installed_pool() {
        let pool = ThreadPool::new(2);
        let value = pool.install(|| spawn(|| String::from("installed")).join());
        assert_eq!(value, "installed");
    }

    #[test]
    fn join_helps_on_a_single_worker_pool() {
        // The outer task occupies the only worker and joins an inner detached
        // task; without help-while-wait this deadlocks.
        let pool = ThreadPool::new(1);
        let outer = pool.spawn(|| spawn(|| 7usize).join() + 1);
        assert_eq!(outer.join(), 8);
    }

    #[test]
    fn join_resumes_the_task_panic() {
        let pool = ThreadPool::new(2);
        let handle = pool.spawn(|| -> usize { panic!("detached boom") });
        let result = catch_unwind(AssertUnwindSafe(move || handle.join()));
        assert!(result.is_err(), "the task panic must surface at join");
    }

    #[test]
    fn dropping_a_handle_waits_for_the_task() {
        let pool = ThreadPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let ran = Arc::clone(&ran);
            let handle = pool.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                ran.fetch_add(1, Ordering::Relaxed);
            });
            drop(handle);
        }
        assert_eq!(ran.load(Ordering::Relaxed), 1, "drop must not return before the task finished");
    }

    #[test]
    fn is_finished_becomes_true_after_completion() {
        let pool = ThreadPool::new(1);
        let gate = Arc::new(AtomicUsize::new(0));
        let handle = {
            let gate = Arc::clone(&gate);
            pool.spawn(move || {
                while gate.load(Ordering::Acquire) == 0 {
                    std::hint::spin_loop();
                }
            })
        };
        assert!(!handle.is_finished(), "task is gated and cannot have finished");
        gate.store(1, Ordering::Release);
        handle.join();
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        let pool = ThreadPool::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        {
            let count = Arc::clone(&count);
            pool.scope(|s| {
                s.spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        drop(pool);
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}
