//! `SNOOPY_POOL_WORKERS` validation, in its own test binary so this process
//! resolves [`snoopy_pool::default_workers`] exactly once with the rigged
//! environment: an invalid pin (`0` here — a plausible "disable threading"
//! guess that would deadlock a zero-worker pool) must be rejected in favour
//! of the machine-shaped default, not silently honoured or clamped.

#[test]
fn invalid_pool_workers_pin_falls_back_to_machine_default() {
    std::env::set_var("SNOOPY_POOL_WORKERS", "0");
    let n = snoopy_pool::default_workers();
    assert!((1..=16).contains(&n), "fallback worker count {n} out of range");
    // The rejection is cached: later reads (even after the env changes)
    // keep the resolved fallback.
    std::env::set_var("SNOOPY_POOL_WORKERS", "2");
    assert_eq!(snoopy_pool::default_workers(), n);
}
