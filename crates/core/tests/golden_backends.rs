//! Golden end-to-end parity: the whole feasibility pipeline — streamed arm
//! evaluation, minimum aggregation, and all five Bayes-error estimators —
//! must produce **identical** results whether distances flow through the
//! exhaustive engine, the exact-pruned clustered index, or the int8
//! scalar-quantized two-phase scan. The non-exhaustive backends are forced
//! (tiny fixtures never cross the auto-selection threshold) so both pruned
//! paths are genuinely exercised end to end.

use snoopy_bandit::SelectionStrategy;
use snoopy_core::{FeasibilityStudy, SnoopyConfig, StudyReport};
use snoopy_data::registry::{load_clean, SizeScale};
use snoopy_embeddings::zoo_for_task;
use snoopy_estimators::{
    default_estimators, estimate_all_with_backend, shared_neighbor_table_with_backend, shared_table_k,
    LabeledView,
};
use snoopy_knn::EvalBackend;

const CLUSTERED: EvalBackend = EvalBackend::clustered(5);
const QUANTIZED: EvalBackend = EvalBackend::quantized(5);

fn run(backend: EvalBackend) -> StudyReport {
    let task = load_clean("mnist", SizeScale::Tiny, 42);
    let zoo = zoo_for_task(&task, 7);
    let config = SnoopyConfig::with_target(0.8)
        .strategy(SelectionStrategy::Exhaustive)
        .batch_fraction(0.2)
        .backend(backend);
    FeasibilityStudy::new(config).run(&task, &zoo)
}

fn assert_reports_identical(exhaustive: &StudyReport, other: &StudyReport, backend: &str) {
    assert_eq!(
        exhaustive.best_transformation, other.best_transformation,
        "{backend}: winning arm must match"
    );
    assert_eq!(exhaustive.decision, other.decision, "{backend}: decision");
    assert_eq!(
        exhaustive.ber_estimate.to_bits(),
        other.ber_estimate.to_bits(),
        "{backend}: aggregated BER must match bit for bit"
    );
    assert_eq!(exhaustive.per_transformation.len(), other.per_transformation.len());
    for (a, b) in exhaustive.per_transformation.iter().zip(&other.per_transformation) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.one_nn_error.to_bits(), b.one_nn_error.to_bits(), "{backend} {}: 1NN error", a.name);
        assert_eq!(a.ber_estimate.to_bits(), b.ber_estimate.to_bits(), "{backend} {}: BER estimate", a.name);
        assert_eq!(a.curve, b.curve, "{backend} {}: convergence curve", a.name);
        assert_eq!(a.consumed_samples, b.consumed_samples);
    }
}

#[test]
fn feasibility_study_is_identical_across_backends() {
    let exhaustive = run(EvalBackend::Exhaustive);
    let clustered = run(CLUSTERED);
    let quantized = run(QUANTIZED);

    assert_reports_identical(&exhaustive, &clustered, "clustered");
    assert_reports_identical(&exhaustive, &quantized, "quantized");
}

#[test]
fn all_five_estimators_and_neighbor_tables_are_identical_across_backends() {
    let task = load_clean("cifar10", SizeScale::Tiny, 43);
    let zoo = zoo_for_task(&task, 7);
    // Embed train/test through the first transformation of the zoo — the
    // estimators consume the embedded views exactly like `exp_estimators`.
    let train_x = zoo[0].transform(task.train.features_view());
    let test_x = zoo[0].transform(task.test.features_view());
    let train = LabeledView::new(&train_x, &task.train.labels).with_classes(task.num_classes);
    let test = LabeledView::new(&test_x, &task.test.labels).with_classes(task.num_classes);

    let estimators = default_estimators();
    assert_eq!(estimators.len(), 5, "the comparison covers all five estimator families");

    let k_max = shared_table_k(&estimators);
    let table_exhaustive =
        shared_neighbor_table_with_backend(train.features(), test.features(), k_max, EvalBackend::Exhaustive);
    for (backend, name) in [(CLUSTERED, "clustered"), (QUANTIZED, "quantized")] {
        let table_other =
            shared_neighbor_table_with_backend(train.features(), test.features(), k_max, backend);
        assert_eq!(table_exhaustive, table_other, "{name}: NeighborTable rows must be identical");
        for q in 0..table_exhaustive.num_queries() {
            assert_eq!(table_exhaustive.neighbors(q), table_other.neighbors(q), "{name}: query {q}");
        }
    }

    let ex = estimate_all_with_backend(&estimators, &train, &test, task.num_classes, EvalBackend::Exhaustive);
    for (backend, name) in [(CLUSTERED, "clustered"), (QUANTIZED, "quantized")] {
        let other = estimate_all_with_backend(&estimators, &train, &test, task.num_classes, backend);
        for ((est, &a), &b) in estimators.iter().zip(&ex).zip(&other) {
            assert_eq!(a.to_bits(), b.to_bits(), "{}: exhaustive {a} vs {name} {b}", est.name());
        }
    }
}
