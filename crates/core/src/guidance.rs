//! Additional guidance accompanying the binary signal (Section IV-C).
//!
//! Snoopy never claims its REALISTIC/UNREALISTIC output is infallible;
//! instead it hands the user (a) the gap between the projected and target
//! accuracy, (b) the convergence curves of every consulted estimator, and
//! (c) a log-linear extrapolation (Eq. 10) of how many *additional* samples
//! the best transformation would need to reach the target — together with a
//! reliability flag, because the log-linear form eventually makes any target
//! look reachable (Figures 7 and 8).

use crate::study::TransformationResult;
use snoopy_estimators::cover_hart_lower_bound;
use snoopy_estimators::LogLinearFit;

/// One transformation's convergence curve, expressed as BER estimates rather
/// than raw 1NN errors so that it can be compared directly with the target
/// error line in a plot.
#[derive(Debug, Clone)]
pub struct ConvergenceCurve {
    /// Transformation name.
    pub name: String,
    /// Points `(training samples consumed, BER estimate)`.
    pub points: Vec<(usize, f64)>,
}

/// Additional guidance attached to a [`crate::StudyReport`].
#[derive(Debug, Clone)]
pub struct AdditionalGuidance {
    /// Gap between the projected error and the target error
    /// (`target_error − R̂`; positive means slack, negative means shortfall).
    pub error_margin: f64,
    /// Convergence curves of all consulted transformations.
    pub convergence_curves: Vec<ConvergenceCurve>,
    /// Log-linear fit of the best transformation's raw 1NN error curve.
    pub best_curve_fit: Option<ExtrapolationSummary>,
}

/// Summary of the Eq. 10 extrapolation for the minimal transformation.
#[derive(Debug, Clone)]
pub struct ExtrapolationSummary {
    /// Fitted decay exponent α.
    pub alpha: f64,
    /// Goodness of fit in log-log space.
    pub r_squared: f64,
    /// Additional training samples estimated to reach the target accuracy
    /// (`None` when the fit says the target is unreachable by adding data).
    pub additional_samples_needed: Option<usize>,
    /// Whether the extrapolated sample count should be trusted (within a
    /// small multiple of the observed range and a good fit).
    pub trustworthy: bool,
}

impl AdditionalGuidance {
    /// Builds the guidance from per-transformation results.
    pub fn from_results(
        results: &[TransformationResult],
        best_index: usize,
        target_error: f64,
        num_classes: usize,
        train_len: usize,
    ) -> Self {
        let convergence_curves = results
            .iter()
            .map(|r| ConvergenceCurve {
                name: r.name.clone(),
                points: r
                    .curve
                    .iter()
                    .map(|&(n, err)| (n, cover_hart_lower_bound(err, num_classes)))
                    .collect(),
            })
            .collect();

        let best = &results[best_index];
        let best_curve_fit = if best.curve.len() >= 2 {
            let fit = LogLinearFit::fit(&best.curve);
            // The target on the raw 1NN-error scale: invert the Cover–Hart
            // correction conservatively by asking the raw error itself to
            // reach the target error (the raw error upper-bounds the
            // estimate, so this is the pessimistic reading the paper uses in
            // its Fig. 7 discussion).
            let additional = fit.additional_samples_to_reach(target_error);
            let trustworthy = additional.map(|extra| fit.reliable(train_len + extra, 10.0)).unwrap_or(false);
            Some(ExtrapolationSummary {
                alpha: fit.alpha,
                r_squared: fit.r_squared,
                additional_samples_needed: additional,
                trustworthy,
            })
        } else {
            None
        };

        let min_estimate = results
            .iter()
            .filter(|r| r.consumed_samples > 0)
            .map(|r| r.ber_estimate)
            .fold(f64::INFINITY, f64::min);
        Self { error_margin: target_error - min_estimate, convergence_curves, best_curve_fit }
    }

    /// Renders the guidance as a small human-readable report (used by the
    /// examples and the experiment harness).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("error margin vs target: {:+.4}\n", self.error_margin));
        if let Some(fit) = &self.best_curve_fit {
            out.push_str(&format!("log-linear fit: alpha = {:.3}, R^2 = {:.3}\n", fit.alpha, fit.r_squared));
            match fit.additional_samples_needed {
                Some(0) => out.push_str("target already reached at the observed sample size\n"),
                Some(extra) => out.push_str(&format!(
                    "estimated additional samples to reach target: {extra} ({})\n",
                    if fit.trustworthy { "trustworthy" } else { "extrapolation beyond trusted range" }
                )),
                None => out.push_str("target unreachable by adding samples under the fitted curve\n"),
            }
        }
        out.push_str(&format!("convergence curves recorded: {}\n", self.convergence_curves.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_result(name: &str, curve: Vec<(usize, f64)>, consumed: usize) -> TransformationResult {
        let last = curve.last().map(|&(_, e)| e).unwrap_or(1.0);
        TransformationResult {
            name: name.to_string(),
            one_nn_error: last,
            ber_estimate: cover_hart_lower_bound(last, 10),
            curve,
            consumed_samples: consumed,
            simulated_cost: 1.0,
            eval_pairs: 0,
        }
    }

    #[test]
    fn guidance_converts_curves_to_ber_estimates() {
        let results = vec![
            fake_result("good", vec![(100, 0.5), (200, 0.3), (400, 0.2)], 400),
            fake_result("bad", vec![(100, 0.8)], 100),
        ];
        let guidance = AdditionalGuidance::from_results(&results, 0, 0.25, 10, 400);
        assert_eq!(guidance.convergence_curves.len(), 2);
        let good_curve = &guidance.convergence_curves[0];
        // BER estimates are below the raw errors.
        for (raw, est) in results[0].curve.iter().zip(&good_curve.points) {
            assert!(est.1 <= raw.1);
            assert_eq!(est.0, raw.0);
        }
        assert!(guidance.best_curve_fit.is_some());
        let fit = guidance.best_curve_fit.as_ref().unwrap();
        assert!(fit.alpha > 0.0);
        assert!(guidance.error_margin.abs() < 1.0);
    }

    #[test]
    fn single_point_curves_do_not_produce_a_fit() {
        let results = vec![fake_result("only", vec![(50, 0.4)], 50)];
        let guidance = AdditionalGuidance::from_results(&results, 0, 0.2, 5, 50);
        assert!(guidance.best_curve_fit.is_none());
        assert!(!guidance.render().is_empty());
    }

    #[test]
    fn render_mentions_sample_estimate() {
        let results = vec![fake_result("good", vec![(100, 0.5), (200, 0.35), (400, 0.25), (800, 0.18)], 800)];
        let guidance = AdditionalGuidance::from_results(&results, 0, 0.1, 10, 800);
        let text = guidance.render();
        assert!(text.contains("log-linear fit"));
        assert!(
            text.contains("additional samples")
                || text.contains("unreachable")
                || text.contains("already reached")
        );
    }
}
