//! The feasibility study itself: run the zoo, aggregate by the minimum,
//! decide REALISTIC/UNREALISTIC, and attach guidance.

use crate::arm::TransformationArm;
use crate::config::SnoopyConfig;
use crate::guidance::AdditionalGuidance;
use snoopy_bandit::run_strategy;
use snoopy_data::TaskDataset;
use snoopy_embeddings::Transformation;
use snoopy_estimators::cover_hart_lower_bound;
use snoopy_knn::{EvalEngine, IncrementalTopK};
use std::time::Instant;

/// Snoopy's binary output signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeasibilityDecision {
    /// The target accuracy appears achievable.
    Realistic,
    /// The target accuracy appears unachievable with the current data.
    Unrealistic,
}

impl FeasibilityDecision {
    /// Human-readable form.
    pub fn name(&self) -> &'static str {
        match self {
            FeasibilityDecision::Realistic => "REALISTIC",
            FeasibilityDecision::Unrealistic => "UNREALISTIC",
        }
    }
}

/// Per-transformation outcome.
#[derive(Debug, Clone)]
pub struct TransformationResult {
    /// Transformation name.
    pub name: String,
    /// Raw 1NN test error after the last consumed batch.
    pub one_nn_error: f64,
    /// Cover–Hart BER lower-bound estimate (Eq. 2) at that point.
    pub ber_estimate: f64,
    /// Convergence curve `(consumed training samples, 1NN error)`.
    pub curve: Vec<(usize, f64)>,
    /// Raw training samples consumed by the scheduler for this arm.
    pub consumed_samples: usize,
    /// Simulated inference cost charged to this transformation (seconds).
    pub simulated_cost: f64,
    /// True incremental evaluation work performed by this arm's appends, in
    /// query–row distance pairs (post-pruning) — `O(Σ batch × queries)`, not
    /// a rebuild per round.
    pub eval_pairs: u64,
}

/// The full report returned by a feasibility study.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// The task name.
    pub task: String,
    /// The target accuracy the user asked about.
    pub target_accuracy: f64,
    /// Snoopy's binary signal.
    pub decision: FeasibilityDecision,
    /// The aggregated BER estimate `R̂ = min_f R̂_{f(X),n}`.
    pub ber_estimate: f64,
    /// Best-possible-accuracy estimate `1 − R̂` implicitly returned to the
    /// user.
    pub projected_accuracy: f64,
    /// Gap between the projected accuracy and the target (positive means the
    /// target is below what Snoopy believes achievable).
    pub gap: f64,
    /// Name of the transformation achieving the minimum.
    pub best_transformation: String,
    /// Per-transformation details (ordered as the zoo was given).
    pub per_transformation: Vec<TransformationResult>,
    /// Total simulated cost in seconds (inference dominates, as in Section V).
    pub simulated_cost_seconds: f64,
    /// Wall-clock seconds actually spent by this (CPU) reproduction.
    pub wall_clock_seconds: f64,
    /// Additional guidance of Section IV-C.
    pub guidance: AdditionalGuidance,
}

impl StudyReport {
    /// Convenience accessor mirroring the paper's decision rule.
    pub fn is_realistic(&self) -> bool {
        self.decision == FeasibilityDecision::Realistic
    }
}

/// Reads one arm's outcome into a [`TransformationResult`]. Shared between
/// the one-shot study and the multi-tenant service so both report the exact
/// same numbers from the exact same state.
pub(crate) fn result_of(arm: &TransformationArm<'_>, name: &str, num_classes: usize) -> TransformationResult {
    let curve = arm.curve();
    let one_nn_error = curve.last().map(|&(_, e)| e).unwrap_or(1.0);
    TransformationResult {
        name: name.to_string(),
        one_nn_error,
        ber_estimate: cover_hart_lower_bound(one_nn_error, num_classes),
        curve,
        consumed_samples: arm.consumed_samples(),
        simulated_cost: arm.simulated_cost(),
        eval_pairs: snoopy_bandit::Arm::eval_pairs(arm),
    }
}

/// Aggregates by taking the minimum over all transformations that actually
/// consumed data (Section IV): `(best index, aggregated BER estimate)`.
pub(crate) fn best_of(results: &[TransformationResult]) -> (usize, f64) {
    results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.consumed_samples > 0)
        .map(|(i, r)| (i, r.ber_estimate))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or((0, 1.0))
}

/// Builds the final report from aggregated per-transformation results —
/// decision rule, projected accuracy, gap, and the Section IV-C guidance.
pub(crate) fn assemble_report(
    config: &SnoopyConfig,
    task: &TaskDataset,
    per_transformation: Vec<TransformationResult>,
    best_idx: usize,
    ber_estimate: f64,
    simulated_cost_seconds: f64,
    wall_clock_seconds: f64,
) -> StudyReport {
    let target_error = config.target_error();
    let decision = if ber_estimate <= target_error {
        FeasibilityDecision::Realistic
    } else {
        FeasibilityDecision::Unrealistic
    };
    let projected_accuracy = 1.0 - ber_estimate;
    let guidance = AdditionalGuidance::from_results(
        &per_transformation,
        best_idx,
        target_error,
        task.num_classes,
        task.train.len(),
    );
    StudyReport {
        task: task.name.clone(),
        target_accuracy: config.target_accuracy,
        decision,
        ber_estimate,
        projected_accuracy,
        gap: projected_accuracy - config.target_accuracy,
        best_transformation: per_transformation[best_idx].name.clone(),
        per_transformation,
        simulated_cost_seconds,
        wall_clock_seconds,
        guidance,
    }
}

/// The feasibility-study engine.
pub struct FeasibilityStudy {
    config: SnoopyConfig,
}

impl FeasibilityStudy {
    /// Creates a study with the given configuration.
    pub fn new(config: SnoopyConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnoopyConfig {
        &self.config
    }

    /// Runs the feasibility study for `task` over the given transformation
    /// zoo and returns the full report.
    pub fn run(&self, task: &TaskDataset, zoo: &[Box<dyn Transformation>]) -> StudyReport {
        self.evaluate(task, zoo, false).0
    }

    /// Runs the study and additionally returns the *winning arm's own
    /// incremental state*, ready for real-time re-evaluation after label
    /// cleaning. The winner is *finished* (only the batches the scheduler
    /// had not yet consumed are embedded and appended — nothing is
    /// re-embedded, nothing is rebuilt) and its [`IncrementalTopK`] is moved
    /// out of the arm: the bandit loop, the cleaning loop, and any estimator
    /// reading the state's neighbour table all operate on one and the same
    /// successor state. The extra inference is charged to the report like
    /// every other pull.
    pub fn run_with_cache(
        &self,
        task: &TaskDataset,
        zoo: &[Box<dyn Transformation>],
    ) -> (StudyReport, IncrementalTopK) {
        let (report, cache) = self.evaluate(task, zoo, true);
        (report, cache.expect("evaluate(finish_winner = true) always builds the cache"))
    }

    fn evaluate(
        &self,
        task: &TaskDataset,
        zoo: &[Box<dyn Transformation>],
        finish_winner: bool,
    ) -> (StudyReport, Option<IncrementalTopK>) {
        assert!(!zoo.is_empty(), "the transformation zoo must not be empty");
        assert!(!task.train.is_empty() && !task.test.is_empty(), "task must have train and test samples");
        let start = Instant::now();
        let batch_size = self.config.batch_size(task.train.len());
        let batches = self.config.batches_for(task.train.len());
        let budget = self.config.effective_budget(zoo.len(), batches);

        // Build one arm per transformation and let the scheduler spend the
        // budget; independent arms are evaluated on worker threads by the
        // strategy executors in `snoopy-bandit`, which resize each arm's
        // inner 1NN engine per round (`Arm::on_concurrency`) so arm-level
        // and query-level parallelism compose instead of oversubscribing.
        // The per-batch evaluation backend (exhaustive vs exact-pruned
        // clustered) is resolved once — forced by the config or auto-selected
        // from the streamed batch size — and handed to every arm.
        let backend = self.config.backend_for(batch_size, task.test.len());
        let mut arms: Vec<TransformationArm<'_>> = zoo
            .iter()
            .map(|t| {
                TransformationArm::new(t.as_ref(), task, self.config.metric, batch_size)
                    .with_backend(backend)
                    .with_table_k(self.config.table_k)
            })
            .collect();
        let _outcome = run_strategy(self.config.strategy, &mut arms, budget);

        let mut per_transformation: Vec<TransformationResult> =
            arms.iter().enumerate().map(|(i, arm)| result_of(arm, zoo[i].name(), task.num_classes)).collect();
        let (mut best_idx, mut ber_estimate) = best_of(&per_transformation);

        let cache = if finish_winner {
            // Append the winner's remaining batches and re-aggregate (its
            // error moves as it converges). If finishing dethrones it, finish
            // the new winner too; this reaches a fixpoint because finished
            // arms stop moving.
            loop {
                let finished = best_idx;
                // The finishing arm runs alone now: give it the full core
                // budget instead of its zoo-share.
                arms[finished].set_engine(EvalEngine::parallel());
                arms[finished].finish();
                per_transformation[finished] =
                    result_of(&arms[finished], zoo[finished].name(), task.num_classes);
                (best_idx, ber_estimate) = best_of(&per_transformation);
                if best_idx == finished {
                    break;
                }
            }
            // Move the winner's state out of its arm: the cleaning loop keeps
            // relabelling the very state the bandit grew.
            Some(arms[best_idx].take_state().expect("winner was finished above"))
        } else {
            None
        };
        let simulated_cost: f64 = per_transformation.iter().map(|r| r.simulated_cost).sum();
        drop(arms);

        let report = assemble_report(
            &self.config,
            task,
            per_transformation,
            best_idx,
            ber_estimate,
            simulated_cost,
            start.elapsed().as_secs_f64(),
        );
        (report, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_bandit::SelectionStrategy;
    use snoopy_data::noise::NoiseModel;
    use snoopy_data::registry::{load_clean, load_with_noise, SizeScale};
    use snoopy_embeddings::zoo_for_task;

    fn run_study(task: &TaskDataset, target: f64, strategy: SelectionStrategy) -> StudyReport {
        let zoo = zoo_for_task(task, 7);
        FeasibilityStudy::new(SnoopyConfig::with_target(target).strategy(strategy).batch_fraction(0.25))
            .run(task, &zoo)
    }

    #[test]
    fn clean_easy_task_with_modest_target_is_realistic() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let report = run_study(&task, 0.7, SelectionStrategy::Exhaustive);
        assert!(report.is_realistic(), "ber estimate {}", report.ber_estimate);
        assert!(report.gap > 0.0);
        assert_eq!(report.decision.name(), "REALISTIC");
        assert!(report.simulated_cost_seconds > 0.0);
        assert!(!report.best_transformation.is_empty());
        assert_eq!(report.per_transformation.len(), zoo_for_task(&task, 7).len());
    }

    #[test]
    fn heavy_noise_with_ambitious_target_is_unrealistic() {
        // 80% uniform noise on a binary task raises the BER to ~0.4; a 95%
        // accuracy target is then hopeless.
        let task = load_with_noise("sst2", SizeScale::Tiny, &NoiseModel::Uniform(0.8), 3);
        let report = run_study(&task, 0.95, SelectionStrategy::Exhaustive);
        assert!(!report.is_realistic(), "ber estimate {}", report.ber_estimate);
        assert!(report.ber_estimate > 0.05);
        assert!(report.gap < 0.0);
    }

    #[test]
    fn estimate_is_a_plausible_lower_bound_of_the_true_ber_plus_noise() {
        let task = load_with_noise("cifar10", SizeScale::Tiny, &NoiseModel::Uniform(0.4), 5);
        let report = run_study(&task, 0.9, SelectionStrategy::Exhaustive);
        // Lemma 2.1: true noisy BER = ber + 0.4 * (0.9 - ber) ≈ 0.36 for a
        // near-zero clean BER. The estimate must not wildly exceed it and must
        // clearly detect the noise.
        assert!(report.ber_estimate > 0.1, "estimate {}", report.ber_estimate);
        assert!(report.ber_estimate < 0.6, "estimate {}", report.ber_estimate);
    }

    #[test]
    fn successive_halving_consumes_less_inference_than_exhaustive() {
        let task = load_clean("cifar10", SizeScale::Tiny, 9);
        let exhaustive = run_study(&task, 0.9, SelectionStrategy::Exhaustive);
        let sh = run_study(&task, 0.9, SelectionStrategy::SuccessiveHalvingTangent);
        assert!(
            sh.simulated_cost_seconds < exhaustive.simulated_cost_seconds,
            "SH {} vs exhaustive {}",
            sh.simulated_cost_seconds,
            exhaustive.simulated_cost_seconds
        );
        // The aggregate estimate should not differ wildly (SH keeps the best arm).
        assert!((sh.ber_estimate - exhaustive.ber_estimate).abs() < 0.15);
    }

    #[test]
    #[should_panic(expected = "zoo must not be empty")]
    fn empty_zoo_panics() {
        let task = load_clean("mnist", SizeScale::Tiny, 11);
        let zoo: Vec<Box<dyn Transformation>> = vec![];
        let _ = FeasibilityStudy::new(SnoopyConfig::default()).run(&task, &zoo);
    }
}
