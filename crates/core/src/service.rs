//! Multi-tenant feasibility serving on the shared worker pool.
//!
//! A feasibility study as a *server workload*: many users ("tenants") ask
//! "is `α_target` realistic on my task?" concurrently, and each answer is a
//! full bandit run over a transformation zoo. [`FeasibilityService`] steps
//! one [`StrategyDriver`] per tenant through fair round-robin rounds — every
//! live tenant advances exactly one scheduling phase per global round, and
//! all tenants' phases of a round execute as tasks on the persistent
//! [`snoopy_pool`] pool (the engine's query-chunk tasks nest inside them;
//! the pool's caller-helps scopes make that safe at every worker count).
//!
//! Two properties make this a serving layer rather than a batch loop:
//!
//! * **Interleaving changes nothing.** Each tenant's driver decisions
//!   depend only on its own arms, so the winners, BER estimates, and
//!   convergence curves are bit-identical to running the same studies
//!   sequentially through [`FeasibilityStudy::run`].
//! * **Repeated tenants are warm.** The service keeps one
//!   [`EmbeddingCache`] per task; a repeated request slices the cached
//!   embedded train rows per pull and clones the cached test embedding
//!   instead of re-running inference (transformations are deterministic and
//!   row-wise, so this is bit-identical to the cold path). Inference cost
//!   is charged once, at first fill — a warm request's
//!   [`StudyReport::simulated_cost_seconds`] is zero, and its wall-clock is
//!   dominated by arm pulls instead of embedding.
//!
//! Progress streams per round through a callback ([`StudyProgress`]): the
//! currently leading transformation, its BER estimate, and the evaluation
//! work spent so far — the paper's real-time feedback loop, per tenant.
//!
//! [`FeasibilityStudy::run`]: crate::study::FeasibilityStudy::run
//! [`StudyReport::simulated_cost_seconds`]: crate::study::StudyReport::simulated_cost_seconds

use crate::arm::TransformationArm;
use crate::config::SnoopyConfig;
use crate::study::{assemble_report, best_of, result_of, StudyReport, TransformationResult};
use snoopy_bandit::{execute_round, Arm, RoundPlan, StrategyDriver};
use snoopy_data::TaskDataset;
use snoopy_embeddings::{EmbeddingCache, Transformation};
use snoopy_estimators::cover_hart_lower_bound;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One tenant's study request.
pub struct StudyRequest<'a> {
    /// The tenant's task (also the cache key: requests with the same task
    /// name share cached embeddings across calls).
    pub task: &'a TaskDataset,
    /// The transformation zoo to evaluate.
    pub zoo: &'a [Box<dyn Transformation>],
    /// Study configuration (strategy, budget, metric, backend, target).
    pub config: SnoopyConfig,
}

/// A per-round progress event for one tenant.
#[derive(Debug, Clone)]
pub struct StudyProgress {
    /// Index of the tenant in the request slice.
    pub tenant: usize,
    /// Global round number (1-based; a tenant only appears in rounds where
    /// its driver still had a phase to run).
    pub round: usize,
    /// Name of the transformation currently achieving the minimum estimate.
    pub leading_transformation: String,
    /// The tenant's current aggregated BER estimate.
    pub ber_estimate: f64,
    /// Total incremental evaluation work spent so far by this tenant's arms
    /// (query–row pairs, post-pruning).
    pub eval_pairs: u64,
}

/// One tenant's in-flight state while its study is being served.
struct Tenant<'a> {
    task: &'a TaskDataset,
    zoo: &'a [Box<dyn Transformation>],
    config: &'a SnoopyConfig,
    arms: Vec<TransformationArm<'a>>,
    curves: Vec<Vec<f64>>,
    driver: StrategyDriver,
    /// The phase selected this round, if any (taken by the executor).
    plan: Option<RoundPlan>,
    /// Whether this tenant executed a phase this round.
    ran: bool,
    /// Tangent eliminations reported by this round's [`execute_round`].
    eliminated: Vec<bool>,
    done: bool,
    cache: Arc<EmbeddingCache>,
    /// The cache's simulated cost before this request touched it — the
    /// delta is what this request actually paid for inference.
    cost_before: f64,
    started: Instant,
}

/// A persistent multi-study server: embedding caches live across calls, so
/// a tenant's second request is served allocation- and inference-free from
/// its cached embeddings.
#[derive(Default)]
pub struct FeasibilityService {
    caches: HashMap<String, Arc<EmbeddingCache>>,
}

impl FeasibilityService {
    /// Creates a service with no warm tenants.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether embeddings for `task_name` are already cached (i.e. a
    /// request for that task will be served warm).
    pub fn is_warm(&self, task_name: &str) -> bool {
        self.caches.get(task_name).is_some_and(|c| !c.is_empty())
    }

    /// Number of tasks with live embedding caches.
    pub fn cached_tasks(&self) -> usize {
        self.caches.len()
    }

    /// Serves a batch of concurrent study requests and returns one report
    /// per request, in request order.
    pub fn serve(&mut self, requests: &[StudyRequest<'_>]) -> Vec<StudyReport> {
        self.serve_with_progress(requests, |_| {})
    }

    /// Like [`FeasibilityService::serve`], but streams a [`StudyProgress`]
    /// event per tenant per round.
    pub fn serve_with_progress(
        &mut self,
        requests: &[StudyRequest<'_>],
        mut on_progress: impl FnMut(StudyProgress),
    ) -> Vec<StudyReport> {
        let mut tenants: Vec<Tenant<'_>> = requests.iter().map(|r| self.admit(r)).collect();

        let mut round = 0usize;
        loop {
            // Fair interleaving: every live tenant gets exactly one phase
            // per global round, in request order.
            let mut any = false;
            for tenant in tenants.iter_mut() {
                if tenant.done {
                    continue;
                }
                match tenant.driver.next_plan(&tenant.arms) {
                    Some(plan) => {
                        tenant.plan = Some(plan);
                        any = true;
                    }
                    None => tenant.done = true,
                }
            }
            if !any {
                break;
            }
            round += 1;

            // Execute every selected phase concurrently: one pool task per
            // tenant, each arm of a phase a nested pool task inside it.
            snoopy_pool::scope(|scope| {
                for tenant in tenants.iter_mut() {
                    if let Some(plan) = tenant.plan.take() {
                        tenant.ran = true;
                        scope.spawn(move || {
                            tenant.eliminated = execute_round(&mut tenant.arms, &mut tenant.curves, &plan);
                        });
                    }
                }
            });

            // Fold the outcomes back in and stream progress.
            for (i, tenant) in tenants.iter_mut().enumerate() {
                if !tenant.ran {
                    continue;
                }
                tenant.ran = false;
                let eliminated = std::mem::take(&mut tenant.eliminated);
                tenant.driver.observe(&tenant.arms, &eliminated);
                let (lead, ber) = tenant
                    .arms
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.consumed_samples() > 0)
                    .map(|(j, a)| (j, cover_hart_lower_bound(a.current_loss(), tenant.task.num_classes)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .unwrap_or((0, 1.0));
                on_progress(StudyProgress {
                    tenant: i,
                    round,
                    leading_transformation: tenant.zoo[lead].name().to_string(),
                    ber_estimate: ber,
                    eval_pairs: tenant.arms.iter().map(Arm::eval_pairs).sum(),
                });
            }
        }

        tenants.into_iter().map(Tenant::into_report).collect()
    }

    /// Builds one tenant's serving state: warm embeddings from its cache
    /// (filling it on first contact), arms over them, and a fresh driver.
    fn admit<'a>(&mut self, request: &'a StudyRequest<'a>) -> Tenant<'a> {
        let task = request.task;
        let zoo = request.zoo;
        let config = &request.config;
        config.validate();
        assert!(!zoo.is_empty(), "the transformation zoo must not be empty");
        assert!(!task.train.is_empty() && !task.test.is_empty(), "task must have train and test samples");

        let cache = Arc::clone(self.caches.entry(task.name.clone()).or_default());
        let cost_before = cache.simulated_cost();
        let batch_size = config.batch_size(task.train.len());
        let batches = config.batches_for(task.train.len());
        let budget = config.effective_budget(zoo.len(), batches);
        let backend = config.backend_for(batch_size, task.test.len());
        let arms: Vec<TransformationArm<'a>> = zoo
            .iter()
            .map(|t| {
                TransformationArm::new(t.as_ref(), task, config.metric, batch_size)
                    .with_backend(backend)
                    .with_table_k(config.table_k)
                    .with_embeddings(cache.get_or_compute(t.as_ref(), task))
            })
            .collect();
        let curves = vec![Vec::new(); arms.len()];
        let driver = StrategyDriver::new(config.strategy, arms.len(), budget);
        Tenant {
            task,
            zoo,
            config,
            arms,
            curves,
            driver,
            plan: None,
            ran: false,
            eliminated: Vec::new(),
            done: false,
            cache,
            cost_before,
            started: Instant::now(),
        }
    }
}

impl Tenant<'_> {
    /// Final report assembly — the exact aggregation the one-shot study
    /// uses, with inference cost read from the cache delta (warm requests
    /// paid nothing).
    fn into_report(self) -> StudyReport {
        let per_transformation: Vec<TransformationResult> = self
            .arms
            .iter()
            .enumerate()
            .map(|(j, arm)| result_of(arm, self.zoo[j].name(), self.task.num_classes))
            .collect();
        let (best_idx, ber_estimate) = best_of(&per_transformation);
        let arm_cost: f64 = per_transformation.iter().map(|r| r.simulated_cost).sum();
        let inference_cost = self.cache.simulated_cost() - self.cost_before;
        assemble_report(
            self.config,
            self.task,
            per_transformation,
            best_idx,
            ber_estimate,
            arm_cost + inference_cost,
            self.started.elapsed().as_secs_f64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::FeasibilityStudy;
    use snoopy_bandit::SelectionStrategy;
    use snoopy_data::registry::{load_clean, SizeScale};
    use snoopy_embeddings::zoo_for_task;

    fn config(strategy: SelectionStrategy) -> SnoopyConfig {
        SnoopyConfig::with_target(0.9).strategy(strategy).batch_fraction(0.25)
    }

    #[test]
    fn interleaved_studies_match_sequential_runs_exactly() {
        let task_a = load_clean("mnist", SizeScale::Tiny, 1);
        let task_b = load_clean("sst2", SizeScale::Tiny, 3);
        let zoo_a = zoo_for_task(&task_a, 7);
        let zoo_b = zoo_for_task(&task_b, 7);
        for strategy in [SelectionStrategy::SuccessiveHalvingTangent, SelectionStrategy::Uniform] {
            let mut service = FeasibilityService::new();
            let reports = service.serve(&[
                StudyRequest { task: &task_a, zoo: &zoo_a, config: config(strategy) },
                StudyRequest { task: &task_b, zoo: &zoo_b, config: config(strategy) },
            ]);
            let solo_a = FeasibilityStudy::new(config(strategy)).run(&task_a, &zoo_a);
            let solo_b = FeasibilityStudy::new(config(strategy)).run(&task_b, &zoo_b);
            for (served, solo) in reports.iter().zip([&solo_a, &solo_b]) {
                assert_eq!(served.best_transformation, solo.best_transformation);
                assert_eq!(served.ber_estimate, solo.ber_estimate, "BER must be bit-identical");
                assert_eq!(served.decision, solo.decision);
                assert_eq!(served.per_transformation.len(), solo.per_transformation.len());
                for (s, r) in served.per_transformation.iter().zip(&solo.per_transformation) {
                    assert_eq!(s.curve, r.curve, "curves must be bit-identical ({})", s.name);
                    assert_eq!(s.consumed_samples, r.consumed_samples);
                    assert_eq!(s.eval_pairs, r.eval_pairs);
                }
            }
        }
    }

    #[test]
    fn repeated_requests_are_served_warm_and_free() {
        let task = load_clean("cifar10", SizeScale::Tiny, 5);
        let zoo = zoo_for_task(&task, 9);
        let mut service = FeasibilityService::new();
        let request = || StudyRequest {
            task: &task,
            zoo: &zoo,
            config: config(SelectionStrategy::SuccessiveHalvingTangent),
        };
        assert!(!service.is_warm(&task.name));
        let cold = service.serve(&[request()]).remove(0);
        assert!(service.is_warm(&task.name));
        assert!(cold.simulated_cost_seconds > 0.0, "first request pays the zoo inference");
        let warm = service.serve(&[request()]).remove(0);
        assert_eq!(warm.simulated_cost_seconds, 0.0, "warm request re-runs no inference");
        assert_eq!(warm.best_transformation, cold.best_transformation);
        assert_eq!(warm.ber_estimate, cold.ber_estimate);
        for (w, c) in warm.per_transformation.iter().zip(&cold.per_transformation) {
            assert_eq!(w.curve, c.curve, "warm pulls replay the exact same errors ({})", w.name);
        }
        assert_eq!(service.cached_tasks(), 1);
    }

    #[test]
    fn warm_requests_match_cold_studies_bit_for_bit() {
        // The cold study embeds each raw batch separately; the warm service
        // slices one big cached embedding. Row-wise determinism makes those
        // identical, which this pin guards.
        let task = load_clean("mnist", SizeScale::Tiny, 11);
        let zoo = zoo_for_task(&task, 2);
        let mut service = FeasibilityService::new();
        let cfg = config(SelectionStrategy::Exhaustive);
        service.serve(&[StudyRequest { task: &task, zoo: &zoo, config: cfg }]);
        let warm = service.serve(&[StudyRequest { task: &task, zoo: &zoo, config: cfg }]).remove(0);
        let solo = FeasibilityStudy::new(cfg).run(&task, &zoo);
        assert_eq!(warm.ber_estimate, solo.ber_estimate);
        for (w, s) in warm.per_transformation.iter().zip(&solo.per_transformation) {
            assert_eq!(w.curve, s.curve, "{}", w.name);
        }
    }

    #[test]
    fn progress_streams_rounds_and_ends_at_the_reported_winner() {
        let task = load_clean("mnist", SizeScale::Tiny, 7);
        let zoo = zoo_for_task(&task, 4);
        let mut service = FeasibilityService::new();
        let mut events: Vec<StudyProgress> = Vec::new();
        let reports = service.serve_with_progress(
            &[StudyRequest {
                task: &task,
                zoo: &zoo,
                config: config(SelectionStrategy::SuccessiveHalvingTangent),
            }],
            |e| events.push(e),
        );
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.tenant == 0));
        assert!(events.windows(2).all(|w| w[0].round < w[1].round), "rounds strictly increase");
        assert!(events.windows(2).all(|w| w[0].eval_pairs <= w[1].eval_pairs), "work only grows");
        let last = events.last().unwrap();
        assert_eq!(last.leading_transformation, reports[0].best_transformation);
        assert_eq!(last.ber_estimate, reports[0].ber_estimate);
    }
}
