//! Incremental re-execution of a feasibility study after label cleaning
//! (Section V, "Efficient Incremental Execution").
//!
//! In the iterative cleaning loop the user alternates between cleaning a
//! small portion of labels and re-consulting Snoopy. Features never change,
//! so the nearest-neighbour structure of every transformation stays valid;
//! only labels move. [`IncrementalStudy`] takes ownership of the *winning*
//! arm's [`IncrementalTopK`] after a full run — the very state the bandit
//! grew append by append — and afterwards answers feasibility queries in a
//! single `O(test)` pass — the paper reports 0.2 ms for 10 K test / 50 K
//! training samples, orders of magnitude faster than re-running inference.
//! The same state's [`IncrementalTopK::table`] snapshot feeds any
//! k-consuming estimator without recomputation.

use crate::config::SnoopyConfig;
use crate::study::{FeasibilityDecision, FeasibilityStudy, StudyReport};
use snoopy_data::TaskDataset;
use snoopy_embeddings::Transformation;
use snoopy_estimators::cover_hart_lower_bound;
use snoopy_knn::IncrementalTopK;

/// A feasibility study that can be re-run in real time after label cleaning.
pub struct IncrementalStudy {
    config: SnoopyConfig,
    num_classes: usize,
    best_transformation: String,
    cache: IncrementalTopK,
    /// The report of the initial full run.
    initial_report: StudyReport,
}

impl IncrementalStudy {
    /// Runs the full study once and takes ownership of the winning arm's
    /// incremental state.
    ///
    /// The state comes straight from the winning arm
    /// ([`FeasibilityStudy::run_with_cache`]): the scheduler may have stopped
    /// the arm early under aggressive budgets, in which case only the
    /// *remaining* batches are embedded and appended — nothing is embedded
    /// twice, nothing is rebuilt.
    pub fn bootstrap(config: SnoopyConfig, task: &TaskDataset, zoo: &[Box<dyn Transformation>]) -> Self {
        let study = FeasibilityStudy::new(config);
        let (report, cache) = study.run_with_cache(task, zoo);
        Self {
            config,
            num_classes: task.num_classes,
            best_transformation: report.best_transformation.clone(),
            cache,
            initial_report: report,
        }
    }

    /// The report of the initial (full) run.
    pub fn initial_report(&self) -> &StudyReport {
        &self.initial_report
    }

    /// Name of the transformation the incremental state tracks.
    pub fn best_transformation(&self) -> &str {
        &self.best_transformation
    }

    /// The tracked incremental state itself — relabelled in place by
    /// [`IncrementalStudy::refresh`] / [`IncrementalStudy::apply_updates`];
    /// its [`IncrementalTopK::table`] snapshot is what k-consuming
    /// estimators read.
    pub fn state(&self) -> &IncrementalTopK {
        &self.cache
    }

    /// Re-evaluates the feasibility signal after the task's labels changed
    /// (e.g. a cleaning round was applied to `task`). Only labels are read;
    /// features are assumed unchanged, matching the paper's assumption that
    /// cleaning never moves a nearest neighbour.
    pub fn refresh(&mut self, task: &TaskDataset) -> IncrementalAnswer {
        let error = self.cache.set_labels(&task.train.labels, &task.test.labels);
        self.answer_from_error(error)
    }

    /// Applies explicit label updates (train and test index/label pairs)
    /// without needing the whole task.
    pub fn apply_updates(&mut self, train: &[(usize, u32)], test: &[(usize, u32)]) -> IncrementalAnswer {
        self.cache.relabel_train_batch(train);
        self.cache.relabel_test_batch(test);
        self.answer_from_error(self.cache.error())
    }

    fn answer_from_error(&self, one_nn_error: f64) -> IncrementalAnswer {
        let ber_estimate = cover_hart_lower_bound(one_nn_error, self.num_classes);
        let decision = if ber_estimate <= self.config.target_error() {
            FeasibilityDecision::Realistic
        } else {
            FeasibilityDecision::Unrealistic
        };
        IncrementalAnswer { one_nn_error, ber_estimate, projected_accuracy: 1.0 - ber_estimate, decision }
    }
}

/// The lightweight answer produced by incremental refreshes.
#[derive(Debug, Clone, Copy)]
pub struct IncrementalAnswer {
    /// Current 1NN error of the tracked transformation.
    pub one_nn_error: f64,
    /// Cover–Hart BER estimate.
    pub ber_estimate: f64,
    /// Projected best-possible accuracy.
    pub projected_accuracy: f64,
    /// Updated binary signal.
    pub decision: FeasibilityDecision,
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_bandit::SelectionStrategy;
    use snoopy_data::cleaning::clean_fraction;
    use snoopy_data::noise::NoiseModel;
    use snoopy_data::registry::{load_with_noise, SizeScale};
    use snoopy_embeddings::zoo_for_task;
    use snoopy_linalg::rng;

    fn config(target: f64) -> SnoopyConfig {
        SnoopyConfig::with_target(target).strategy(SelectionStrategy::Exhaustive).batch_fraction(0.25)
    }

    #[test]
    fn cleaning_labels_flips_the_decision_eventually() {
        // Heavy noise: unrealistic at first, realistic once cleaned.
        let mut task = load_with_noise("sst2", SizeScale::Tiny, &NoiseModel::Uniform(0.7), 1);
        let zoo = zoo_for_task(&task, 2);
        let mut study = IncrementalStudy::bootstrap(config(0.85), &task, &zoo);
        assert_eq!(study.initial_report().decision, FeasibilityDecision::Unrealistic);

        let mut r = rng::seeded(3);
        let mut flipped = false;
        for _ in 0..25 {
            clean_fraction(&mut task, 0.1, &mut r);
            let answer = study.refresh(&task);
            if answer.decision == FeasibilityDecision::Realistic {
                flipped = true;
                break;
            }
        }
        assert!(flipped, "cleaning all labels should eventually make the target realistic");
    }

    #[test]
    fn incremental_refresh_matches_a_fresh_full_study_on_the_best_embedding() {
        let mut task = load_with_noise("mnist", SizeScale::Tiny, &NoiseModel::Uniform(0.4), 5);
        let zoo = zoo_for_task(&task, 6);
        let mut study = IncrementalStudy::bootstrap(config(0.7), &task, &zoo);
        let mut r = rng::seeded(7);
        clean_fraction(&mut task, 0.5, &mut r);
        let incremental = study.refresh(&task);

        // Recompute from scratch on the same (tracked) transformation.
        let best = zoo.iter().find(|t| t.name() == study.best_transformation()).unwrap();
        let train_embedded = best.transform(task.train.features_view());
        let test_embedded = best.transform(task.test.features_view());
        let full = snoopy_knn::BruteForceIndex::new(
            &train_embedded,
            &task.train.labels,
            task.num_classes,
            snoopy_knn::Metric::SquaredEuclidean,
        )
        .one_nn_error(&test_embedded, &task.test.labels);
        assert!((incremental.one_nn_error - full).abs() < 1e-12);
    }

    #[test]
    fn explicit_updates_are_equivalent_to_refresh() {
        let mut task = load_with_noise("sst2", SizeScale::Tiny, &NoiseModel::Uniform(0.5), 9);
        let zoo = zoo_for_task(&task, 10);
        let mut by_refresh = IncrementalStudy::bootstrap(config(0.8), &task, &zoo);
        let mut by_updates = IncrementalStudy::bootstrap(config(0.8), &task, &zoo);

        // Clean the first 10 dirty training labels.
        let dirty: Vec<usize> = task.train.dirty_indices().into_iter().take(10).collect();
        let updates: Vec<(usize, u32)> = dirty.iter().map(|&i| (i, task.train.clean_labels[i])).collect();
        for &i in &dirty {
            task.train.clean_label(i);
        }
        let a = by_refresh.refresh(&task);
        let b = by_updates.apply_updates(&updates, &[]);
        assert!((a.one_nn_error - b.one_nn_error).abs() < 1e-12);
        assert_eq!(a.decision, b.decision);
    }
}
