//! Numerical evaluation of the regime quantities of Section IV-B.
//!
//! For a transformation `f` and a task with known Bayes error `R*_X`, the
//! paper defines
//!
//! * the **transformation bias** `δ_f = R*_{f(X)} − R*_X` (Eq. 6),
//! * the **asymptotic tightness** `Δ_f = R*_{f(X)} − lim_n R̂_{f(X),n}`
//!   (Eq. 5),
//! * the **n-sample gap** `γ_{f,n} = R̂_{f(X),n} − lim_n R̂_{f(X),n}` (Eq. 7),
//!
//! and shows that the minimum aggregation cannot underestimate the BER
//! whenever `δ_f + γ_{f,n} − Δ_f ≥ 0` for every transformation (Condition 8).
//! None of the three quantities is computable in practice — but on the
//! synthetic tasks of this reproduction the true BER *is* known, and the
//! remaining limits can be approximated numerically, which lets the
//! experiment harness regenerate Figures 14–17 and verify Condition 8 for
//! the shipped zoo.
//!
//! Approximations used (documented alongside the numbers they produce):
//! `R*_{f(X)}` is estimated with a kNN posterior plug-in on the transformed
//! features using all available samples; `lim_n R̂_{f(X),n}` is approximated
//! by the Cover–Hart estimate at the largest available `n`.

use snoopy_data::TaskDataset;
use snoopy_embeddings::Transformation;
use snoopy_estimators::{
    cover_hart_lower_bound, BerEstimator, KnnPosteriorEstimator, LabeledView, OneNnEstimator,
};
use snoopy_knn::Metric;

/// The regime quantities for one transformation on one task.
#[derive(Debug, Clone)]
pub struct RegimeQuantities {
    /// Transformation name.
    pub name: String,
    /// True Bayes error of the raw task (known by construction).
    pub true_ber: f64,
    /// Estimated Bayes error of the transformed task `R*_{f(X)}`.
    pub transformed_ber: f64,
    /// Transformation bias `δ_f` (clamped at zero: deterministic
    /// transformations cannot decrease the BER).
    pub delta_f: f64,
    /// Asymptotic-limit proxy `lim_n R̂_{f(X),n}` (Cover–Hart estimate at the
    /// largest available sample size).
    pub estimator_limit: f64,
    /// Asymptotic tightness `Δ_f`.
    pub tightness: f64,
    /// Finite-sample gaps `γ_{f,n}` for the requested prefix sizes.
    pub finite_sample_gaps: Vec<(usize, f64)>,
}

impl RegimeQuantities {
    /// Left-hand side of Condition 8 at the given prefix size:
    /// `δ_f + γ_{f,n} − Δ_f`.
    pub fn condition8_margin(&self, n: usize) -> Option<f64> {
        self.finite_sample_gaps
            .iter()
            .find(|&&(size, _)| size == n)
            .map(|&(_, gamma)| self.delta_f + gamma - self.tightness)
    }

    /// Whether Condition 8 holds (margin non-negative) at the largest
    /// evaluated prefix.
    pub fn condition8_holds(&self) -> bool {
        self.finite_sample_gaps
            .last()
            .map(|&(_, gamma)| self.delta_f + gamma - self.tightness >= -1e-6)
            .unwrap_or(true)
    }
}

/// Computes the regime quantities for one transformation.
///
/// `prefix_fractions` controls at which training-set fractions the
/// finite-sample gap is evaluated (e.g. `[0.25, 0.5, 1.0]`).
///
/// # Panics
/// Panics if the task does not carry a known true BER.
pub fn regime_quantities(
    task: &TaskDataset,
    transformation: &dyn Transformation,
    prefix_fractions: &[f64],
) -> RegimeQuantities {
    let true_ber = task.meta.true_ber.expect("regime analysis needs a task with known BER");
    let train_embedded = transformation.transform(task.train.features_view());
    let test_embedded = transformation.transform(task.test.features_view());

    let train_view = LabeledView::new(&train_embedded, &task.train.labels);
    let test_view = LabeledView::new(&test_embedded, &task.test.labels);

    // R*_{f(X)}: kNN posterior plug-in with a moderately large k.
    let k = (task.train.len() / 20).clamp(5, 50);
    let transformed_ber = KnnPosteriorEstimator::new(k).estimate(&train_view, &test_view, task.num_classes);
    let delta_f = (transformed_ber - true_ber).max(0.0);

    // lim_n R̂_{f(X),n}: Cover–Hart estimate at the largest n we have.
    let one_nn = OneNnEstimator::new(Metric::SquaredEuclidean);
    let full_error = one_nn.raw_one_nn_error(&train_view, &test_view, task.num_classes);
    let estimator_limit = cover_hart_lower_bound(full_error, task.num_classes);
    let tightness = (transformed_ber - estimator_limit).max(0.0);

    // γ_{f,n} for growing prefixes.
    let mut finite_sample_gaps = Vec::new();
    for &fraction in prefix_fractions {
        let n = ((task.train.len() as f64) * fraction).round() as usize;
        let n = n.clamp(1, task.train.len());
        let prefix_features = train_embedded.slice_rows(0, n);
        let prefix_labels = &task.train.labels[..n];
        let prefix_view = LabeledView::new(&prefix_features, prefix_labels);
        let err_n = one_nn.raw_one_nn_error(&prefix_view, &test_view, task.num_classes);
        let est_n = cover_hart_lower_bound(err_n, task.num_classes);
        finite_sample_gaps.push((n, (est_n - estimator_limit).max(0.0)));
    }

    RegimeQuantities {
        name: transformation.name().to_string(),
        true_ber,
        transformed_ber,
        delta_f,
        estimator_limit,
        tightness,
        finite_sample_gaps,
    }
}

/// Evaluates Condition 8 across a whole zoo and reports the fraction of
/// transformations for which it holds (the paper's claim is that it holds for
/// "reasonable label noise on a wide range of datasets and transformations").
pub fn condition8_summary(
    task: &TaskDataset,
    zoo: &[Box<dyn Transformation>],
    fractions: &[f64],
) -> (usize, usize) {
    let mut holds = 0usize;
    for t in zoo {
        let q = regime_quantities(task, t.as_ref(), fractions);
        if q.condition8_holds() {
            holds += 1;
        }
    }
    (holds, zoo.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};
    use snoopy_embeddings::{zoo_for_task, SimulatedPretrained};

    #[test]
    fn quantities_are_nonnegative_and_consistent() {
        let task = load_clean("cifar10", SizeScale::Tiny, 1);
        let zoo = zoo_for_task(&task, 2);
        let best = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let q = regime_quantities(&task, best.as_ref(), &[0.5, 1.0]);
        assert!(q.delta_f >= 0.0);
        assert!(q.tightness >= 0.0);
        assert_eq!(q.finite_sample_gaps.len(), 2);
        assert!(q.finite_sample_gaps.iter().all(|&(_, g)| g >= 0.0));
        // The half-data gap should not be smaller than the full-data gap.
        assert!(q.finite_sample_gaps[0].1 + 1e-9 >= q.finite_sample_gaps[1].1);
        assert!(q.condition8_margin(task.train.len()).is_some());
    }

    #[test]
    fn low_fidelity_embeddings_have_larger_bias() {
        let task = load_clean("cifar10", SizeScale::Tiny, 3);
        let map = task.meta.latent_map.clone().unwrap();
        let good: Box<dyn Transformation> =
            Box::new(SimulatedPretrained::new("good", &map, task.raw_dim(), 48, 0.95, 1e-3, 5));
        let bad: Box<dyn Transformation> =
            Box::new(SimulatedPretrained::new("bad", &map, task.raw_dim(), 48, 0.05, 1e-3, 5));
        let q_good = regime_quantities(&task, good.as_ref(), &[1.0]);
        let q_bad = regime_quantities(&task, bad.as_ref(), &[1.0]);
        assert!(
            q_bad.delta_f > q_good.delta_f,
            "bad embedding bias {} should exceed good embedding bias {}",
            q_bad.delta_f,
            q_good.delta_f
        );
    }

    #[test]
    fn condition8_holds_for_most_of_the_zoo_on_a_clean_task() {
        let task = load_clean("mnist", SizeScale::Tiny, 7);
        let zoo = zoo_for_task(&task, 8);
        let (holds, total) = condition8_summary(&task, &zoo, &[1.0]);
        assert!(total >= 20);
        assert!(
            holds as f64 / total as f64 > 0.8,
            "Condition 8 should hold for most transformations ({holds}/{total})"
        );
    }
}
