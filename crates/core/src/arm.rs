//! Bandit arms backed by a feature transformation and a streamed 1NN
//! evaluator.
//!
//! Pulling a [`TransformationArm`] embeds one more batch of raw training
//! samples through its transformation, feeds the embedded batch to the
//! streamed 1NN evaluator, and returns the updated test error. The simulated
//! cost of a pull is the inference cost of the batch (test-set inference is
//! charged on the first pull), which is exactly the cost structure that makes
//! successive halving worthwhile in the paper (Section V).

use snoopy_bandit::Arm;
use snoopy_data::TaskDataset;
use snoopy_embeddings::Transformation;
use snoopy_knn::{Metric, StreamedOneNn};
use snoopy_linalg::Matrix;

/// A bandit arm evaluating one transformation on one task.
pub struct TransformationArm<'a> {
    transformation: &'a dyn Transformation,
    task: &'a TaskDataset,
    metric: Metric,
    batch_size: usize,
    /// Lazily initialised on the first pull (embedding the test split).
    stream: Option<StreamedOneNn>,
    consumed: usize,
    simulated_cost: f64,
    /// Embedded training features are produced batch-by-batch; test features
    /// once. Embeddings of already-consumed batches are kept so the full
    /// training embedding can be reassembled for the incremental cache.
    embedded_batches: Vec<Matrix>,
}

impl<'a> TransformationArm<'a> {
    /// Creates an arm.
    pub fn new(
        transformation: &'a dyn Transformation,
        task: &'a TaskDataset,
        metric: Metric,
        batch_size: usize,
    ) -> Self {
        Self {
            transformation,
            task,
            metric,
            batch_size: batch_size.max(1),
            stream: None,
            consumed: 0,
            simulated_cost: 0.0,
            embedded_batches: Vec::new(),
        }
    }

    /// Simulated inference cost charged so far (seconds).
    pub fn simulated_cost(&self) -> f64 {
        self.simulated_cost
    }

    /// The convergence curve recorded so far: `(consumed samples, error)`.
    pub fn curve(&self) -> Vec<(usize, f64)> {
        self.stream.as_ref().map(|s| s.curve().to_vec()).unwrap_or_default()
    }

    /// Number of raw training samples consumed.
    pub fn consumed_samples(&self) -> usize {
        self.consumed
    }

    /// Access to the underlying streamed evaluator (once at least one pull
    /// happened).
    pub fn stream(&self) -> Option<&StreamedOneNn> {
        self.stream.as_ref()
    }

    /// The embedded training features for all consumed batches, stacked in
    /// consumption order. Used to build the incremental cache after a full
    /// run.
    pub fn embedded_training_features(&self) -> Option<Matrix> {
        if self.embedded_batches.is_empty() {
            return None;
        }
        let mut stacked = self.embedded_batches[0].clone();
        for batch in &self.embedded_batches[1..] {
            stacked = stacked.vstack(batch);
        }
        Some(stacked)
    }

    fn ensure_stream(&mut self) {
        if self.stream.is_some() {
            return;
        }
        let test_embedded = self.transformation.transform(&self.task.test.features);
        self.simulated_cost += self.transformation.cost_for(self.task.test.len());
        self.stream = Some(StreamedOneNn::new(test_embedded, self.task.test.labels.clone(), self.metric));
    }
}

impl Arm for TransformationArm<'_> {
    fn name(&self) -> &str {
        self.transformation.name()
    }

    fn pull(&mut self) -> f64 {
        if self.exhausted() {
            return self.current_loss();
        }
        self.ensure_stream();
        let start = self.consumed;
        let end = (start + self.batch_size).min(self.task.train.len());
        let raw_batch = self.task.train.features.slice_rows(start, end);
        let embedded = self.transformation.transform(&raw_batch);
        self.simulated_cost += self.transformation.cost_for(end - start);
        let labels = &self.task.train.labels[start..end];
        let err = self
            .stream
            .as_mut()
            .expect("stream initialised by ensure_stream")
            .add_train_batch(&embedded, labels);
        self.embedded_batches.push(embedded);
        self.consumed = end;
        err
    }

    fn pulls(&self) -> usize {
        self.stream.as_ref().map(|s| s.curve().len()).unwrap_or(0)
    }

    fn exhausted(&self) -> bool {
        self.consumed >= self.task.train.len()
    }

    fn current_loss(&self) -> f64 {
        self.stream.as_ref().map(|s| s.current_error()).unwrap_or(1.0)
    }

    fn cost_per_pull(&self) -> f64 {
        self.transformation.cost_for(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};
    use snoopy_embeddings::zoo_for_task;
    use snoopy_knn::BruteForceIndex;

    #[test]
    fn pulling_to_exhaustion_matches_full_evaluation() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let zoo = zoo_for_task(&task, 2);
        let best = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let batch = (task.train.len() / 4).max(1);
        let mut arm = TransformationArm::new(best.as_ref(), &task, Metric::SquaredEuclidean, batch);
        assert_eq!(arm.current_loss(), 1.0);
        while !arm.exhausted() {
            arm.pull();
        }
        let full_train = best.transform(&task.train.features);
        let full_test = best.transform(&task.test.features);
        let full_err = BruteForceIndex::new(full_train, task.train.labels.clone(), task.num_classes, Metric::SquaredEuclidean)
            .one_nn_error(&full_test, &task.test.labels);
        assert!((arm.current_loss() - full_err).abs() < 1e-12);
        assert_eq!(arm.consumed_samples(), task.train.len());
        assert!(arm.simulated_cost() > 0.0);
        // The curve has one point per pull.
        assert_eq!(arm.curve().len(), arm.pulls());
        // The stacked embedded features cover the whole training split.
        assert_eq!(arm.embedded_training_features().unwrap().rows(), task.train.len());
    }

    #[test]
    fn cost_tracks_inference_volume() {
        let task = load_clean("mnist", SizeScale::Tiny, 3);
        let zoo = zoo_for_task(&task, 4);
        let pricey = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let cheap = zoo.iter().find(|t| t.name() == "raw").unwrap();
        let mut arm_pricey = TransformationArm::new(pricey.as_ref(), &task, Metric::SquaredEuclidean, 16);
        let mut arm_cheap = TransformationArm::new(cheap.as_ref(), &task, Metric::SquaredEuclidean, 16);
        arm_pricey.pull();
        arm_cheap.pull();
        assert!(arm_pricey.simulated_cost() > arm_cheap.simulated_cost());
        assert!(arm_pricey.cost_per_pull() > 0.0);
    }

    #[test]
    fn pulling_an_exhausted_arm_is_a_noop() {
        let task = load_clean("sst2", SizeScale::Tiny, 5);
        let zoo = zoo_for_task(&task, 6);
        let mut arm = TransformationArm::new(zoo[0].as_ref(), &task, Metric::Cosine, task.train.len());
        let first = arm.pull();
        assert!(arm.exhausted());
        let again = arm.pull();
        assert_eq!(first, again);
        assert_eq!(arm.pulls(), 1);
    }
}
