//! Bandit arms backed by a feature transformation and a streamed 1NN
//! evaluator.
//!
//! Pulling a [`TransformationArm`] embeds one more batch of raw training
//! samples through its transformation, feeds the embedded batch to the
//! streamed 1NN evaluator, and returns the updated test error. The simulated
//! cost of a pull is the inference cost of the batch (test-set inference is
//! charged on the first pull), which is exactly the cost structure that makes
//! successive halving worthwhile in the paper (Section V).
//!
//! Raw batches are sliced zero-copy from the task's training split
//! ([`snoopy_linalg::DatasetView`]); only the *embedded* batch is
//! materialised, fed to the stream, and dropped. Nothing is kept around for
//! later reassembly — the incremental cache snapshots the stream's
//! nearest-index state instead ([`snoopy_knn::IncrementalOneNn::from_stream`]).
//! Pull/cost bookkeeping lives in the shared [`PullLedger`] from
//! `snoopy-bandit`, the same ledger every other arm implementation uses.

use snoopy_bandit::{Arm, PullLedger};
use snoopy_data::TaskDataset;
use snoopy_embeddings::Transformation;
use snoopy_knn::{EvalBackend, EvalEngine, Metric, StreamedOneNn};

/// A bandit arm evaluating one transformation on one task.
pub struct TransformationArm<'a> {
    transformation: &'a dyn Transformation,
    task: &'a TaskDataset,
    metric: Metric,
    batch_size: usize,
    /// Lazily initialised on the first pull (embedding the test split).
    stream: Option<StreamedOneNn>,
    consumed: usize,
    ledger: PullLedger,
    /// Engine handed to the streamed evaluator. The study throttles this to
    /// a per-arm share of the cores: the strategy layer already runs arms on
    /// their own worker threads, and nesting a full-width engine inside each
    /// would oversubscribe the CPU.
    engine: EvalEngine,
    /// Evaluation backend handed to the streamed evaluator (the study
    /// resolves the config's choice — forced or auto-by-batch-size — before
    /// constructing arms). Exhaustive and clustered streams are
    /// bit-identical.
    backend: EvalBackend,
}

impl<'a> TransformationArm<'a> {
    /// Creates an arm.
    pub fn new(
        transformation: &'a dyn Transformation,
        task: &'a TaskDataset,
        metric: Metric,
        batch_size: usize,
    ) -> Self {
        Self {
            transformation,
            task,
            metric,
            batch_size: batch_size.max(1),
            stream: None,
            consumed: 0,
            ledger: PullLedger::new(),
            engine: EvalEngine::parallel(),
            backend: EvalBackend::Exhaustive,
        }
    }

    /// Overrides the evaluation engine used by this arm's streamed 1NN.
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the evaluation backend used by this arm's streamed 1NN.
    pub fn with_backend(mut self, backend: EvalBackend) -> Self {
        self.backend = backend;
        if let Some(stream) = self.stream.as_mut() {
            stream.set_backend(backend);
        }
        self
    }

    /// Swaps the engine in place, including on an already-started stream.
    /// The study re-widens the winning arm with this before finishing it
    /// alone — the per-arm throttle only makes sense while the whole zoo is
    /// running concurrently.
    pub fn set_engine(&mut self, engine: EvalEngine) {
        self.engine = engine;
        if let Some(stream) = self.stream.as_mut() {
            stream.set_engine(engine);
        }
    }

    /// Simulated inference cost charged so far (seconds).
    pub fn simulated_cost(&self) -> f64 {
        self.ledger.simulated_cost()
    }

    /// The convergence curve recorded so far: `(consumed samples, error)`.
    pub fn curve(&self) -> Vec<(usize, f64)> {
        self.stream.as_ref().map(|s| s.curve().to_vec()).unwrap_or_default()
    }

    /// Number of raw training samples consumed.
    pub fn consumed_samples(&self) -> usize {
        self.consumed
    }

    /// Access to the underlying streamed evaluator (once at least one pull
    /// happened).
    pub fn stream(&self) -> Option<&StreamedOneNn> {
        self.stream.as_ref()
    }

    /// Pulls until the training split is fully consumed and returns the
    /// stream, which then holds the exact nearest-neighbour state over the
    /// whole training set — ready for
    /// [`snoopy_knn::IncrementalOneNn::from_stream`]. Additional pulls are
    /// charged to the ledger like any others.
    pub fn finish(&mut self) -> &StreamedOneNn {
        while !self.exhausted() {
            self.pull();
        }
        self.stream.as_ref().expect("finish() pulled at least once on a non-empty task")
    }

    fn ensure_stream(&mut self) {
        if self.stream.is_some() {
            return;
        }
        let test_embedded = self.transformation.transform(self.task.test.features_view());
        self.ledger.charge(self.transformation.cost_for(self.task.test.len()));
        self.stream = Some(
            StreamedOneNn::new(test_embedded, self.task.test.labels.clone(), self.metric)
                .with_engine(self.engine)
                .with_backend(self.backend),
        );
    }
}

impl Arm for TransformationArm<'_> {
    fn name(&self) -> &str {
        self.transformation.name()
    }

    fn pull(&mut self) -> f64 {
        if self.exhausted() {
            return self.current_loss();
        }
        self.ensure_stream();
        let start = self.consumed;
        let end = (start + self.batch_size).min(self.task.train.len());
        let raw_batch = self.task.train.features_view().slice_rows(start, end);
        let embedded = self.transformation.transform(raw_batch);
        self.ledger.record_pull(self.transformation.cost_for(end - start));
        let labels = &self.task.train.labels[start..end];
        let err = self
            .stream
            .as_mut()
            .expect("stream initialised by ensure_stream")
            .add_train_batch(embedded.view(), labels);
        self.consumed = end;
        err
    }

    fn pulls(&self) -> usize {
        self.ledger.pulls()
    }

    fn exhausted(&self) -> bool {
        self.consumed >= self.task.train.len()
    }

    fn current_loss(&self) -> f64 {
        self.stream.as_ref().map(|s| s.current_error()).unwrap_or(1.0)
    }

    fn cost_per_pull(&self) -> f64 {
        self.transformation.cost_for(self.batch_size)
    }

    fn accumulated_cost(&self) -> f64 {
        self.ledger.simulated_cost()
    }

    /// Resizes the inner 1NN engine to a per-arm share of the cores: with
    /// `active_arms` arms pulling concurrently on strategy worker threads, a
    /// full-width engine in each would oversubscribe the CPU; alone, the arm
    /// takes every core.
    fn on_concurrency(&mut self, active_arms: usize) {
        let share = (snoopy_knn::engine::num_threads() / active_arms.max(1)).max(1);
        self.set_engine(EvalEngine::with_threads(share));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};
    use snoopy_embeddings::zoo_for_task;
    use snoopy_knn::{BruteForceIndex, IncrementalOneNn};

    #[test]
    fn pulling_to_exhaustion_matches_full_evaluation() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let zoo = zoo_for_task(&task, 2);
        let best = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let batch = (task.train.len() / 4).max(1);
        let mut arm = TransformationArm::new(best.as_ref(), &task, Metric::SquaredEuclidean, batch);
        assert_eq!(arm.current_loss(), 1.0);
        while !arm.exhausted() {
            arm.pull();
        }
        let full_train = best.transform(task.train.features_view());
        let full_test = best.transform(task.test.features_view());
        let full_err =
            BruteForceIndex::new(&full_train, &task.train.labels, task.num_classes, Metric::SquaredEuclidean)
                .one_nn_error(&full_test, &task.test.labels);
        assert!((arm.current_loss() - full_err).abs() < 1e-12);
        assert_eq!(arm.consumed_samples(), task.train.len());
        assert!(arm.simulated_cost() > 0.0);
        // The curve has one point per pull.
        assert_eq!(arm.curve().len(), arm.pulls());
    }

    #[test]
    fn finished_arm_snapshots_into_the_incremental_cache_without_reembedding() {
        let task = load_clean("mnist", SizeScale::Tiny, 7);
        let zoo = zoo_for_task(&task, 8);
        let best = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let batch = (task.train.len() / 3).max(1);
        let mut arm = TransformationArm::new(best.as_ref(), &task, Metric::SquaredEuclidean, batch);
        arm.pull(); // partially consumed
        let stream = arm.finish();
        let cache = IncrementalOneNn::from_stream(stream, &task.train.labels, &task.test.labels);

        let full_train = best.transform(task.train.features_view());
        let full_test = best.transform(task.test.features_view());
        let rebuilt = IncrementalOneNn::build(
            &full_train,
            &task.train.labels,
            &full_test,
            &task.test.labels,
            task.num_classes,
            Metric::SquaredEuclidean,
        );
        assert!((cache.error() - rebuilt.error()).abs() < 1e-12);
    }

    #[test]
    fn cost_tracks_inference_volume() {
        let task = load_clean("mnist", SizeScale::Tiny, 3);
        let zoo = zoo_for_task(&task, 4);
        let pricey = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let cheap = zoo.iter().find(|t| t.name() == "raw").unwrap();
        let mut arm_pricey = TransformationArm::new(pricey.as_ref(), &task, Metric::SquaredEuclidean, 16);
        let mut arm_cheap = TransformationArm::new(cheap.as_ref(), &task, Metric::SquaredEuclidean, 16);
        arm_pricey.pull();
        arm_cheap.pull();
        assert!(arm_pricey.simulated_cost() > arm_cheap.simulated_cost());
        assert!(arm_pricey.cost_per_pull() > 0.0);
    }

    #[test]
    fn pulling_an_exhausted_arm_is_a_noop() {
        let task = load_clean("sst2", SizeScale::Tiny, 5);
        let zoo = zoo_for_task(&task, 6);
        let mut arm = TransformationArm::new(zoo[0].as_ref(), &task, Metric::Cosine, task.train.len());
        let first = arm.pull();
        assert!(arm.exhausted());
        let again = arm.pull();
        assert_eq!(first, again);
        assert_eq!(arm.pulls(), 1);
    }
}
