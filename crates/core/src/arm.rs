//! Bandit arms backed by a feature transformation and the incremental top-k
//! successor state.
//!
//! Pulling a [`TransformationArm`] embeds one more batch of raw training
//! samples through its transformation and **appends** the embedded batch to
//! the arm's [`IncrementalTopK`] — `O(batch × queries)` kernel work, never a
//! rebuild of what earlier pulls already paid for — then returns the updated
//! test error. The simulated cost of a pull is the inference cost of the
//! batch (test-set inference is charged on the first pull), which is exactly
//! the cost structure that makes successive halving worthwhile in the paper
//! (Section V); the *true incremental evaluation cost* (query–row pairs the
//! append actually folded, post-pruning) is additionally reported to the
//! strategies through [`snoopy_bandit::Arm::eval_pairs`].
//!
//! Raw batches are sliced zero-copy from the task's training split
//! ([`snoopy_linalg::DatasetView`]); only the *embedded* batch is
//! materialised, appended, and dropped — except under a clustered append
//! backend, whose persistent partition retains the embedded rows it folded
//! (the raw material of its re-partitions; see
//! [`IncrementalTopK::with_backend`]). Nothing is ever re-embedded or
//! reassembled for a rebuild — the study takes the winning arm's state itself
//! ([`TransformationArm::take_state`]) and hands it to the cleaning loop and
//! the estimators unchanged. Pull/cost bookkeeping lives in the shared
//! [`PullLedger`] from `snoopy-bandit`, the same ledger every other arm
//! implementation uses.

use snoopy_bandit::{Arm, PullLedger};
use snoopy_data::TaskDataset;
use snoopy_embeddings::{Transformation, TransformedTask};
use snoopy_knn::{EvalBackend, EvalEngine, IncrementalTopK, Metric};
use std::sync::Arc;

/// A bandit arm evaluating one transformation on one task.
pub struct TransformationArm<'a> {
    transformation: &'a dyn Transformation,
    task: &'a TaskDataset,
    metric: Metric,
    batch_size: usize,
    /// Per-query neighbour capacity of the arm's state: 1 for the pure
    /// feasibility signal, larger when the winner's snapshot must also feed
    /// k-consuming estimators (the 1NN error is identical for every k).
    table_k: usize,
    /// Lazily initialised on the first pull (embedding the test split).
    state: Option<IncrementalTopK>,
    consumed: usize,
    ledger: PullLedger,
    /// Engine handed to the incremental state. The study throttles this to
    /// a per-arm share of the cores: the strategy layer already runs arms on
    /// their own worker threads, and nesting a full-width engine inside each
    /// would oversubscribe the CPU.
    engine: EvalEngine,
    /// Append backend handed to the incremental state (the study resolves
    /// the config's choice — forced or auto-by-batch-size — before
    /// constructing arms). Exhaustive and clustered appends are
    /// bit-identical.
    backend: EvalBackend,
    /// Pre-computed embeddings of both splits (the feasibility service's
    /// warm path). When present, pulls slice the cached train rows
    /// zero-copy and the first pull clones the cached test embedding —
    /// no inference runs and no cost is charged here, because the
    /// [`snoopy_embeddings::EmbeddingCache`] that produced the value
    /// charged once at fill time. Transformations are deterministic
    /// row-wise functions, so the sliced cached rows are bit-identical to
    /// embedding the raw batch directly.
    embeddings: Option<Arc<TransformedTask>>,
}

impl<'a> TransformationArm<'a> {
    /// Creates an arm.
    pub fn new(
        transformation: &'a dyn Transformation,
        task: &'a TaskDataset,
        metric: Metric,
        batch_size: usize,
    ) -> Self {
        Self {
            transformation,
            task,
            metric,
            batch_size: batch_size.max(1),
            table_k: 1,
            state: None,
            consumed: 0,
            ledger: PullLedger::new(),
            engine: EvalEngine::parallel(),
            backend: EvalBackend::Exhaustive,
            embeddings: None,
        }
    }

    /// Serves this arm from pre-computed embeddings: pulls slice the cached
    /// train rows instead of running inference, and the first pull clones
    /// the cached test embedding. The ledger charges nothing for warm pulls
    /// (the embedding cache charged once when it computed the value), but
    /// pull counts and eval-pair accounting are unchanged — and so is every
    /// observed error, bit for bit.
    ///
    /// # Panics
    /// Panics if the state already exists or the cached embeddings belong to
    /// a different transformation.
    pub fn with_embeddings(mut self, embeddings: Arc<TransformedTask>) -> Self {
        assert!(self.state.is_none(), "embeddings must be provided before the first pull");
        assert_eq!(
            embeddings.transformation,
            self.transformation.name(),
            "cached embeddings must come from this arm's transformation"
        );
        self.embeddings = Some(embeddings);
        self
    }

    /// Overrides the evaluation engine used by this arm's state.
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the append backend used by this arm's state.
    pub fn with_backend(mut self, backend: EvalBackend) -> Self {
        self.backend = backend;
        if let Some(state) = self.state.as_mut() {
            state.set_backend(backend);
        }
        self
    }

    /// Overrides the per-query neighbour capacity `k` retained by this arm's
    /// state (must be set before the first pull; clamped to ≥ 1).
    ///
    /// # Panics
    /// Panics if the state already exists.
    pub fn with_table_k(mut self, k: usize) -> Self {
        assert!(self.state.is_none(), "table_k must be set before the first pull");
        self.table_k = k.max(1);
        self
    }

    /// Swaps the engine in place, including on an already-started state.
    /// The study re-widens the winning arm with this before finishing it
    /// alone — the per-arm throttle only makes sense while the whole zoo is
    /// running concurrently.
    pub fn set_engine(&mut self, engine: EvalEngine) {
        self.engine = engine;
        if let Some(state) = self.state.as_mut() {
            state.set_engine(engine);
        }
    }

    /// Simulated inference cost charged so far (seconds).
    pub fn simulated_cost(&self) -> f64 {
        self.ledger.simulated_cost()
    }

    /// The convergence curve recorded so far: `(consumed samples, error)`.
    pub fn curve(&self) -> Vec<(usize, f64)> {
        self.state.as_ref().map(|s| s.curve().to_vec()).unwrap_or_default()
    }

    /// Number of raw training samples consumed.
    pub fn consumed_samples(&self) -> usize {
        self.consumed
    }

    /// Access to the underlying incremental state (once at least one pull
    /// happened).
    pub fn state(&self) -> Option<&IncrementalTopK> {
        self.state.as_ref()
    }

    /// Moves the incremental state out of the arm — what the study does with
    /// the winner after [`TransformationArm::finish`], so the cleaning loop
    /// and the estimators keep working on the *same* state the bandit grew
    /// (no re-embedding, no rebuild).
    pub fn take_state(&mut self) -> Option<IncrementalTopK> {
        self.state.take()
    }

    /// Pulls until the training split is fully consumed and returns the
    /// state, which then holds the exact top-k neighbour state over the
    /// whole training set. Additional pulls are charged to the ledger like
    /// any others.
    pub fn finish(&mut self) -> &IncrementalTopK {
        while !self.exhausted() {
            self.pull();
        }
        self.state.as_ref().expect("finish() pulled at least once on a non-empty task")
    }

    fn ensure_state(&mut self) {
        if self.state.is_some() {
            return;
        }
        let test_embedded = match &self.embeddings {
            Some(cached) => cached.test_features.clone(),
            None => {
                self.ledger.charge(self.transformation.cost_for(self.task.test.len()));
                self.transformation.transform(self.task.test.features_view())
            }
        };
        self.state = Some(
            IncrementalTopK::new(test_embedded, self.task.test.labels.clone(), self.metric, self.table_k)
                .with_engine(self.engine)
                .with_backend(self.backend),
        );
    }
}

impl Arm for TransformationArm<'_> {
    fn name(&self) -> &str {
        self.transformation.name()
    }

    fn pull(&mut self) -> f64 {
        if self.exhausted() {
            return self.current_loss();
        }
        self.ensure_state();
        let start = self.consumed;
        let end = (start + self.batch_size).min(self.task.train.len());
        let embedded_cold;
        let (embedded, pull_cost) = match &self.embeddings {
            Some(cached) => (cached.train_features.view().slice_rows(start, end), 0.0),
            None => {
                let raw_batch = self.task.train.features_view().slice_rows(start, end);
                embedded_cold = self.transformation.transform(raw_batch);
                (embedded_cold.view(), self.transformation.cost_for(end - start))
            }
        };
        self.ledger.record_pull(pull_cost);
        let labels = &self.task.train.labels[start..end];
        let state = self.state.as_mut().expect("state initialised by ensure_state");
        let before = state.folded_pairs();
        let err = state.append(embedded, labels);
        self.ledger.record_eval_pairs(state.folded_pairs() - before);
        self.consumed = end;
        err
    }

    fn pulls(&self) -> usize {
        self.ledger.pulls()
    }

    fn exhausted(&self) -> bool {
        self.consumed >= self.task.train.len()
    }

    fn current_loss(&self) -> f64 {
        self.state.as_ref().map(|s| s.error()).unwrap_or(1.0)
    }

    fn cost_per_pull(&self) -> f64 {
        self.transformation.cost_for(self.batch_size)
    }

    fn accumulated_cost(&self) -> f64 {
        self.ledger.simulated_cost()
    }

    fn eval_pairs(&self) -> u64 {
        self.ledger.eval_pairs()
    }

    /// Resizes the inner engine to a per-arm share of the cores: with
    /// `active_arms` arms pulling concurrently on strategy worker threads, a
    /// full-width engine in each would oversubscribe the CPU; alone, the arm
    /// takes every core.
    fn on_concurrency(&mut self, active_arms: usize) {
        let share = (snoopy_knn::engine::num_threads() / active_arms.max(1)).max(1);
        self.set_engine(EvalEngine::with_threads(share));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};
    use snoopy_embeddings::zoo_for_task;
    use snoopy_knn::BruteForceIndex;

    #[test]
    fn pulling_to_exhaustion_matches_full_evaluation() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let zoo = zoo_for_task(&task, 2);
        let best = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let batch = (task.train.len() / 4).max(1);
        let mut arm = TransformationArm::new(best.as_ref(), &task, Metric::SquaredEuclidean, batch);
        assert_eq!(arm.current_loss(), 1.0);
        while !arm.exhausted() {
            arm.pull();
        }
        let full_train = best.transform(task.train.features_view());
        let full_test = best.transform(task.test.features_view());
        let full_err =
            BruteForceIndex::new(&full_train, &task.train.labels, task.num_classes, Metric::SquaredEuclidean)
                .one_nn_error(&full_test, &task.test.labels);
        assert!((arm.current_loss() - full_err).abs() < 1e-12);
        assert_eq!(arm.consumed_samples(), task.train.len());
        assert!(arm.simulated_cost() > 0.0);
        // The curve has one point per pull, and the arm reported exactly the
        // incremental kernel work: every appended row against every query.
        assert_eq!(arm.curve().len(), arm.pulls());
        assert_eq!(arm.eval_pairs(), (task.train.len() * task.test.len()) as u64);
    }

    #[test]
    fn finished_arm_hands_over_its_state_without_reembedding() {
        let task = load_clean("mnist", SizeScale::Tiny, 7);
        let zoo = zoo_for_task(&task, 8);
        let best = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let batch = (task.train.len() / 3).max(1);
        let mut arm =
            TransformationArm::new(best.as_ref(), &task, Metric::SquaredEuclidean, batch).with_table_k(3);
        arm.pull(); // partially consumed
        arm.finish();
        let state = arm.take_state().expect("finished arm holds a state");
        assert!(arm.state().is_none(), "take_state moves the state out");

        let full_train = best.transform(task.train.features_view());
        let full_test = best.transform(task.test.features_view());
        let rebuilt = IncrementalTopK::build(
            &full_train,
            &task.train.labels,
            &full_test,
            &task.test.labels,
            Metric::SquaredEuclidean,
            3,
        );
        assert!((state.error() - rebuilt.error()).abs() < 1e-12);
        // The k = 3 table grown pull by pull equals the cold build's.
        assert_eq!(state.table(), rebuilt.table());
    }

    #[test]
    fn cost_tracks_inference_volume() {
        let task = load_clean("mnist", SizeScale::Tiny, 3);
        let zoo = zoo_for_task(&task, 4);
        let pricey = zoo.iter().find(|t| t.name() == "efficientnet-b7").unwrap();
        let cheap = zoo.iter().find(|t| t.name() == "raw").unwrap();
        let mut arm_pricey = TransformationArm::new(pricey.as_ref(), &task, Metric::SquaredEuclidean, 16);
        let mut arm_cheap = TransformationArm::new(cheap.as_ref(), &task, Metric::SquaredEuclidean, 16);
        arm_pricey.pull();
        arm_cheap.pull();
        assert!(arm_pricey.simulated_cost() > arm_cheap.simulated_cost());
        assert!(arm_pricey.cost_per_pull() > 0.0);
    }

    #[test]
    fn pulling_an_exhausted_arm_is_a_noop() {
        let task = load_clean("sst2", SizeScale::Tiny, 5);
        let zoo = zoo_for_task(&task, 6);
        let mut arm = TransformationArm::new(zoo[0].as_ref(), &task, Metric::Cosine, task.train.len());
        let first = arm.pull();
        assert!(arm.exhausted());
        let again = arm.pull();
        assert_eq!(first, again);
        assert_eq!(arm.pulls(), 1);
    }
}
