//! Configuration of a feasibility study.

use snoopy_bandit::SelectionStrategy;
use snoopy_knn::{EvalBackend, Metric};

/// Configuration of one Snoopy run.
#[derive(Debug, Clone, Copy)]
pub struct SnoopyConfig {
    /// The user's target accuracy `α_target` in `(0, 1]`.
    pub target_accuracy: f64,
    /// Scheduler used to allocate inference budget across transformations.
    pub strategy: SelectionStrategy,
    /// Fraction of the training set fed to each arm per pull (the paper tunes
    /// this "batch size" hyper-parameter over {1 %, 2 %, 5 %}).
    pub batch_fraction: f64,
    /// Distance metric for the 1NN evaluator.
    pub metric: Metric,
    /// Total pull budget for budgeted strategies; `None` derives a default of
    /// `max(#arms, #batches · ⌈log₂ #arms⌉ · 2)` pulls, enough for successive
    /// halving to fully converge its winner.
    pub budget: Option<usize>,
    /// Seed used for anything stochastic in the study (zoo construction).
    pub seed: u64,
    /// Evaluation backend for the per-batch append folds: `None`
    /// auto-selects per arm by the train-size heuristic
    /// ([`EvalBackend::auto_for`] over the batch size and test-split size);
    /// `Some` forces a path — e.g. [`EvalBackend::quantized`] to scan
    /// visited clusters through the int8 two-phase path. Every path returns
    /// bit-identical errors — the backend only decides how much scan work
    /// is pruned (and, when quantized, how many bytes the scan touches).
    pub backend: Option<EvalBackend>,
    /// Per-query neighbour capacity `k` of each arm's incremental state.
    /// The feasibility signal only reads the first hit (identical for every
    /// `k`), but a larger capacity makes the winning arm's snapshot — the
    /// state [`crate::IncrementalStudy`] keeps — directly consumable by
    /// k-reading estimators without any recomputation.
    pub table_k: usize,
}

impl Default for SnoopyConfig {
    fn default() -> Self {
        Self {
            target_accuracy: 0.9,
            strategy: SelectionStrategy::SuccessiveHalvingTangent,
            batch_fraction: 0.05,
            metric: Metric::SquaredEuclidean,
            budget: None,
            seed: 0,
            backend: None,
            table_k: 1,
        }
    }
}

impl SnoopyConfig {
    /// Creates a configuration with a target accuracy and defaults elsewhere.
    pub fn with_target(target_accuracy: f64) -> Self {
        Self { target_accuracy, ..Default::default() }
    }

    /// Sets the selection strategy.
    pub fn strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the per-pull batch fraction.
    pub fn batch_fraction(mut self, fraction: f64) -> Self {
        self.batch_fraction = fraction;
        self
    }

    /// Sets the pull budget explicitly.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Forces the evaluation backend (instead of per-arm auto-selection).
    pub fn backend(mut self, backend: EvalBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the per-query neighbour capacity of each arm's incremental state
    /// (clamped to ≥ 1).
    pub fn table_k(mut self, k: usize) -> Self {
        self.table_k = k.max(1);
        self
    }

    /// The backend an arm should use for a given per-pull batch size and
    /// test-split size: the forced one if set, otherwise the train-size
    /// auto-selection heuristic over the streamed batch.
    pub fn backend_for(&self, batch_size: usize, test_len: usize) -> EvalBackend {
        self.backend.unwrap_or_else(|| EvalBackend::auto_for(batch_size, test_len, self.metric))
    }

    /// The target *error* corresponding to the target accuracy.
    pub fn target_error(&self) -> f64 {
        1.0 - self.target_accuracy
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if the target accuracy or batch fraction are outside their
    /// valid ranges.
    pub fn validate(&self) {
        assert!(
            self.target_accuracy > 0.0 && self.target_accuracy <= 1.0,
            "target accuracy must be in (0, 1], got {}",
            self.target_accuracy
        );
        assert!(
            self.batch_fraction > 0.0 && self.batch_fraction <= 1.0,
            "batch fraction must be in (0, 1], got {}",
            self.batch_fraction
        );
    }

    /// Number of batches needed to stream the full training split.
    pub fn batches_for(&self, train_len: usize) -> usize {
        let batch = self.batch_size(train_len);
        train_len.div_ceil(batch)
    }

    /// Batch size in samples for a training split of `train_len` samples.
    pub fn batch_size(&self, train_len: usize) -> usize {
        ((train_len as f64 * self.batch_fraction).round() as usize).clamp(1, train_len.max(1))
    }

    /// The pull budget to use for `num_arms` arms over a training split that
    /// needs `batches` pulls per arm.
    pub fn effective_budget(&self, num_arms: usize, batches: usize) -> usize {
        self.budget.unwrap_or_else(|| {
            let rounds = (num_arms.max(2) as f64).log2().ceil() as usize;
            (batches * rounds * 2).max(num_arms)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = SnoopyConfig::default();
        c.validate();
        assert_eq!(c.strategy, SelectionStrategy::SuccessiveHalvingTangent);
        assert!((c.target_error() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn builder_methods_chain() {
        let c = SnoopyConfig::with_target(0.8)
            .strategy(SelectionStrategy::Uniform)
            .batch_fraction(0.01)
            .budget(500);
        assert_eq!(c.strategy, SelectionStrategy::Uniform);
        assert_eq!(c.budget, Some(500));
        assert!((c.batch_fraction - 0.01).abs() < 1e-12);
    }

    #[test]
    fn batch_arithmetic() {
        let c = SnoopyConfig::default().batch_fraction(0.05);
        assert_eq!(c.batch_size(1000), 50);
        assert_eq!(c.batches_for(1000), 20);
        assert_eq!(c.batch_size(3), 1);
        assert_eq!(c.batches_for(3), 3);
    }

    #[test]
    fn effective_budget_default_and_override() {
        let c = SnoopyConfig::default();
        let b = c.effective_budget(16, 20);
        assert_eq!(b, 20 * 4 * 2);
        assert_eq!(c.budget(99).effective_budget(16, 20), 99);
    }

    #[test]
    #[should_panic(expected = "target accuracy")]
    fn rejects_zero_target() {
        SnoopyConfig::with_target(0.0).validate();
    }
}
