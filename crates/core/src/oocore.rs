//! Out-of-core feasibility studies: the full estimator pipeline over a
//! dataset that lives on disk and never fully materialises in memory.
//!
//! The study opens a [`DiskLabeledDataset`] directory (features + labels in
//! the versioned `snpy` format), holds out the trailing rows as the
//! evaluation split, and computes the shared neighbour table through the
//! shard-paged [`ShardedIndex`]: training rows stay in the memory-mapped
//! file, clusters materialise as independently evictable shards under a
//! configurable resident byte budget, and the triangle-inequality prune
//! order doubles as the paging order so bound-rejected clusters are never
//! faulted in at all. The resulting [`NeighborTable`] — and therefore every
//! estimate derived from it — is **bit-identical** to a fully-resident run;
//! the budget trades only time, never answers.
//!
//! Two pieces of the study run on `snoopy-pool` workers, off the scanning
//! thread: the index's shard **prefetch pipeline**
//! ([`OutOfCoreConfig::prefetch_depth`]) overlaps upcoming shard
//! materialisation with the current scan, and the FNV-1a **checksum
//! verification** of both payload files re-hashes the dataset concurrently
//! with the study — its verdict is awaited before any result is surfaced,
//! so a poisoned dataset fails loud
//! ([`snoopy_linalg::disk::DiskDatasetError::ChecksumMismatch`]) instead of
//! silently feeding corrupt rows into the estimators.

use std::path::Path;
use std::sync::Arc;

use snoopy_data::{DiskLabeledDataset, DiskPairError};
use snoopy_estimators::{default_estimators, estimate_all_with_table, shared_table_k};
use snoopy_knn::Metric;
pub use snoopy_knn::{NeighborTable, PagedResidentBytes, PagingStats, ShardedIndex};
use snoopy_linalg::LabeledView;

/// Knobs of an out-of-core study. All sizes are bytes of shard payload
/// (gathered f32 rows + per-row metadata + optional int8 shadow).
#[derive(Debug, Clone, Copy)]
pub struct OutOfCoreConfig {
    /// Resident shard budget. Peak residency is bounded by
    /// `budget + one shard` (the shard being scanned); see
    /// [`PagedResidentBytes`].
    pub shard_budget_bytes: usize,
    /// k-means cluster count — equivalently the shard count before
    /// empty-cluster pruning.
    pub nlist: usize,
    /// Trailing rows held out as the evaluation split (clamped so at least
    /// one training row remains).
    pub eval_rows: usize,
    /// Attach the per-shard int8 shadow: visited shards scan at about one
    /// byte per dimension with exact f32 re-ranking (identical table).
    pub quantize: bool,
    /// Prefetch pipeline depth `P`: up to `P` upcoming shards materialise
    /// on pool workers while the current one scans. 0 restores the fully
    /// serial fault→scan loop; results are bit-identical at every depth.
    /// Widens peak residency to `budget + max_shard × (1 + P)`.
    pub prefetch_depth: usize,
}

impl Default for OutOfCoreConfig {
    fn default() -> Self {
        OutOfCoreConfig {
            shard_budget_bytes: 8 << 20,
            nlist: 16,
            eval_rows: 256,
            quantize: false,
            prefetch_depth: 2,
        }
    }
}

/// What an out-of-core study produced, alongside the paging behaviour that
/// produced it.
#[derive(Debug, Clone)]
pub struct OutOfCoreReport {
    /// The shared neighbour table of the eval split against the training
    /// split — bit-identical to a fully-resident computation.
    pub table: NeighborTable,
    /// One BER estimate per [`default_estimators`] entry, in order.
    pub estimates: Vec<f64>,
    /// The aggregated (minimum) BER estimate — the paper's feasibility
    /// signal.
    pub min_estimate: f64,
    /// Shards faulted/evicted and bytes paged while computing the table.
    pub paging: PagingStats,
    /// Residency accounting: budget, peak, and largest shard.
    pub residency: PagedResidentBytes,
    /// Training rows scanned out of core.
    pub train_rows: usize,
    /// Evaluation rows.
    pub eval_rows: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Label classes.
    pub num_classes: usize,
}

/// Runs the default-estimator feasibility study over the disk dataset at
/// `dir`, paging training shards under `cfg.shard_budget_bytes`. The FNV-1a
/// payload checksums of both files verify on a pool worker concurrently
/// with the study; a mismatch surfaces as
/// [`snoopy_linalg::disk::DiskDatasetError::ChecksumMismatch`] (wrapped in
/// [`DiskPairError::Dataset`]) before any result is returned.
///
/// # Panics
/// Panics if the dataset has fewer than two rows (no train/eval split
/// exists).
pub fn run_oocore_study(dir: &Path, cfg: &OutOfCoreConfig) -> Result<OutOfCoreReport, DiskPairError> {
    let dataset = Arc::new(DiskLabeledDataset::open(dir)?);
    // Integrity off the fault path: re-hashing faults every page in, so it
    // runs concurrently with the study instead of serialising in front of
    // it. The verdict gates the return below.
    let verify = {
        let dataset = Arc::clone(&dataset);
        snoopy_pool::spawn(move || dataset.verify_checksums())
    };
    let full = dataset.view();
    let n = full.features().rows();
    assert!(n >= 2, "out-of-core study needs at least one train and one eval row, got {n} total");
    let eval_rows = cfg.eval_rows.clamp(1, n - 1);
    let train_rows = n - eval_rows;

    let train_x = full.features().slice_rows(0, train_rows);
    let eval_x = full.features().slice_rows(train_rows, n);
    let train = LabeledView::from_parts(train_x, &full.labels()[..train_rows], full.num_classes());
    let eval = LabeledView::from_parts(eval_x, &full.labels()[train_rows..], full.num_classes());

    let estimators = default_estimators();
    let k = shared_table_k(&estimators).max(1);
    let mut index = ShardedIndex::build(train_x, Metric::SquaredEuclidean, cfg.nlist, cfg.shard_budget_bytes)
        .with_prefetch_depth(cfg.prefetch_depth);
    if cfg.quantize {
        index = index.quantize();
    }
    let table = index.topk(eval_x, k);
    let estimates = estimate_all_with_table(&estimators, &table, &train, &eval, full.num_classes());
    let min_estimate = estimates.iter().copied().fold(f64::INFINITY, f64::min);

    // Fail loud on a poisoned dataset before surfacing anything derived
    // from its bytes.
    verify.join()?;

    Ok(OutOfCoreReport {
        table,
        estimates,
        min_estimate,
        paging: index.paging_stats(),
        residency: index.resident_bytes(),
        train_rows,
        eval_rows,
        dim: full.features().cols(),
        num_classes: full.num_classes(),
    })
}

/// The fully-resident reference for [`run_oocore_study`]: same split, same
/// estimators, but the shared table comes from the in-memory engine. Exists
/// so parity tests and benches state "paged == resident" in one call.
pub fn run_resident_reference(dir: &Path, cfg: &OutOfCoreConfig) -> Result<OutOfCoreReport, DiskPairError> {
    let dataset = DiskLabeledDataset::open(dir)?;
    let full = dataset.view();
    let n = full.features().rows();
    assert!(n >= 2, "reference study needs at least one train and one eval row, got {n} total");
    let eval_rows = cfg.eval_rows.clamp(1, n - 1);
    let train_rows = n - eval_rows;

    // Materialise both splits as owned matrices — the "everything fits"
    // baseline the paged run is measured against.
    let train_m = full.features().slice_rows(0, train_rows).to_matrix();
    let eval_m = full.features().slice_rows(train_rows, n).to_matrix();
    let train = LabeledView::from_parts(train_m.view(), &full.labels()[..train_rows], full.num_classes());
    let eval = LabeledView::from_parts(eval_m.view(), &full.labels()[train_rows..], full.num_classes());

    let estimators = default_estimators();
    let k = shared_table_k(&estimators).max(1);
    let table = snoopy_estimators::shared_neighbor_table(train_m.view(), eval_m.view(), k);
    let estimates = estimate_all_with_table(&estimators, &table, &train, &eval, full.num_classes());
    let min_estimate = estimates.iter().copied().fold(f64::INFINITY, f64::min);

    Ok(OutOfCoreReport {
        table,
        estimates,
        min_estimate,
        paging: PagingStats::default(),
        residency: PagedResidentBytes::default(),
        train_rows,
        eval_rows,
        dim: full.features().cols(),
        num_classes: full.num_classes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::disk::DiskLabeledDataset;
    use snoopy_testutil::{cloud_with_ties, TempDir};

    fn write_dataset(dir: &Path, seed: u64, n: usize, d: usize) {
        let (x, y) = cloud_with_ties(seed, n, d, 4);
        let view = LabeledView::from_parts(x.view(), &y, 4);
        DiskLabeledDataset::write(dir, &view).expect("write dataset");
    }

    #[test]
    fn paged_study_matches_resident_reference_bit_for_bit() {
        let dir = TempDir::new("oocore_core");
        write_dataset(dir.path(), 11, 400, 8);
        // Budget ≈ a quarter of the training payload: forces real paging.
        let cfg = OutOfCoreConfig {
            shard_budget_bytes: (300 * 8 * 4) / 4,
            nlist: 8,
            eval_rows: 100,
            ..OutOfCoreConfig::default()
        };
        let paged = run_oocore_study(dir.path(), &cfg).expect("paged study");
        let resident = run_resident_reference(dir.path(), &cfg).expect("resident study");
        assert_eq!(paged.table, resident.table);
        assert_eq!(paged.estimates, resident.estimates);
        assert_eq!(paged.min_estimate, resident.min_estimate);
        assert!(paged.paging.shards_evicted >= 1, "budget should force eviction: {:?}", paged.paging);
        let rb = paged.residency;
        let allowance = rb.max_shard * (1 + cfg.prefetch_depth);
        assert!(rb.peak <= rb.budget + allowance, "residency contract: {rb:?}");
    }

    #[test]
    fn prefetch_depths_agree_with_the_serial_study() {
        let dir = TempDir::new("oocore_core_pf");
        write_dataset(dir.path(), 17, 400, 8);
        let base = OutOfCoreConfig {
            shard_budget_bytes: (300 * 8 * 4) / 4,
            nlist: 8,
            eval_rows: 100,
            ..OutOfCoreConfig::default()
        };
        let serial = run_oocore_study(dir.path(), &OutOfCoreConfig { prefetch_depth: 0, ..base })
            .expect("serial study");
        for depth in [1usize, 4] {
            let piped = run_oocore_study(dir.path(), &OutOfCoreConfig { prefetch_depth: depth, ..base })
                .expect("piped study");
            assert_eq!(piped.table, serial.table, "depth {depth}");
            assert_eq!(piped.estimates, serial.estimates, "depth {depth}");
            assert_eq!(
                piped.paging.shards_faulted + piped.paging.prefetch_committed,
                serial.paging.shards_faulted,
                "depth {depth}: {:?}",
                piped.paging
            );
        }
    }

    #[test]
    fn corrupt_payload_fails_loud_with_checksum_mismatch() {
        use snoopy_linalg::disk::DiskDatasetError;

        let dir = TempDir::new("oocore_poison");
        write_dataset(dir.path(), 29, 200, 6);
        // Flip one payload byte past the 64-byte header: the file still
        // opens (header intact) but the background re-hash must catch it.
        let path = dir.path().join(snoopy_data::disk::FEATURES_FILE);
        let mut bytes = std::fs::read(&path).expect("read features");
        bytes[64 + 5] ^= 0xff;
        std::fs::write(&path, &bytes).expect("rewrite features");
        let err = run_oocore_study(dir.path(), &OutOfCoreConfig::default())
            .expect_err("poisoned dataset must fail");
        assert!(
            matches!(
                err,
                DiskPairError::Dataset(DiskDatasetError::ChecksumMismatch { expected, actual })
                    if expected != actual
            ),
            "wrong error: {err:?}"
        );
    }

    #[test]
    fn quantized_paged_study_is_still_bit_identical() {
        let dir = TempDir::new("oocore_core_q");
        write_dataset(dir.path(), 23, 300, 6);
        let cfg = OutOfCoreConfig {
            shard_budget_bytes: 4 * 1024,
            nlist: 6,
            eval_rows: 60,
            quantize: true,
            ..OutOfCoreConfig::default()
        };
        let paged = run_oocore_study(dir.path(), &cfg).expect("paged study");
        let resident = run_resident_reference(dir.path(), &cfg).expect("resident study");
        assert_eq!(paged.table, resident.table);
        assert_eq!(paged.estimates, resident.estimates);
    }

    #[test]
    fn eval_rows_is_clamped_to_leave_training_data() {
        let dir = TempDir::new("oocore_clamp");
        write_dataset(dir.path(), 5, 20, 3);
        let cfg = OutOfCoreConfig { eval_rows: 999, nlist: 2, ..OutOfCoreConfig::default() };
        let report = run_oocore_study(dir.path(), &cfg).expect("study");
        assert_eq!(report.train_rows, 1);
        assert_eq!(report.eval_rows, 19);
    }
}
