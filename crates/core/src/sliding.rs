//! Sliding-window feasibility monitoring: windowed BER estimates with drift
//! alarms on top of the study's transformation zoo.
//!
//! A feasibility study answers "is `α_target` realistic?" for the dataset it
//! was shown *at study time*. Deployed tasks keep streaming labelled data,
//! and the data distribution drifts: the study-time answer silently goes
//! stale. [`SlidingWindowStudy`] keeps the answer live. It first runs the
//! ordinary [`FeasibilityStudy`] to pin the study-time estimate, then streams
//! labelled rows through one **eviction-enabled** [`IncrementalTopK`] per
//! transformation ([`IncrementalTopK::with_eviction`]): every slide appends
//! the freshest rows and ages the oldest out, so each state holds the exact
//! 1NN neighbour table of the last `window` rows — bit-identical to a cold
//! build over that window at every position, at sliding cost
//! `O(batch × queries)` plus a re-scan of only the queries whose admission
//! buffers drained, never a rebuild.
//!
//! Per position the monitor aggregates the windowed Cover–Hart BER estimate
//! by the minimum over the zoo — the same rule the study uses — and compares
//! it against the study-time estimate. When the windowed estimate departs by
//! more than a configurable margin (in either direction: the task drifting
//! harder *or* easier both invalidate the study-time answer), it raises a
//! [`DriftAlarm`]. Progress streams per window position through a callback
//! ([`WindowProgress`]), mirroring the per-round streaming of
//! [`FeasibilityService`](crate::service::FeasibilityService).

use crate::config::SnoopyConfig;
use crate::study::{FeasibilityStudy, StudyReport};
use snoopy_data::{Dataset, TaskDataset};
use snoopy_embeddings::Transformation;
use snoopy_estimators::cover_hart_lower_bound;
use snoopy_knn::IncrementalTopK;
use std::time::Instant;

/// Shape of the sliding window and the alarm threshold.
#[derive(Debug, Clone, Copy)]
pub struct SlidingWindowConfig {
    /// Rows kept live per transformation (the window size).
    pub window: usize,
    /// Rows appended per slide.
    pub slide: usize,
    /// Absolute departure of the windowed BER estimate from the study-time
    /// estimate that raises a [`DriftAlarm`].
    pub drift_margin: f64,
    /// Admission-buffer slack handed to [`IncrementalTopK::with_eviction`]:
    /// larger slacks absorb more evictions per query before a re-scan.
    pub slack: usize,
}

impl Default for SlidingWindowConfig {
    fn default() -> Self {
        Self { window: 64, slide: 16, drift_margin: 0.1, slack: 4 }
    }
}

impl SlidingWindowConfig {
    /// Validates the window shape.
    pub fn validate(&self) {
        assert!(self.window >= 1, "the window must keep at least one row");
        assert!(self.slide >= 1, "a slide must append at least one row");
        assert!(self.drift_margin >= 0.0, "the drift margin must be non-negative");
    }
}

/// One per-window-position progress event.
#[derive(Debug, Clone)]
pub struct WindowProgress {
    /// Window position (1-based slide number).
    pub position: usize,
    /// Global index of the oldest live row.
    pub window_start: usize,
    /// Live rows in the window.
    pub window_len: usize,
    /// Name of the transformation achieving the windowed minimum.
    pub leading_transformation: String,
    /// Aggregated windowed BER estimate `min_f R̂_f(window)`.
    pub windowed_ber: f64,
    /// Signed departure from the study-time estimate.
    pub drift: f64,
    /// Whether this position's departure exceeds the margin.
    pub alarm: bool,
    /// Queries whose admission buffers drained and were re-scanned during
    /// this slide's evictions, summed over the zoo.
    pub affected_queries: usize,
    /// Total incremental evaluation work so far (query–row pairs,
    /// post-pruning), summed over the zoo — only ever grows.
    pub eval_pairs: u64,
}

/// A raised drift alarm: the windowed estimate left the study-time margin.
#[derive(Debug, Clone)]
pub struct DriftAlarm {
    /// Window position (1-based) at which the departure was observed.
    pub position: usize,
    /// Transformation achieving the windowed minimum at that position.
    pub leading_transformation: String,
    /// The study-time aggregated estimate.
    pub baseline_ber: f64,
    /// The windowed aggregated estimate.
    pub windowed_ber: f64,
    /// Signed departure `windowed − baseline` (`|drift| > margin`).
    pub drift: f64,
}

/// The full report of a monitored stream.
#[derive(Debug, Clone)]
pub struct SlidingWindowReport {
    /// The study-time report the monitor compared against.
    pub baseline: StudyReport,
    /// Number of window positions streamed.
    pub positions: usize,
    /// The final aggregated windowed BER estimate.
    pub final_windowed_ber: f64,
    /// Final windowed BER estimate per transformation (zoo order).
    pub windowed_per_transformation: Vec<(String, f64)>,
    /// Every position whose windowed estimate left the margin.
    pub alarms: Vec<DriftAlarm>,
    /// Total queries re-scanned across all slides and transformations.
    pub affected_queries: usize,
    /// Total incremental evaluation work across the monitored stream.
    pub eval_pairs: u64,
    /// Wall-clock seconds spent monitoring (baseline study excluded).
    pub monitor_seconds: f64,
}

impl SlidingWindowReport {
    /// Whether any position raised a drift alarm.
    pub fn drifted(&self) -> bool {
        !self.alarms.is_empty()
    }
}

/// The sliding-window monitoring engine.
pub struct SlidingWindowStudy {
    config: SnoopyConfig,
    window: SlidingWindowConfig,
}

impl SlidingWindowStudy {
    /// Creates a monitor with the given study and window configurations.
    pub fn new(config: SnoopyConfig, window: SlidingWindowConfig) -> Self {
        config.validate();
        window.validate();
        Self { config, window }
    }

    /// The study configuration in use.
    pub fn config(&self) -> &SnoopyConfig {
        &self.config
    }

    /// Runs the study-time baseline, then monitors `stream` and returns the
    /// report.
    pub fn run(
        &self,
        task: &TaskDataset,
        zoo: &[Box<dyn Transformation>],
        stream: &Dataset,
    ) -> SlidingWindowReport {
        self.run_with_progress(task, zoo, stream, |_| {})
    }

    /// Like [`SlidingWindowStudy::run`], but streams a [`WindowProgress`]
    /// event per window position.
    pub fn run_with_progress(
        &self,
        task: &TaskDataset,
        zoo: &[Box<dyn Transformation>],
        stream: &Dataset,
        mut on_progress: impl FnMut(WindowProgress),
    ) -> SlidingWindowReport {
        assert!(!zoo.is_empty(), "the transformation zoo must not be empty");
        assert!(!stream.is_empty(), "the monitored stream must not be empty");
        assert_eq!(
            stream.features.cols(),
            task.train.features.cols(),
            "streamed rows must share the task's raw dimensionality"
        );

        let baseline = FeasibilityStudy::new(self.config).run(task, zoo);
        let started = Instant::now();

        // One eviction-enabled incremental state per transformation. The
        // backend is resolved once from the slide size — an eviction-enabled
        // state cannot switch backends mid-stream (its persistent window
        // index needs contiguous coverage).
        let backend = self.config.backend_for(self.window.slide, task.test.len());
        let mut monitors: Vec<IncrementalTopK> = zoo
            .iter()
            .map(|t| {
                IncrementalTopK::new(
                    t.transform(task.test.features_view()),
                    task.test.labels.clone(),
                    self.config.metric,
                    self.config.table_k,
                )
                .with_backend(backend)
                .with_eviction(self.window.slack)
            })
            .collect();

        let mut positions = 0usize;
        let mut alarms = Vec::new();
        let mut affected_total = 0usize;
        let mut windowed: Vec<f64> = vec![1.0; zoo.len()];
        let mut start = 0usize;
        while start < stream.len() {
            let end = (start + self.window.slide).min(stream.len());
            let raw = stream.features_view().slice_rows(start, end);
            let labels = &stream.labels[start..end];
            let mut affected = 0usize;
            for (t, state) in zoo.iter().zip(monitors.iter_mut()) {
                let embedded = t.transform(raw);
                state.append(embedded.view(), labels);
                let over = state.window_len().saturating_sub(self.window.window);
                if over > 0 {
                    affected += state.evict_oldest(over).affected_queries;
                }
            }
            for (state, ber) in monitors.iter().zip(windowed.iter_mut()) {
                *ber = cover_hart_lower_bound(state.error(), task.num_classes);
            }
            start = end;
            positions += 1;
            affected_total += affected;

            let (lead, ber) = windowed
                .iter()
                .enumerate()
                .map(|(i, &b)| (i, b))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("the zoo is non-empty");
            let drift = ber - baseline.ber_estimate;
            let alarm = drift.abs() > self.window.drift_margin;
            if alarm {
                alarms.push(DriftAlarm {
                    position: positions,
                    leading_transformation: zoo[lead].name().to_string(),
                    baseline_ber: baseline.ber_estimate,
                    windowed_ber: ber,
                    drift,
                });
            }
            on_progress(WindowProgress {
                position: positions,
                window_start: monitors[lead].window_start(),
                window_len: monitors[lead].window_len(),
                leading_transformation: zoo[lead].name().to_string(),
                windowed_ber: ber,
                drift,
                alarm,
                affected_queries: affected,
                eval_pairs: monitors.iter().map(IncrementalTopK::folded_pairs).sum(),
            });
        }

        let final_ber = windowed.iter().copied().min_by(|a, b| a.total_cmp(b)).expect("the zoo is non-empty");
        SlidingWindowReport {
            baseline,
            positions,
            final_windowed_ber: final_ber,
            windowed_per_transformation: zoo
                .iter()
                .zip(&windowed)
                .map(|(t, &b)| (t.name().to_string(), b))
                .collect(),
            alarms,
            affected_queries: affected_total,
            eval_pairs: monitors.iter().map(IncrementalTopK::folded_pairs).sum(),
            monitor_seconds: started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_data::registry::{load_clean, SizeScale};
    use snoopy_embeddings::zoo_for_task;
    use snoopy_linalg::Matrix;

    fn config() -> SnoopyConfig {
        SnoopyConfig::with_target(0.85).batch_fraction(0.25)
    }

    fn window_config(window: usize, slide: usize, margin: f64) -> SlidingWindowConfig {
        SlidingWindowConfig { window, slide, drift_margin: margin, slack: 3 }
    }

    /// Re-streaming the task's own training rows keeps the windowed estimate
    /// near the study-time one: no alarm on a drift-free stream.
    #[test]
    fn drift_free_stream_stays_quiet() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let zoo = zoo_for_task(&task, 7);
        let study = SlidingWindowStudy::new(config(), window_config(48, 12, 0.5));
        let mut events = Vec::new();
        let report = study.run_with_progress(&task, &zoo, &task.train, |e| events.push(e));
        assert!(!report.drifted(), "alarms: {:?}", report.alarms);
        assert_eq!(report.positions, task.train.len().div_ceil(12));
        assert_eq!(events.len(), report.positions);
        assert!(events.iter().skip(1).any(|e| e.window_start > 0), "the window must actually slide");
        assert!(events.windows(2).all(|w| w[0].position + 1 == w[1].position), "positions stream in order");
        assert!(events.windows(2).all(|w| w[0].eval_pairs <= w[1].eval_pairs), "work only grows");
        assert_eq!(report.windowed_per_transformation.len(), zoo.len());
        assert!(report.final_windowed_ber <= 1.0);
    }

    /// Shuffled labels destroy the class structure inside the window: the
    /// windowed estimate must leave the study-time margin and alarm.
    #[test]
    fn label_shift_raises_a_drift_alarm() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let zoo = zoo_for_task(&task, 7);
        // Stream the training rows again, but with every label cycled to the
        // next class — a hard concept shift with untouched features.
        let shifted = Dataset::new_clean(
            task.train.features.clone(),
            task.train.labels.iter().map(|&y| (y + 1) % task.num_classes as u32).collect(),
        );
        let study = SlidingWindowStudy::new(config(), window_config(48, 12, 0.1));
        let mut alarm_positions = Vec::new();
        let report = study.run_with_progress(&task, &zoo, &shifted, |e| {
            if e.alarm {
                alarm_positions.push(e.position);
            }
        });
        assert!(report.drifted(), "cycled labels must trip the alarm");
        assert_eq!(
            report.alarms.iter().map(|a| a.position).collect::<Vec<_>>(),
            alarm_positions,
            "alarms in the report mirror the streamed events"
        );
        let last = report.alarms.last().unwrap();
        assert!(last.drift > 0.0, "a label shift makes the task harder");
        assert!(last.windowed_ber > report.baseline.ber_estimate);
    }

    #[test]
    #[should_panic(expected = "stream must not be empty")]
    fn empty_stream_panics() {
        let task = load_clean("sst2", SizeScale::Tiny, 3);
        let zoo = zoo_for_task(&task, 7);
        let empty = Dataset::new_clean(Matrix::zeros(0, task.train.features.cols()), vec![]);
        let _ = SlidingWindowStudy::new(config(), SlidingWindowConfig::default()).run(&task, &zoo, &empty);
    }
}
