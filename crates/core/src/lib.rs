//! # snoopy-core
//!
//! The Snoopy feasibility-study system (the paper's primary contribution).
//!
//! Given a representative, possibly label-noisy dataset and a target accuracy
//! `α_target`, Snoopy estimates a lower bound on the task's Bayes error rate
//! (BER) and answers whether the target is **REALISTIC** or **UNREALISTIC**:
//!
//! 1. a zoo of feature transformations (pre-trained embeddings, PCA, NCA,
//!    raw) is evaluated with the 1NN classifier, streamed over training
//!    batches ([`arm::TransformationArm`]),
//! 2. a successive-halving bandit decides how much inference budget each
//!    transformation deserves (`snoopy-bandit`),
//! 3. each transformation's finite-sample 1NN error is converted to a BER
//!    lower bound with the Cover–Hart correction (Eq. 2) and the estimates
//!    are aggregated **by taking the minimum** (Section IV),
//! 4. the binary signal is `REALISTIC` iff `min_f R̂_f ≤ 1 − α_target`,
//!    accompanied by the additional guidance of Section IV-C: the gap to the
//!    target, per-transformation convergence curves, and a log-linear
//!    extrapolation of how many extra samples would be needed,
//! 5. after label cleaning, the study re-runs incrementally in `O(test)`
//!    ([`incremental::IncrementalStudy`]),
//! 6. many studies are served concurrently — fair round interleaving on the
//!    persistent worker pool, per-tenant embedding caches for warm repeat
//!    requests, per-round progress streaming
//!    ([`service::FeasibilityService`]),
//! 7. deployed tasks keep the answer live: a sliding window over the
//!    labelled stream maintains windowed BER estimates per transformation
//!    through eviction-enabled incremental states and raises a drift alarm
//!    when the windowed estimate departs from the study-time one
//!    ([`sliding::SlidingWindowStudy`]).
//!
//! The [`theory`] module computes the regime quantities `δ_f`, `Δ_f`,
//! `γ_{f,n}` of Section IV-B on synthetic tasks with known BER, reproducing
//! the justification for the minimum aggregation (Figures 14–17).

pub mod arm;
pub mod config;
pub mod guidance;
pub mod incremental;
pub mod oocore;
pub mod service;
pub mod sliding;
pub mod study;
pub mod theory;

pub use config::SnoopyConfig;
pub use guidance::AdditionalGuidance;
pub use incremental::IncrementalStudy;
pub use oocore::{run_oocore_study, run_resident_reference, OutOfCoreConfig, OutOfCoreReport};
pub use service::{FeasibilityService, StudyProgress, StudyRequest};
pub use sliding::{DriftAlarm, SlidingWindowConfig, SlidingWindowReport, SlidingWindowStudy, WindowProgress};
pub use study::{FeasibilityDecision, FeasibilityStudy, StudyReport, TransformationResult};
