//! Property-based tests for the successive-halving scheduler.

use proptest::prelude::*;
use snoopy_bandit::{
    exhaust_all, run_strategy, successive_halving, uniform_allocation, Arm, PrerecordedArm, SelectionStrategy,
};

/// Builds arms with monotonically decreasing, convex-ish curves converging to
/// the given asymptotes (the regime the tangent rule assumes).
fn convergent_arms(asymptotes: &[f64], len: usize) -> Vec<PrerecordedArm> {
    asymptotes
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            let curve: Vec<f64> = (1..=len).map(|t| a + (0.95 - a) * (-(t as f64) / 5.0).exp()).collect();
            PrerecordedArm::new(&format!("arm{i}"), curve)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy respects the total pull budget (up to full exhaustion).
    #[test]
    fn budget_is_respected(
        asymptotes in prop::collection::vec(0.02f64..0.6, 2..12),
        len in 5usize..40,
        budget in 1usize..400,
    ) {
        for strategy in [SelectionStrategy::Uniform, SelectionStrategy::SuccessiveHalving, SelectionStrategy::SuccessiveHalvingTangent] {
            let mut arms = convergent_arms(&asymptotes, len);
            let outcome = run_strategy(strategy, &mut arms, budget);
            let max_possible = asymptotes.len() * len;
            prop_assert!(outcome.total_pulls <= budget.max(asymptotes.len()) .max(1).min(max_possible) + len,
                "{}: spent {} pulls with budget {budget}", strategy.name(), outcome.total_pulls);
            // Curves and pull counters agree.
            for (curve, pulls) in outcome.curves.iter().zip(&outcome.pulls_per_arm) {
                prop_assert_eq!(curve.len(), *pulls);
            }
        }
    }

    /// With a generous budget, successive halving (with or without tangents)
    /// selects the arm with the lowest asymptote, i.e. the same winner as
    /// exhausting everything.
    #[test]
    fn generous_budget_finds_the_true_winner(
        asymptotes in prop::collection::vec(0.02f64..0.6, 2..10),
        len in 10usize..40,
    ) {
        // Make the winner unique by construction.
        let mut asymptotes = asymptotes;
        let winner = asymptotes.len() / 2;
        asymptotes[winner] = 0.001;
        let budget = asymptotes.len() * len * 2;

        let mut reference = convergent_arms(&asymptotes, len);
        let truth = exhaust_all(&mut reference);
        prop_assert_eq!(truth.best_arm, winner);

        for use_tangent in [false, true] {
            let mut arms = convergent_arms(&asymptotes, len);
            let outcome = successive_halving(&mut arms, budget, use_tangent);
            prop_assert_eq!(outcome.best_arm, winner, "tangent={}", use_tangent);
        }
    }

    /// The tangent variant never spends more pulls than plain successive
    /// halving and never changes the selected arm on convergent curves.
    #[test]
    fn tangent_is_a_pure_saving(
        asymptotes in prop::collection::vec(0.02f64..0.6, 2..12),
        len in 8usize..30,
        budget in 20usize..400,
    ) {
        let mut plain_arms = convergent_arms(&asymptotes, len);
        let plain = successive_halving(&mut plain_arms, budget, false);
        let mut tangent_arms = convergent_arms(&asymptotes, len);
        let tangent = successive_halving(&mut tangent_arms, budget, true);
        prop_assert!(tangent.total_pulls <= plain.total_pulls);
        prop_assert_eq!(tangent.best_arm, plain.best_arm);
    }

    /// Uniform allocation distributes pulls evenly (within one pull) among
    /// non-exhausted arms.
    #[test]
    fn uniform_allocation_is_even(
        asymptotes in prop::collection::vec(0.02f64..0.6, 2..10),
        budget in 1usize..200,
    ) {
        let len = 50usize;
        let mut arms = convergent_arms(&asymptotes, len);
        let outcome = uniform_allocation(&mut arms, budget);
        let max = outcome.pulls_per_arm.iter().copied().max().unwrap_or(0);
        let min = outcome.pulls_per_arm.iter().copied().min().unwrap_or(0);
        prop_assert!(max - min <= 1, "pulls {:?}", outcome.pulls_per_arm);
    }

    /// The reported minimum loss never exceeds any arm's final recorded loss.
    #[test]
    fn min_loss_is_the_minimum(
        asymptotes in prop::collection::vec(0.02f64..0.6, 2..10),
        budget in 30usize..300,
    ) {
        let mut arms = convergent_arms(&asymptotes, 25);
        let outcome = successive_halving(&mut arms, budget, true);
        for curve in &outcome.curves {
            if let Some(&last) = curve.last() {
                prop_assert!(outcome.min_loss() <= last + 1e-12);
            }
        }
        // The winner is consistent with the pulls: it received at least as
        // many pulls as any surviving competitor would need to beat it.
        prop_assert!(arms[outcome.best_arm].pulls() > 0);
    }
}
