//! Selection strategies: uniform allocation and successive halving with and
//! without tangent-based early stopping (Algorithms 1 and 2 of the paper's
//! appendix), plus the doubling trick.
//!
//! Every strategy is expressed as a [`StrategyDriver`] — a resumable state
//! machine that emits one [`RoundPlan`] (how many pulls each arm gets this
//! phase) at a time and folds the executed phase back in. The one-shot
//! entry points ([`run_strategy`] and friends) just drive it to completion;
//! the multi-study feasibility service steps many drivers side by side,
//! interleaving their rounds fairly on the shared pool.
//!
//! Arms are independent — pulling one never touches another — so
//! [`execute_round`] runs a phase's busy arms as one task each on the
//! persistent [`snoopy_pool`] work-stealing pool. Scheduling decisions
//! (thresholds, eliminations, survivor ranking) stay on the calling thread,
//! and each arm's own pull sequence is identical to the sequential
//! schedule, so outcomes are deterministic and unchanged at every pool
//! worker count.

use crate::arm::Arm;

/// Which scheduler to use when evaluating the transformation zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Spend the budget evenly across all arms.
    Uniform,
    /// Classic successive halving (Algorithm 1).
    SuccessiveHalving,
    /// Successive halving with tangent breaks (Algorithm 2, the paper's
    /// improved variant).
    SuccessiveHalvingTangent,
    /// Exhaust every arm completely (the naive baseline; also used when the
    /// caller wants full convergence curves for every transformation).
    Exhaustive,
}

impl SelectionStrategy {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SelectionStrategy::Uniform => "uniform",
            SelectionStrategy::SuccessiveHalving => "successive-halving",
            SelectionStrategy::SuccessiveHalvingTangent => "successive-halving-tangent",
            SelectionStrategy::Exhaustive => "exhaustive",
        }
    }
}

/// The result of running a selection strategy over a set of arms.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Index of the selected (best) arm.
    pub best_arm: usize,
    /// Final loss of the selected arm.
    pub best_loss: f64,
    /// Total number of pulls spent across all arms.
    pub total_pulls: usize,
    /// Total simulated cost accumulated across all arms.
    pub total_cost: f64,
    /// Per-arm loss histories: `curves[i][j]` is arm `i`'s loss after its
    /// `j+1`-th pull.
    pub curves: Vec<Vec<f64>>,
    /// Number of pulls spent on each arm.
    pub pulls_per_arm: Vec<usize>,
}

impl SelectionOutcome {
    /// Assembles the outcome from recorded curves and the arms' own pull and
    /// cost ledgers — what the one-shot entry points return, and what the
    /// feasibility service builds after stepping a [`StrategyDriver`] dry.
    pub fn from_state<A: Arm>(curves: Vec<Vec<f64>>, arms: &[A]) -> Self {
        let pulls_per_arm: Vec<usize> = arms.iter().map(|a| a.pulls()).collect();
        let total_pulls = pulls_per_arm.iter().sum();
        let total_cost = arms.iter().map(|a| a.accumulated_cost()).sum();
        // The best arm is the one with the lowest recorded loss (ties resolve
        // to the earliest index, matching `min` over estimators).
        let mut best_arm = 0usize;
        let mut best_loss = f64::INFINITY;
        for (i, curve) in curves.iter().enumerate() {
            let last = curve.last().copied().unwrap_or(f64::INFINITY);
            if last < best_loss {
                best_loss = last;
                best_arm = i;
            }
        }
        Self { best_arm, best_loss, total_pulls, total_cost, curves, pulls_per_arm }
    }

    /// The minimum loss observed across all arms (Snoopy's aggregate).
    pub fn min_loss(&self) -> f64 {
        self.curves.iter().filter_map(|c| c.last()).fold(f64::INFINITY, |a, &b| a.min(b))
    }
}

/// Job size meaning "pull until the arm is exhausted".
const UNTIL_EXHAUSTED: usize = usize::MAX;

/// One phase of scheduled pulls, as decided by a [`StrategyDriver`]: arm `i`
/// receives up to `jobs[i]` pulls (0 skips the arm).
#[derive(Debug, Clone)]
pub struct RoundPlan {
    /// Pulls allotted to each arm this phase.
    pub jobs: Vec<usize>,
    /// `Some(threshold)` switches the phase to the tangent-break pull loop
    /// of Algorithm 2: after every pull the line through the last two
    /// observed losses is extrapolated to the end of the phase, and the arm
    /// stops early — reported as eliminated — if even that optimistic
    /// endpoint is worse than `threshold`.
    pub tangent_threshold: Option<f64>,
}

impl RoundPlan {
    fn plain(jobs: Vec<usize>) -> Self {
        Self { jobs, tangent_threshold: None }
    }
}

/// Executes one phase: arm `i` is pulled up to `plan.jobs[i]` times
/// (stopping early at exhaustion, and at a tangent break when the plan
/// carries a threshold), its observed losses appended to `curves[i]`.
/// Returns which arms the tangent break eliminated (all `false` for plain
/// phases).
///
/// Arms are first told how many of them will run concurrently
/// ([`Arm::on_concurrency`]) so arms with internal parallelism can size
/// their worker share. Each busy arm runs as one task on the persistent
/// [`snoopy_pool`] pool — a queue push, not a thread spawn — and a phase
/// with a single busy arm runs inline, skipping even that. Each arm's own
/// pull sequence is identical to the sequential schedule, so outcomes are
/// deterministic and unchanged at every pool worker count.
pub fn execute_round<A: Arm>(arms: &mut [A], curves: &mut [Vec<f64>], plan: &RoundPlan) -> Vec<bool> {
    let n = arms.len();
    assert_eq!(plan.jobs.len(), n, "one job count per arm required");
    assert_eq!(curves.len(), n, "one curve per arm required");
    let mut eliminated = vec![false; n];
    let busy = arms.iter().zip(&plan.jobs).filter(|(arm, &job)| job > 0 && !arm.exhausted()).count();
    if busy == 0 {
        return eliminated;
    }
    for (arm, &job) in arms.iter_mut().zip(&plan.jobs) {
        if job > 0 && !arm.exhausted() {
            arm.on_concurrency(busy);
        }
    }
    let threshold = plan.tangent_threshold;
    let run_one = |arm: &mut A, curve: &mut Vec<f64>, job: usize, eliminated: &mut bool| {
        let mut done = 0usize;
        while done < job && !arm.exhausted() {
            curve.push(arm.pull());
            done = done.saturating_add(1);
            if let Some(threshold) = threshold {
                if curve.len() >= 2 {
                    let last = curve[curve.len() - 1];
                    let prev = curve[curve.len() - 2];
                    let slope = last - prev; // per pull; negative for improving arms
                    let remaining = (job - done) as f64;
                    let predicted_end = last + slope.min(0.0) * remaining;
                    if predicted_end > threshold {
                        *eliminated = true;
                        break;
                    }
                }
            }
        }
    };
    if busy == 1 {
        for ((arm, (curve, elim)), &job) in
            arms.iter_mut().zip(curves.iter_mut().zip(eliminated.iter_mut())).zip(&plan.jobs)
        {
            if job > 0 && !arm.exhausted() {
                run_one(arm, curve, job, elim);
            }
        }
        return eliminated;
    }
    snoopy_pool::scope(|scope| {
        for ((arm, (curve, elim)), &job) in
            arms.iter_mut().zip(curves.iter_mut().zip(eliminated.iter_mut())).zip(&plan.jobs)
        {
            if job == 0 || arm.exhausted() {
                continue;
            }
            scope.spawn(move || run_one(arm, curve, job, elim));
        }
    });
    eliminated
}

/// Where a successive-halving driver stands: each `Select*` state emits one
/// plan, each `Observe*` state absorbs the executed plan's outcome.
enum HalvingPhase {
    SelectFirstHalf,
    ObserveFirstHalf { rk: usize },
    SelectSecondHalf { rk: usize, threshold: f64 },
    ObserveSecondHalf,
    Finishing,
}

enum DriverState {
    Uniform { spent: usize },
    Exhaustive,
    Halving { use_tangent: bool, rounds: usize, round: usize, survivors: Vec<usize>, phase: HalvingPhase },
    Done,
}

/// A resumable, phase-stepped view of a selection strategy.
///
/// Call [`StrategyDriver::next_plan`] for the next phase of pulls, execute
/// it (normally via [`execute_round`]), then feed the outcome back through
/// [`StrategyDriver::observe`] — strictly alternating. [`run_strategy`] is
/// exactly this loop run to completion on one arm set; the multi-study
/// feasibility service steps one driver per tenant, interleaving their
/// phases round-robin on the shared pool, and gets bit-identical schedules
/// because each driver's decisions depend only on its own arms.
pub struct StrategyDriver {
    budget: usize,
    state: DriverState,
}

impl StrategyDriver {
    /// A driver for `strategy` over `num_arms` arms with a total pull
    /// `budget` (ignored by [`SelectionStrategy::Exhaustive`]).
    pub fn new(strategy: SelectionStrategy, num_arms: usize, budget: usize) -> Self {
        match strategy {
            SelectionStrategy::Uniform => Self { budget, state: DriverState::Uniform { spent: 0 } },
            SelectionStrategy::Exhaustive => Self { budget, state: DriverState::Exhaustive },
            SelectionStrategy::SuccessiveHalving => Self::halving(num_arms, budget, false),
            SelectionStrategy::SuccessiveHalvingTangent => Self::halving(num_arms, budget, true),
        }
    }

    /// A successive-halving driver with an explicit tangent-break switch.
    pub fn halving(num_arms: usize, budget: usize, use_tangent: bool) -> Self {
        if num_arms == 0 {
            return Self { budget, state: DriverState::Done };
        }
        let rounds = (num_arms as f64).log2().ceil() as usize;
        Self {
            budget,
            state: DriverState::Halving {
                use_tangent,
                rounds,
                round: 0,
                survivors: (0..num_arms).collect(),
                phase: HalvingPhase::SelectFirstHalf,
            },
        }
    }

    /// The next phase of pulls, or `None` once the strategy is exhausted.
    /// Every returned plan must be executed and reported back via
    /// [`StrategyDriver::observe`] before the next call.
    ///
    /// # Panics
    /// Panics if the previous plan was not yet observed.
    pub fn next_plan<A: Arm>(&mut self, arms: &[A]) -> Option<RoundPlan> {
        let budget = self.budget;
        match &mut self.state {
            DriverState::Done => None,
            DriverState::Exhaustive => {
                self.state = DriverState::Done;
                Some(RoundPlan::plain(vec![UNTIL_EXHAUSTED; arms.len()]))
            }
            DriverState::Uniform { spent } => {
                // One sweep: a single pull to every still-running arm, in
                // index order when the remaining budget cannot cover all.
                let mut jobs = vec![0usize; arms.len()];
                let mut allocated = 0usize;
                for (job, arm) in jobs.iter_mut().zip(arms.iter()) {
                    if *spent + allocated >= budget {
                        break;
                    }
                    if !arm.exhausted() {
                        *job = 1;
                        allocated += 1;
                    }
                }
                if allocated == 0 {
                    self.state = DriverState::Done;
                    return None;
                }
                *spent += allocated;
                Some(RoundPlan::plain(jobs))
            }
            DriverState::Halving { use_tangent, rounds, round, survivors, phase } => loop {
                match phase {
                    HalvingPhase::SelectFirstHalf => {
                        let l = survivors.len();
                        if *round >= *rounds || l <= 1 {
                            *phase = HalvingPhase::Finishing;
                            continue;
                        }
                        // First half of the survivor list is always pulled
                        // in full; its worst loss defines the threshold for
                        // the tangent breaks (Algorithm 1).
                        let rk = (budget / (l * *rounds)).max(1);
                        let cutoff = (l / 2).max(1);
                        let mut jobs = vec![0usize; arms.len()];
                        for &idx in survivors.iter().take(cutoff) {
                            jobs[idx] = rk;
                        }
                        *phase = HalvingPhase::ObserveFirstHalf { rk };
                        return Some(RoundPlan::plain(jobs));
                    }
                    HalvingPhase::SelectSecondHalf { rk, threshold } => {
                        let cutoff = (survivors.len() / 2).max(1);
                        let mut jobs = vec![0usize; arms.len()];
                        for &idx in survivors.iter().skip(cutoff) {
                            jobs[idx] = *rk;
                        }
                        let tangent_threshold = use_tangent.then_some(*threshold);
                        *phase = HalvingPhase::ObserveSecondHalf;
                        return Some(RoundPlan { jobs, tangent_threshold });
                    }
                    HalvingPhase::Finishing => {
                        // Spend any leftover capacity on the single survivor
                        // so its curve is as long as the budget allows
                        // (matches how Snoopy finishes the minimum
                        // transformation to full convergence).
                        let Some(&winner) = survivors.first() else {
                            self.state = DriverState::Done;
                            return None;
                        };
                        let spent: usize = arms.iter().map(|a| a.pulls()).sum();
                        let mut jobs = vec![0usize; arms.len()];
                        jobs[winner] = budget.saturating_sub(spent);
                        self.state = DriverState::Done;
                        return Some(RoundPlan::plain(jobs));
                    }
                    HalvingPhase::ObserveFirstHalf { .. } | HalvingPhase::ObserveSecondHalf => {
                        panic!("next_plan called before the previous plan was observed");
                    }
                }
            },
        }
    }

    /// Folds the executed phase back in: records the tangent threshold after
    /// a first half, or eliminates and re-ranks survivors after a second
    /// half (`eliminated` as returned by [`execute_round`]). A no-op for
    /// phases that carry no scheduling state (uniform sweeps, the tail).
    pub fn observe<A: Arm>(&mut self, arms: &[A], eliminated: &[bool]) {
        if let DriverState::Halving { round, survivors, phase, .. } = &mut self.state {
            match phase {
                HalvingPhase::ObserveFirstHalf { rk } => {
                    let cutoff = (survivors.len() / 2).max(1);
                    let mut threshold = f64::NEG_INFINITY;
                    for &idx in survivors.iter().take(cutoff) {
                        threshold = threshold.max(arms[idx].current_loss());
                    }
                    *phase = HalvingPhase::SelectSecondHalf { rk: *rk, threshold };
                }
                HalvingPhase::ObserveSecondHalf => {
                    // Keep the better half by current loss (ties by index,
                    // deterministic), minus anything the tangent killed.
                    let l = survivors.len();
                    survivors.retain(|&idx| !eliminated[idx]);
                    survivors.sort_by(|&a, &b| {
                        arms[a].current_loss().total_cmp(&arms[b].current_loss()).then_with(|| a.cmp(&b))
                    });
                    survivors.truncate((l / 2).max(1));
                    *round += 1;
                    *phase = HalvingPhase::SelectFirstHalf;
                }
                _ => {}
            }
        }
    }
}

/// Drives `driver` dry over `arms` and assembles the outcome.
fn drive<A: Arm>(mut driver: StrategyDriver, arms: &mut [A]) -> SelectionOutcome {
    let mut curves = vec![Vec::new(); arms.len()];
    while let Some(plan) = driver.next_plan(arms) {
        let eliminated = execute_round(arms, &mut curves, &plan);
        driver.observe(arms, &eliminated);
    }
    SelectionOutcome::from_state(curves, arms)
}

/// Runs the given strategy with a total pull budget. For
/// [`SelectionStrategy::Exhaustive`] the budget is ignored and every arm is
/// pulled until exhaustion.
pub fn run_strategy<A: Arm>(strategy: SelectionStrategy, arms: &mut [A], budget: usize) -> SelectionOutcome {
    drive(StrategyDriver::new(strategy, arms.len(), budget), arms)
}

/// Pulls every arm until it is exhausted, all arms in parallel.
pub fn exhaust_all<A: Arm>(arms: &mut [A]) -> SelectionOutcome {
    drive(StrategyDriver::new(SelectionStrategy::Exhaustive, arms.len(), 0), arms)
}

/// Uniform allocation baseline: round-robin single pulls until the budget is
/// spent or every arm is exhausted. Each sweep hands one pull to every
/// still-running arm (in index order when the remaining budget cannot cover
/// the full sweep) and executes the sweep's pulls in parallel on the shared
/// pool.
pub fn uniform_allocation<A: Arm>(arms: &mut [A], budget: usize) -> SelectionOutcome {
    drive(StrategyDriver::new(SelectionStrategy::Uniform, arms.len(), budget), arms)
}

/// Successive halving (Algorithm 1), optionally with tangent breaks
/// (Algorithm 2 via `use_tangent = true`).
///
/// The budget `B` is the total number of pulls the scheduler may spend. Arms
/// eliminated in earlier rounds keep their recorded curves, so the caller can
/// still aggregate by taking the minimum over everything observed. Within a
/// round, the surviving arms evaluate concurrently on the shared pool.
pub fn successive_halving<A: Arm>(arms: &mut [A], budget: usize, use_tangent: bool) -> SelectionOutcome {
    drive(StrategyDriver::halving(arms.len(), budget, use_tangent), arms)
}

/// The doubling trick (Jamieson & Talwalkar, §3): run successive halving with
/// budgets `B, 2B, 4B, …` on fresh arms produced by `make_arms` until the
/// selected arm's underlying data is exhausted or `max_doublings` is reached.
/// Returns the outcome of the final run together with the cumulative pull
/// count across all runs.
pub fn doubling_successive_halving<A: Arm>(
    mut make_arms: impl FnMut() -> Vec<A>,
    initial_budget: usize,
    use_tangent: bool,
    max_doublings: usize,
) -> (SelectionOutcome, usize) {
    let mut budget = initial_budget.max(1);
    let mut cumulative_pulls = 0usize;
    let mut last_outcome = None;
    for _ in 0..=max_doublings {
        let mut arms = make_arms();
        let outcome = successive_halving(&mut arms, budget, use_tangent);
        cumulative_pulls += outcome.total_pulls;
        let winner_exhausted = arms[outcome.best_arm].exhausted();
        last_outcome = Some(outcome);
        if winner_exhausted {
            break;
        }
        budget *= 2;
    }
    (last_outcome.expect("at least one successive-halving run"), cumulative_pulls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm::PrerecordedArm;

    /// Arms with geometric convergence to distinct asymptotes; lower
    /// `asymptote` means a better arm.
    fn synthetic_arms(asymptotes: &[f64], len: usize) -> Vec<Box<dyn Arm>> {
        asymptotes
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let curve: Vec<f64> = (1..=len).map(|t| a + (0.9 - a) * (-(t as f64) / 6.0).exp()).collect();
                Box::new(PrerecordedArm::new(&format!("arm{i}"), curve)) as Box<dyn Arm>
            })
            .collect()
    }

    #[test]
    fn exhaustive_finds_true_best_and_spends_everything() {
        let mut arms = synthetic_arms(&[0.3, 0.1, 0.5, 0.2], 20);
        let outcome = exhaust_all(&mut arms);
        assert_eq!(outcome.best_arm, 1);
        assert_eq!(outcome.total_pulls, 80);
        assert!((outcome.min_loss() - outcome.best_loss).abs() < 1e-12);
    }

    #[test]
    fn uniform_allocation_respects_budget() {
        let mut arms = synthetic_arms(&[0.3, 0.1, 0.5, 0.2], 20);
        let outcome = uniform_allocation(&mut arms, 40);
        assert_eq!(outcome.total_pulls, 40);
        assert_eq!(outcome.pulls_per_arm, vec![10, 10, 10, 10]);
        assert_eq!(outcome.best_arm, 1);
    }

    #[test]
    fn uniform_allocation_partial_sweep_hands_pulls_in_index_order() {
        let mut arms = synthetic_arms(&[0.3, 0.1, 0.5], 20);
        let outcome = uniform_allocation(&mut arms, 7);
        assert_eq!(outcome.total_pulls, 7);
        assert_eq!(outcome.pulls_per_arm, vec![3, 2, 2]);
    }

    #[test]
    fn successive_halving_finds_best_arm_with_fewer_pulls() {
        let asymptotes = [0.45, 0.30, 0.10, 0.40, 0.35, 0.25, 0.50, 0.20];
        let len = 40;
        let budget = 8 * len; // enough to exhaust everything if spent naively
        let mut sh_arms = synthetic_arms(&asymptotes, len);
        let sh = successive_halving(&mut sh_arms, budget / 2, false);
        assert_eq!(sh.best_arm, 2, "successive halving should identify the best arm");
        let mut uniform_arms = synthetic_arms(&asymptotes, len);
        let uniform = uniform_allocation(&mut uniform_arms, budget / 2);
        assert!(sh.pulls_per_arm[2] >= uniform.pulls_per_arm[2], "SH concentrates pulls on the winner");
        // SH spends strictly less than exhausting everything.
        assert!(sh.total_pulls < 8 * len);
    }

    #[test]
    fn tangent_variant_selects_the_same_arm_with_at_most_the_same_pulls() {
        let asymptotes = [0.45, 0.30, 0.10, 0.40, 0.35, 0.25, 0.50, 0.20];
        let len = 40;
        let budget = 4 * len;
        let mut plain_arms = synthetic_arms(&asymptotes, len);
        let plain = successive_halving(&mut plain_arms, budget, false);
        let mut tangent_arms = synthetic_arms(&asymptotes, len);
        let tangent = successive_halving(&mut tangent_arms, budget, true);
        assert_eq!(plain.best_arm, tangent.best_arm, "tangent breaks must not change the selection");
        assert!(
            tangent.total_pulls <= plain.total_pulls,
            "tangent breaks should not spend more pulls ({} vs {})",
            tangent.total_pulls,
            plain.total_pulls
        );
    }

    #[test]
    fn single_arm_and_empty_inputs_are_handled() {
        let mut single = synthetic_arms(&[0.2], 10);
        let outcome = successive_halving(&mut single, 100, true);
        assert_eq!(outcome.best_arm, 0);
        assert_eq!(outcome.total_pulls, 10);
        let mut empty: Vec<Box<dyn Arm>> = vec![];
        let outcome = successive_halving(&mut empty, 10, false);
        assert_eq!(outcome.total_pulls, 0);
    }

    #[test]
    fn run_strategy_dispatches() {
        for strategy in [
            SelectionStrategy::Uniform,
            SelectionStrategy::SuccessiveHalving,
            SelectionStrategy::SuccessiveHalvingTangent,
            SelectionStrategy::Exhaustive,
        ] {
            let mut arms = synthetic_arms(&[0.4, 0.1, 0.3], 15);
            let outcome = run_strategy(strategy, &mut arms, 30);
            assert_eq!(outcome.best_arm, 1, "{}", strategy.name());
            assert!(!strategy.name().is_empty());
        }
    }

    #[test]
    fn doubling_trick_eventually_exhausts_the_winner() {
        let asymptotes = [0.4, 0.1, 0.3, 0.2];
        let len = 16;
        let (outcome, cumulative) =
            doubling_successive_halving(|| synthetic_arms(&asymptotes, len), 4, true, 12);
        assert_eq!(outcome.best_arm, 1);
        assert!(outcome.pulls_per_arm[1] >= len, "winner should be fully exhausted");
        assert!(cumulative >= outcome.total_pulls);
    }

    #[test]
    fn cost_accounting_uses_per_pull_costs() {
        let mut arms: Vec<Box<dyn Arm>> = vec![
            Box::new(PrerecordedArm::new("cheap", vec![0.5, 0.4, 0.3]).with_cost(1.0)),
            Box::new(PrerecordedArm::new("pricey", vec![0.6, 0.5, 0.45]).with_cost(10.0)),
        ];
        let outcome = exhaust_all(&mut arms);
        assert!((outcome.total_cost - (3.0 + 30.0)).abs() < 1e-9);
    }
}
