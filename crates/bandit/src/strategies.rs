//! Selection strategies: uniform allocation and successive halving with and
//! without tangent-based early stopping (Algorithms 1 and 2 of the paper's
//! appendix), plus the doubling trick.
//!
//! Arms are independent — pulling one never touches another — so every
//! strategy executes the pulls it has decided on for a round on worker
//! threads (`std::thread::scope`), one per arm. Scheduling decisions
//! (thresholds, eliminations, survivor ranking) stay on the calling thread,
//! and each arm's own pull sequence is identical to the sequential
//! schedule, so outcomes are deterministic and unchanged.

use crate::arm::Arm;

/// Which scheduler to use when evaluating the transformation zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Spend the budget evenly across all arms.
    Uniform,
    /// Classic successive halving (Algorithm 1).
    SuccessiveHalving,
    /// Successive halving with tangent breaks (Algorithm 2, the paper's
    /// improved variant).
    SuccessiveHalvingTangent,
    /// Exhaust every arm completely (the naive baseline; also used when the
    /// caller wants full convergence curves for every transformation).
    Exhaustive,
}

impl SelectionStrategy {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SelectionStrategy::Uniform => "uniform",
            SelectionStrategy::SuccessiveHalving => "successive-halving",
            SelectionStrategy::SuccessiveHalvingTangent => "successive-halving-tangent",
            SelectionStrategy::Exhaustive => "exhaustive",
        }
    }
}

/// The result of running a selection strategy over a set of arms.
#[derive(Debug, Clone)]
pub struct SelectionOutcome {
    /// Index of the selected (best) arm.
    pub best_arm: usize,
    /// Final loss of the selected arm.
    pub best_loss: f64,
    /// Total number of pulls spent across all arms.
    pub total_pulls: usize,
    /// Total simulated cost accumulated across all arms.
    pub total_cost: f64,
    /// Per-arm loss histories: `curves[i][j]` is arm `i`'s loss after its
    /// `j+1`-th pull.
    pub curves: Vec<Vec<f64>>,
    /// Number of pulls spent on each arm.
    pub pulls_per_arm: Vec<usize>,
}

impl SelectionOutcome {
    fn from_state<A: Arm>(curves: Vec<Vec<f64>>, arms: &[A]) -> Self {
        let pulls_per_arm: Vec<usize> = arms.iter().map(|a| a.pulls()).collect();
        let total_pulls = pulls_per_arm.iter().sum();
        let total_cost = arms.iter().map(|a| a.accumulated_cost()).sum();
        // The best arm is the one with the lowest recorded loss (ties resolve
        // to the earliest index, matching `min` over estimators).
        let mut best_arm = 0usize;
        let mut best_loss = f64::INFINITY;
        for (i, curve) in curves.iter().enumerate() {
            let last = curve.last().copied().unwrap_or(f64::INFINITY);
            if last < best_loss {
                best_loss = last;
                best_arm = i;
            }
        }
        Self { best_arm, best_loss, total_pulls, total_cost, curves, pulls_per_arm }
    }

    /// The minimum loss observed across all arms (Snoopy's aggregate).
    pub fn min_loss(&self) -> f64 {
        self.curves.iter().filter_map(|c| c.last()).fold(f64::INFINITY, |a, &b| a.min(b))
    }
}

/// Job size meaning "pull until the arm is exhausted".
const UNTIL_EXHAUSTED: usize = usize::MAX;

/// Executes one scheduling round: arm `i` is pulled up to `jobs[i]` times
/// (stopping early at exhaustion), its observed losses appended to
/// `curves[i]`. `jobs[i] == 0` skips the arm.
///
/// Arms are first told how many of them will run concurrently
/// ([`Arm::on_concurrency`]) so arms with internal parallelism can size
/// their worker share. A round with a single busy arm runs inline — no
/// thread spawn for degenerate rounds or the winner-finishing tail.
fn parallel_round<A: Arm>(arms: &mut [A], curves: &mut [Vec<f64>], jobs: &[usize]) {
    let busy = arms.iter().zip(jobs).filter(|(arm, &job)| job > 0 && !arm.exhausted()).count();
    if busy == 0 {
        return;
    }
    for (arm, &job) in arms.iter_mut().zip(jobs) {
        if job > 0 && !arm.exhausted() {
            arm.on_concurrency(busy);
        }
    }
    let run_one = |arm: &mut A, curve: &mut Vec<f64>, job: usize| {
        let mut done = 0usize;
        while done < job && !arm.exhausted() {
            curve.push(arm.pull());
            done = done.saturating_add(1);
        }
    };
    if busy == 1 {
        for ((arm, curve), &job) in arms.iter_mut().zip(curves.iter_mut()).zip(jobs) {
            if job > 0 && !arm.exhausted() {
                run_one(arm, curve, job);
            }
        }
        return;
    }
    std::thread::scope(|scope| {
        for ((arm, curve), &job) in arms.iter_mut().zip(curves.iter_mut()).zip(jobs) {
            if job == 0 || arm.exhausted() {
                continue;
            }
            scope.spawn(move || run_one(arm, curve, job));
        }
    });
}

/// Runs the given strategy with a total pull budget. For
/// [`SelectionStrategy::Exhaustive`] the budget is ignored and every arm is
/// pulled until exhaustion.
pub fn run_strategy<A: Arm>(strategy: SelectionStrategy, arms: &mut [A], budget: usize) -> SelectionOutcome {
    match strategy {
        SelectionStrategy::Uniform => uniform_allocation(arms, budget),
        SelectionStrategy::SuccessiveHalving => successive_halving(arms, budget, false),
        SelectionStrategy::SuccessiveHalvingTangent => successive_halving(arms, budget, true),
        SelectionStrategy::Exhaustive => exhaust_all(arms),
    }
}

/// Pulls every arm until it is exhausted, all arms in parallel.
pub fn exhaust_all<A: Arm>(arms: &mut [A]) -> SelectionOutcome {
    let mut curves = vec![Vec::new(); arms.len()];
    let jobs = vec![UNTIL_EXHAUSTED; arms.len()];
    parallel_round(arms, &mut curves, &jobs);
    SelectionOutcome::from_state(curves, arms)
}

/// Uniform allocation baseline: round-robin single pulls until the budget is
/// spent or every arm is exhausted. Each sweep hands one pull to every
/// still-running arm (in index order when the remaining budget cannot cover
/// the full sweep) and executes the sweep's pulls in parallel.
///
/// A sweep costs one thread spawn per arm; that is paid deliberately because
/// the production arms (transformation pulls: batch inference + a streamed
/// 1NN update) dwarf the ~10 µs spawn cost. Replaying nanosecond-scale
/// pre-recorded arms through this path measures mostly spawn overhead —
/// bench accordingly.
pub fn uniform_allocation<A: Arm>(arms: &mut [A], budget: usize) -> SelectionOutcome {
    let mut curves = vec![Vec::new(); arms.len()];
    let mut spent = 0usize;
    loop {
        let mut jobs = vec![0usize; arms.len()];
        let mut allocated = 0usize;
        for (job, arm) in jobs.iter_mut().zip(arms.iter()) {
            if spent + allocated >= budget {
                break;
            }
            if !arm.exhausted() {
                *job = 1;
                allocated += 1;
            }
        }
        if allocated == 0 {
            break;
        }
        parallel_round(arms, &mut curves, &jobs);
        spent += allocated;
    }
    SelectionOutcome::from_state(curves, arms)
}

/// Successive halving (Algorithm 1), optionally with tangent breaks
/// (Algorithm 2 via `use_tangent = true`).
///
/// The budget `B` is the total number of pulls the scheduler may spend. Arms
/// eliminated in earlier rounds keep their recorded curves, so the caller can
/// still aggregate by taking the minimum over everything observed. Within a
/// round, the surviving arms evaluate concurrently on worker threads.
pub fn successive_halving<A: Arm>(arms: &mut [A], budget: usize, use_tangent: bool) -> SelectionOutcome {
    let n = arms.len();
    let mut curves = vec![Vec::new(); n];
    if n == 0 {
        return SelectionOutcome {
            best_arm: 0,
            best_loss: f64::INFINITY,
            total_pulls: 0,
            total_cost: 0.0,
            curves,
            pulls_per_arm: vec![],
        };
    }
    if n == 1 {
        // Degenerate case: spend the whole budget on the single arm.
        let jobs = vec![budget];
        parallel_round(arms, &mut curves, &jobs);
        return SelectionOutcome::from_state(curves, arms);
    }

    let rounds = (n as f64).log2().ceil() as usize;
    let mut survivors: Vec<usize> = (0..n).collect();
    for _round in 0..rounds {
        let l = survivors.len();
        if l <= 1 {
            break;
        }
        let rk = (budget / (l * rounds)).max(1);

        // First half of the survivor list is always pulled in full (on worker
        // threads); its worst loss defines the threshold for the tangent
        // breaks (Algorithm 1).
        let cutoff = (l / 2).max(1);
        let mut jobs = vec![0usize; n];
        for &idx in survivors.iter().take(cutoff) {
            jobs[idx] = rk;
        }
        parallel_round(arms, &mut curves, &jobs);
        let mut threshold = f64::NEG_INFINITY;
        for &idx in survivors.iter().take(cutoff) {
            threshold = threshold.max(arms[idx].current_loss());
        }

        let mut eliminated_by_tangent = vec![false; n];
        if use_tangent {
            // Algorithm 2: after every pull, extrapolate the tangent (the
            // line through the last two observed losses) to the end of the
            // round; if even that optimistic value is worse than the first
            // half's threshold, stop pulling this arm. Each arm's decision
            // depends only on its own curve and the fixed threshold, so the
            // second half also runs on worker threads.
            let in_second_half: Vec<bool> = {
                let mut flags = vec![false; n];
                for &idx in survivors.iter().skip(cutoff) {
                    flags[idx] = true;
                }
                flags
            };
            let busy = in_second_half.iter().filter(|&&f| f).count();
            for (arm, &selected) in arms.iter_mut().zip(in_second_half.iter()) {
                if selected {
                    arm.on_concurrency(busy.max(1));
                }
            }
            let tangent_pulls = |arm: &mut A, curve: &mut Vec<f64>, eliminated: &mut bool| {
                for step in 0..rk {
                    if arm.exhausted() {
                        break;
                    }
                    curve.push(arm.pull());
                    if curve.len() >= 2 {
                        let last = curve[curve.len() - 1];
                        let prev = curve[curve.len() - 2];
                        let slope = last - prev; // per pull; negative for improving arms
                        let remaining = (rk - step - 1) as f64;
                        let predicted_end = last + slope.min(0.0) * remaining;
                        if predicted_end > threshold {
                            *eliminated = true;
                            break;
                        }
                    }
                }
            };
            let selected = arms
                .iter_mut()
                .zip(curves.iter_mut())
                .zip(eliminated_by_tangent.iter_mut())
                .zip(in_second_half.iter())
                .filter(|(_, &selected)| selected);
            if busy <= 1 {
                // A lone second-half arm runs inline: no spawn/join round trip.
                for (((arm, curve), eliminated), _) in selected {
                    tangent_pulls(arm, curve, eliminated);
                }
            } else {
                std::thread::scope(|scope| {
                    for (((arm, curve), eliminated), _) in selected {
                        scope.spawn(|| tangent_pulls(arm, curve, eliminated));
                    }
                });
            }
        } else {
            let mut jobs = vec![0usize; n];
            for &idx in survivors.iter().skip(cutoff) {
                jobs[idx] = rk;
            }
            parallel_round(arms, &mut curves, &jobs);
        }

        // Keep the better half by current loss (ties by index, deterministic).
        survivors.retain(|&idx| !eliminated_by_tangent[idx]);
        survivors.sort_by(|&a, &b| {
            arms[a].current_loss().total_cmp(&arms[b].current_loss()).then_with(|| a.cmp(&b))
        });
        survivors.truncate((l / 2).max(1));
    }

    // Spend any leftover capacity on the single survivor so that its curve is
    // as long as the budget allows (matches how Snoopy finishes the minimum
    // transformation to full convergence).
    if let Some(&winner) = survivors.first() {
        let spent: usize = arms.iter().map(|a| a.pulls()).sum();
        let remaining = budget.saturating_sub(spent);
        let mut jobs = vec![0usize; n];
        jobs[winner] = remaining;
        parallel_round(arms, &mut curves, &jobs);
    }

    SelectionOutcome::from_state(curves, arms)
}

/// The doubling trick (Jamieson & Talwalkar, §3): run successive halving with
/// budgets `B, 2B, 4B, …` on fresh arms produced by `make_arms` until the
/// selected arm's underlying data is exhausted or `max_doublings` is reached.
/// Returns the outcome of the final run together with the cumulative pull
/// count across all runs.
pub fn doubling_successive_halving<A: Arm>(
    mut make_arms: impl FnMut() -> Vec<A>,
    initial_budget: usize,
    use_tangent: bool,
    max_doublings: usize,
) -> (SelectionOutcome, usize) {
    let mut budget = initial_budget.max(1);
    let mut cumulative_pulls = 0usize;
    let mut last_outcome = None;
    for _ in 0..=max_doublings {
        let mut arms = make_arms();
        let outcome = successive_halving(&mut arms, budget, use_tangent);
        cumulative_pulls += outcome.total_pulls;
        let winner_exhausted = arms[outcome.best_arm].exhausted();
        last_outcome = Some(outcome);
        if winner_exhausted {
            break;
        }
        budget *= 2;
    }
    (last_outcome.expect("at least one successive-halving run"), cumulative_pulls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arm::PrerecordedArm;

    /// Arms with geometric convergence to distinct asymptotes; lower
    /// `asymptote` means a better arm.
    fn synthetic_arms(asymptotes: &[f64], len: usize) -> Vec<Box<dyn Arm>> {
        asymptotes
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let curve: Vec<f64> = (1..=len).map(|t| a + (0.9 - a) * (-(t as f64) / 6.0).exp()).collect();
                Box::new(PrerecordedArm::new(&format!("arm{i}"), curve)) as Box<dyn Arm>
            })
            .collect()
    }

    #[test]
    fn exhaustive_finds_true_best_and_spends_everything() {
        let mut arms = synthetic_arms(&[0.3, 0.1, 0.5, 0.2], 20);
        let outcome = exhaust_all(&mut arms);
        assert_eq!(outcome.best_arm, 1);
        assert_eq!(outcome.total_pulls, 80);
        assert!((outcome.min_loss() - outcome.best_loss).abs() < 1e-12);
    }

    #[test]
    fn uniform_allocation_respects_budget() {
        let mut arms = synthetic_arms(&[0.3, 0.1, 0.5, 0.2], 20);
        let outcome = uniform_allocation(&mut arms, 40);
        assert_eq!(outcome.total_pulls, 40);
        assert_eq!(outcome.pulls_per_arm, vec![10, 10, 10, 10]);
        assert_eq!(outcome.best_arm, 1);
    }

    #[test]
    fn uniform_allocation_partial_sweep_hands_pulls_in_index_order() {
        let mut arms = synthetic_arms(&[0.3, 0.1, 0.5], 20);
        let outcome = uniform_allocation(&mut arms, 7);
        assert_eq!(outcome.total_pulls, 7);
        assert_eq!(outcome.pulls_per_arm, vec![3, 2, 2]);
    }

    #[test]
    fn successive_halving_finds_best_arm_with_fewer_pulls() {
        let asymptotes = [0.45, 0.30, 0.10, 0.40, 0.35, 0.25, 0.50, 0.20];
        let len = 40;
        let budget = 8 * len; // enough to exhaust everything if spent naively
        let mut sh_arms = synthetic_arms(&asymptotes, len);
        let sh = successive_halving(&mut sh_arms, budget / 2, false);
        assert_eq!(sh.best_arm, 2, "successive halving should identify the best arm");
        let mut uniform_arms = synthetic_arms(&asymptotes, len);
        let uniform = uniform_allocation(&mut uniform_arms, budget / 2);
        assert!(sh.pulls_per_arm[2] >= uniform.pulls_per_arm[2], "SH concentrates pulls on the winner");
        // SH spends strictly less than exhausting everything.
        assert!(sh.total_pulls < 8 * len);
    }

    #[test]
    fn tangent_variant_selects_the_same_arm_with_at_most_the_same_pulls() {
        let asymptotes = [0.45, 0.30, 0.10, 0.40, 0.35, 0.25, 0.50, 0.20];
        let len = 40;
        let budget = 4 * len;
        let mut plain_arms = synthetic_arms(&asymptotes, len);
        let plain = successive_halving(&mut plain_arms, budget, false);
        let mut tangent_arms = synthetic_arms(&asymptotes, len);
        let tangent = successive_halving(&mut tangent_arms, budget, true);
        assert_eq!(plain.best_arm, tangent.best_arm, "tangent breaks must not change the selection");
        assert!(
            tangent.total_pulls <= plain.total_pulls,
            "tangent breaks should not spend more pulls ({} vs {})",
            tangent.total_pulls,
            plain.total_pulls
        );
    }

    #[test]
    fn single_arm_and_empty_inputs_are_handled() {
        let mut single = synthetic_arms(&[0.2], 10);
        let outcome = successive_halving(&mut single, 100, true);
        assert_eq!(outcome.best_arm, 0);
        assert_eq!(outcome.total_pulls, 10);
        let mut empty: Vec<Box<dyn Arm>> = vec![];
        let outcome = successive_halving(&mut empty, 10, false);
        assert_eq!(outcome.total_pulls, 0);
    }

    #[test]
    fn run_strategy_dispatches() {
        for strategy in [
            SelectionStrategy::Uniform,
            SelectionStrategy::SuccessiveHalving,
            SelectionStrategy::SuccessiveHalvingTangent,
            SelectionStrategy::Exhaustive,
        ] {
            let mut arms = synthetic_arms(&[0.4, 0.1, 0.3], 15);
            let outcome = run_strategy(strategy, &mut arms, 30);
            assert_eq!(outcome.best_arm, 1, "{}", strategy.name());
            assert!(!strategy.name().is_empty());
        }
    }

    #[test]
    fn doubling_trick_eventually_exhausts_the_winner() {
        let asymptotes = [0.4, 0.1, 0.3, 0.2];
        let len = 16;
        let (outcome, cumulative) =
            doubling_successive_halving(|| synthetic_arms(&asymptotes, len), 4, true, 12);
        assert_eq!(outcome.best_arm, 1);
        assert!(outcome.pulls_per_arm[1] >= len, "winner should be fully exhausted");
        assert!(cumulative >= outcome.total_pulls);
    }

    #[test]
    fn cost_accounting_uses_per_pull_costs() {
        let mut arms: Vec<Box<dyn Arm>> = vec![
            Box::new(PrerecordedArm::new("cheap", vec![0.5, 0.4, 0.3]).with_cost(1.0)),
            Box::new(PrerecordedArm::new("pricey", vec![0.6, 0.5, 0.45]).with_cost(10.0)),
        ];
        let outcome = exhaust_all(&mut arms);
        assert!((outcome.total_cost - (3.0 + 30.0)).abs() < 1e-9);
    }
}
