//! # snoopy-bandit
//!
//! Non-stochastic best-arm identification for Snoopy's embedding selection
//! (Section V of the paper).
//!
//! Each feature transformation is an *arm*; pulling an arm means feeding one
//! more batch of training samples to its streamed 1NN evaluator and reading
//! off the updated test error (the arm's *loss*). Because inference over the
//! large pre-trained models dominates the cost, the scheduler's job is to
//! spend as few pulls as possible on transformations that will clearly not
//! yield the minimum estimate.
//!
//! Implemented strategies:
//!
//! * [`strategies::uniform_allocation`] — the baseline from Jamieson &
//!   Talwalkar that spreads the budget evenly,
//! * [`strategies::successive_halving`] — Algorithm 1 of the paper's
//!   appendix (classic successive halving),
//! * successive halving **with tangent breaks** — Algorithm 2: a tangent
//!   through the last two points of the convergence curve lower-bounds the
//!   error an arm can reach by the end of the round (convergence curves are
//!   decreasing and convex on average); arms whose bound is already worse
//!   than half the field stop pulling early,
//! * [`strategies::doubling_successive_halving`] — the doubling trick of
//!   Jamieson & Talwalkar §3 that removes the dependence on an initial
//!   budget.

pub mod arm;
pub mod strategies;

pub use arm::{Arm, PrerecordedArm, PullLedger};
pub use strategies::{
    doubling_successive_halving, execute_round, exhaust_all, run_strategy, successive_halving,
    uniform_allocation, RoundPlan, SelectionOutcome, SelectionStrategy, StrategyDriver,
};
