//! The arm abstraction pulled by the selection strategies, plus the shared
//! pull/cost bookkeeping every concrete arm reuses.

/// A non-stochastic bandit arm.
///
/// One *pull* consumes one unit of budget (for Snoopy: one training batch fed
/// to the streamed 1NN evaluator plus the inference cost of embedding that
/// batch) and returns the arm's current loss (the 1NN test error). Losses are
/// assumed to (noisily) decrease and converge as more budget is spent.
///
/// Arms are `Send` so the strategies can evaluate independent arms on worker
/// threads.
pub trait Arm: Send {
    /// A short identifier (the transformation name for Snoopy arms).
    fn name(&self) -> &str;

    /// Performs one pull and returns the loss after it.
    ///
    /// Pulling an exhausted arm must be a no-op returning the final loss.
    fn pull(&mut self) -> f64;

    /// Number of pulls performed so far.
    fn pulls(&self) -> usize;

    /// Whether the arm has consumed all of its underlying data.
    fn exhausted(&self) -> bool;

    /// The most recent loss (1.0 before the first pull by convention).
    fn current_loss(&self) -> f64;

    /// Cost of a single pull in simulated seconds (inference + 1NN update).
    /// Used for the runtime accounting of Figure 12; defaults to 1.
    fn cost_per_pull(&self) -> f64 {
        1.0
    }

    /// Total simulated cost charged so far. Defaults to the ledger-free
    /// approximation `pulls × cost_per_pull`; arms with a [`PullLedger`]
    /// report the exact accumulated figure.
    fn accumulated_cost(&self) -> f64 {
        self.pulls() as f64 * self.cost_per_pull()
    }

    /// True incremental evaluation work performed so far, in query–row
    /// distance pairs: an arm whose pulls *append* to a running kNN state
    /// reports exactly the pairs each batch folded (`O(batch × queries)`,
    /// less under pruning) — not a rebuild-shaped estimate. Strategies and
    /// reports read it for cost accounting; defaults to 0 for arms without
    /// an eval kernel.
    fn eval_pairs(&self) -> u64 {
        0
    }

    /// Notifies the arm how many arms will pull concurrently in the next
    /// round, so arms with internal parallelism can resize their worker
    /// share as the field shrinks. Default: no-op.
    fn on_concurrency(&mut self, active_arms: usize) {
        let _ = active_arms;
    }
}

impl<T: Arm + ?Sized> Arm for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn pull(&mut self) -> f64 {
        (**self).pull()
    }
    fn pulls(&self) -> usize {
        (**self).pulls()
    }
    fn exhausted(&self) -> bool {
        (**self).exhausted()
    }
    fn current_loss(&self) -> f64 {
        (**self).current_loss()
    }
    fn cost_per_pull(&self) -> f64 {
        (**self).cost_per_pull()
    }
    fn accumulated_cost(&self) -> f64 {
        (**self).accumulated_cost()
    }
    fn eval_pairs(&self) -> u64 {
        (**self).eval_pairs()
    }
    fn on_concurrency(&mut self, active_arms: usize) {
        (**self).on_concurrency(active_arms)
    }
}

/// Shared pull/cost bookkeeping for concrete arms.
///
/// Before this ledger existed, every arm implementation (the pre-recorded
/// test arm here and the transformation arm in `snoopy-core`) duplicated the
/// same counters; they now both record through one type, and the strategies
/// read simulated cost from the same place.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PullLedger {
    pulls: usize,
    simulated_cost: f64,
    eval_pairs: u64,
}

impl PullLedger {
    /// A fresh ledger with nothing recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one pull costing `cost` simulated seconds.
    pub fn record_pull(&mut self, cost: f64) {
        self.pulls += 1;
        self.simulated_cost += cost;
    }

    /// Records a charge that is not a pull (e.g. one-off test-set inference).
    pub fn charge(&mut self, cost: f64) {
        self.simulated_cost += cost;
    }

    /// Records incremental evaluation work (query–row distance pairs folded
    /// by a pull). The figure is what [`Arm::eval_pairs`] surfaces to the
    /// strategies: true append cost, not a rebuild estimate.
    pub fn record_eval_pairs(&mut self, pairs: u64) {
        self.eval_pairs += pairs;
    }

    /// Number of pulls recorded.
    pub fn pulls(&self) -> usize {
        self.pulls
    }

    /// Total simulated cost recorded, in seconds.
    pub fn simulated_cost(&self) -> f64 {
        self.simulated_cost
    }

    /// Total evaluation work recorded, in query–row distance pairs.
    pub fn eval_pairs(&self) -> u64 {
        self.eval_pairs
    }
}

/// An arm backed by a pre-recorded loss curve. Used in tests and to replay
/// convergence curves inside the benchmarks without re-running kNN.
#[derive(Debug, Clone)]
pub struct PrerecordedArm {
    name: String,
    curve: Vec<f64>,
    ledger: PullLedger,
    cost_per_pull: f64,
}

impl PrerecordedArm {
    /// Creates an arm that replays `curve` (loss after pull 1, 2, ...).
    ///
    /// # Panics
    /// Panics if the curve is empty.
    pub fn new(name: &str, curve: Vec<f64>) -> Self {
        assert!(!curve.is_empty(), "pre-recorded arm needs at least one loss value");
        Self { name: name.to_string(), curve, ledger: PullLedger::new(), cost_per_pull: 1.0 }
    }

    /// Sets the per-pull cost used for runtime accounting.
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.cost_per_pull = cost;
        self
    }

    /// The full loss curve this arm replays.
    pub fn curve(&self) -> &[f64] {
        &self.curve
    }
}

impl Arm for PrerecordedArm {
    fn name(&self) -> &str {
        &self.name
    }

    fn pull(&mut self) -> f64 {
        if self.ledger.pulls() < self.curve.len() {
            self.ledger.record_pull(self.cost_per_pull);
        }
        self.current_loss()
    }

    fn pulls(&self) -> usize {
        self.ledger.pulls()
    }

    fn exhausted(&self) -> bool {
        self.ledger.pulls() >= self.curve.len()
    }

    fn current_loss(&self) -> f64 {
        if self.ledger.pulls() == 0 {
            1.0
        } else {
            self.curve[self.ledger.pulls() - 1]
        }
    }

    fn cost_per_pull(&self) -> f64 {
        self.cost_per_pull
    }

    fn accumulated_cost(&self) -> f64 {
        self.ledger.simulated_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prerecorded_arm_replays_curve() {
        let mut arm = PrerecordedArm::new("a", vec![0.5, 0.4, 0.3]);
        assert_eq!(arm.current_loss(), 1.0);
        assert!(!arm.exhausted());
        assert_eq!(arm.pull(), 0.5);
        assert_eq!(arm.pull(), 0.4);
        assert_eq!(arm.pull(), 0.3);
        assert!(arm.exhausted());
        // Pulling past the end is a no-op.
        assert_eq!(arm.pull(), 0.3);
        assert_eq!(arm.pulls(), 3);
    }

    #[test]
    fn cost_defaults_and_overrides() {
        let arm = PrerecordedArm::new("a", vec![0.1]);
        assert_eq!(arm.cost_per_pull(), 1.0);
        let pricey = PrerecordedArm::new("b", vec![0.1]).with_cost(2.5);
        assert_eq!(pricey.cost_per_pull(), 2.5);
    }

    #[test]
    fn ledger_tracks_pulls_cost_and_eval_pairs() {
        let mut ledger = PullLedger::new();
        ledger.charge(0.5);
        ledger.record_pull(2.0);
        ledger.record_pull(1.0);
        ledger.record_eval_pairs(120);
        ledger.record_eval_pairs(80);
        assert_eq!(ledger.pulls(), 2);
        assert!((ledger.simulated_cost() - 3.5).abs() < 1e-12);
        assert_eq!(ledger.eval_pairs(), 200);
        // Arms without an eval kernel default to zero.
        assert_eq!(PrerecordedArm::new("a", vec![0.1]).eval_pairs(), 0);
    }

    #[test]
    fn accumulated_cost_reflects_actual_pulls() {
        let mut arm = PrerecordedArm::new("a", vec![0.5, 0.4]).with_cost(3.0);
        arm.pull();
        assert!((arm.accumulated_cost() - 3.0).abs() < 1e-12);
        arm.pull();
        arm.pull(); // no-op past the end: no extra cost
        assert!((arm.accumulated_cost() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one loss")]
    fn rejects_empty_curve() {
        let _ = PrerecordedArm::new("a", vec![]);
    }
}
