//! Property-based tests for the label-noise theory of Section III-A.

use proptest::prelude::*;
use snoopy_data::noise::{
    ber_after_class_dependent_noise_exact, ber_after_uniform_noise, ber_approx_class_dependent,
    ber_bounds_class_dependent, TransitionMatrix,
};
use snoopy_linalg::rng;

fn random_posteriors(seed: u64, n: usize, c: usize) -> Vec<Vec<f64>> {
    let mut r = rng::seeded(seed);
    (0..n).map(|_| rng::simplex_point(&mut r, c, 0.6)).collect()
}

fn clean_ber(posteriors: &[Vec<f64>]) -> f64 {
    posteriors.iter().map(|p| 1.0 - p.iter().cloned().fold(f64::NEG_INFINITY, f64::max)).sum::<f64>()
        / posteriors.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniform and pairwise transition matrices are row-stochastic with the
    /// expected flip rates.
    #[test]
    fn uniform_matrix_flip_rate_matches_lemma(c in 2usize..30, rho in 0.0f64..1.0) {
        let t = TransitionMatrix::uniform(c, rho);
        for y in 0..c {
            let row_sum: f64 = (0..c).map(|y2| t.get(y, y2)).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-9);
            prop_assert!((t.flip_rate(y) - rho * (1.0 - 1.0 / c as f64)).abs() < 1e-9);
        }
        prop_assert!(t.diagonal_dominant() || rho > 1.0 - 1e-9);
    }

    /// Lemma 2.1 is monotone in both the clean BER and the noise level, and
    /// never exceeds the chance level 1 - 1/C.
    #[test]
    fn lemma21_monotone_and_bounded(ber in 0.0f64..0.5, rho in 0.0f64..1.0, c in 2usize..100) {
        let chance = 1.0 - 1.0 / c as f64;
        let noisy = ber_after_uniform_noise(ber.min(chance), rho, c);
        prop_assert!(noisy + 1e-12 >= ber.min(chance));
        prop_assert!(noisy <= chance + 1e-12);
        let noisier = ber_after_uniform_noise(ber.min(chance), (rho + 0.1).min(1.0), c);
        prop_assert!(noisier + 1e-12 >= noisy);
    }

    /// Theorem 3.1 evaluated exactly on random posteriors always lies inside
    /// the Eq. 19 bounds (anchored at any SOTA error above the clean BER) and
    /// the Eq. 20 approximation lies between the bounds too.
    #[test]
    fn theorem31_bounds_contain_exact_value(
        seed in 0u64..1000,
        c in 2usize..8,
        min_flip in 0.0f64..0.2,
        extra_flip in 0.01f64..0.4,
        offdiag_cap in 0.05f64..0.5,
        sota_margin in 0.0f64..0.1,
    ) {
        let posteriors = random_posteriors(seed, 400, c);
        let clean = clean_ber(&posteriors);
        let t = TransitionMatrix::confusion_structured(c, min_flip, (min_flip + extra_flip).min(0.9), offdiag_cap, seed);
        let exact = ber_after_class_dependent_noise_exact(&posteriors, &t);
        let sota = (clean + sota_margin).min(1.0);
        let (lo, hi) = ber_bounds_class_dependent(sota, &t);
        prop_assert!(exact >= lo - 1e-9, "exact {exact} below lower bound {lo}");
        prop_assert!(exact <= hi + 1e-9, "exact {exact} above upper bound {hi}");
        let approx = ber_approx_class_dependent(sota, &t, None);
        prop_assert!(approx >= lo - 1e-9 && approx <= hi + 1e-9);
    }

    /// Applying a transition matrix to labels only produces labels that are
    /// reachable under that matrix (non-zero transition probability).
    #[test]
    fn apply_respects_support(seed in 0u64..1000, c in 2usize..10, rho in 0.0f64..0.9) {
        let t = TransitionMatrix::pairwise(c, rho);
        let labels: Vec<u32> = (0..200).map(|i| (i % c) as u32).collect();
        let mut r = rng::seeded(seed);
        let noisy = t.apply(&labels, &mut r);
        for (&orig, &new) in labels.iter().zip(&noisy) {
            prop_assert!(t.get(orig as usize, new as usize) > 0.0,
                "label {orig} flipped to {new} which has zero transition probability");
        }
    }

    /// The exact Theorem 3.1 value under the identity matrix equals the clean
    /// BER, and under full uniform noise approaches the chance level.
    #[test]
    fn theorem31_endpoints(seed in 0u64..1000, c in 2usize..8) {
        let posteriors = random_posteriors(seed, 300, c);
        let clean = clean_ber(&posteriors);
        let identity = TransitionMatrix::identity(c);
        let same = ber_after_class_dependent_noise_exact(&posteriors, &identity);
        prop_assert!((same - clean).abs() < 1e-9);
        let full = TransitionMatrix::uniform(c, 1.0);
        let noisy = ber_after_class_dependent_noise_exact(&posteriors, &full);
        prop_assert!((noisy - (1.0 - 1.0 / c as f64)).abs() < 1e-9);
    }
}
