//! Core dataset types shared across the workspace.
//!
//! Splits hand out zero-copy [`LabeledView`]s ([`Dataset::view`],
//! [`TaskDataset::train_view`], …) so that estimators, the kNN engine and the
//! feasibility study can consume labelled data without cloning feature
//! matrices.

use snoopy_linalg::{DatasetView, LabeledView, Matrix};

/// The data modality of a task, mirroring the two groups of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modality {
    /// Image-like tasks (MNIST, CIFAR10, CIFAR100 analogues).
    Vision,
    /// Text-like tasks (IMDB, SST2, YELP analogues).
    Text,
}

impl Modality {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Modality::Vision => "vision",
            Modality::Text => "text",
        }
    }
}

/// One labelled split (train or test) of a task.
///
/// `labels` holds the *current* (possibly noisy, possibly partially cleaned)
/// labels the user observes, while `clean_labels` holds the ground truth used
/// by the cleaning simulator and by evaluation code that needs an oracle.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n × d` feature matrix, one sample per row.
    pub features: Matrix,
    /// Observed (possibly noisy) labels, one per row of `features`.
    pub labels: Vec<u32>,
    /// Ground-truth labels, aligned with `labels`.
    pub clean_labels: Vec<u32>,
}

impl Dataset {
    /// Creates a clean split where observed labels equal ground truth.
    pub fn new_clean(features: Matrix, labels: Vec<u32>) -> Self {
        assert_eq!(features.rows(), labels.len(), "feature/label count mismatch");
        Self { clean_labels: labels.clone(), features, labels }
    }

    /// Creates a split with distinct observed and clean labels.
    pub fn new_noisy(features: Matrix, labels: Vec<u32>, clean_labels: Vec<u32>) -> Self {
        assert_eq!(features.rows(), labels.len(), "feature/label count mismatch");
        assert_eq!(labels.len(), clean_labels.len(), "label vectors must be aligned");
        Self { features, labels, clean_labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the split contains no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Zero-copy view over the features.
    pub fn features_view(&self) -> DatasetView<'_> {
        self.features.view()
    }

    /// Zero-copy labelled view over the *observed* labels. The class count is
    /// left unspecified; prefer [`TaskDataset::train_view`] /
    /// [`TaskDataset::test_view`] when the task is at hand.
    pub fn view(&self) -> LabeledView<'_> {
        LabeledView::new(&self.features, &self.labels)
    }

    /// Zero-copy labelled view over the ground-truth labels.
    pub fn clean_view(&self) -> LabeledView<'_> {
        LabeledView::new(&self.features, &self.clean_labels)
    }

    /// Zero-copy labelled view over the first `n` samples (clamped).
    pub fn prefix_view(&self, n: usize) -> LabeledView<'_> {
        self.view().prefix(n)
    }

    /// Fraction of samples whose observed label differs from the ground truth.
    pub fn observed_noise_rate(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        let wrong = self.labels.iter().zip(&self.clean_labels).filter(|(a, b)| a != b).count();
        wrong as f64 / self.labels.len() as f64
    }

    /// Indices whose observed label is still wrong (candidates for cleaning).
    pub fn dirty_indices(&self) -> Vec<usize> {
        self.labels
            .iter()
            .zip(&self.clean_labels)
            .enumerate()
            .filter_map(|(i, (a, b))| if a != b { Some(i) } else { None })
            .collect()
    }

    /// Restores the ground-truth label at `index`, returning `true` if the
    /// label actually changed.
    pub fn clean_label(&mut self, index: usize) -> bool {
        let changed = self.labels[index] != self.clean_labels[index];
        self.labels[index] = self.clean_labels[index];
        changed
    }

    /// Returns a copy restricted to the first `n` samples (used for
    /// convergence curves over growing training-set sizes).
    pub fn take_prefix(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            features: self.features.slice_rows(0, n),
            labels: self.labels[..n].to_vec(),
            clean_labels: self.clean_labels[..n].to_vec(),
        }
    }

    /// Returns a copy restricted to the given row indices.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            clean_labels: indices.iter().map(|&i| self.clean_labels[i]).collect(),
        }
    }

    /// Empirical class priors of the *clean* labels.
    pub fn class_priors(&self, num_classes: usize) -> Vec<f64> {
        let mut counts = vec![0usize; num_classes];
        for &y in &self.clean_labels {
            counts[y as usize] += 1;
        }
        let n = self.len().max(1) as f64;
        counts.into_iter().map(|c| c as f64 / n).collect()
    }
}

/// Metadata describing a task, including the anchors the paper relies on.
#[derive(Debug, Clone)]
pub struct DatasetMeta {
    /// State-of-the-art test error on the clean task (Table I column "SOTA %",
    /// expressed as a fraction in `[0, 1]`). Used as the `s_{X,Y}` anchor of
    /// Theorem 3.1's bounds and by the FineTune baseline.
    pub sota_error: f64,
    /// Ground-truth Bayes error of the clean synthetic task, when known by
    /// construction (always `Some` for generated tasks).
    pub true_ber: Option<f64>,
    /// Data modality.
    pub modality: Modality,
    /// A `raw_dim × latent_dim` linear map that approximately recovers the
    /// generative latent factors from raw features. Simulated "pre-trained"
    /// embeddings blend this recovery signal with noise to model embedding
    /// quality; it is never used by estimators or models directly.
    pub latent_map: Option<Matrix>,
    /// Dimensionality of the generative latent space.
    pub latent_dim: usize,
}

/// A full task: train and test splits plus metadata.
#[derive(Debug, Clone)]
pub struct TaskDataset {
    /// Dataset name (e.g. `"cifar100"`, `"cifar10-aggre"`).
    pub name: String,
    /// Number of classes `C = |Y|`.
    pub num_classes: usize,
    /// Training split.
    pub train: Dataset,
    /// Held-out test split used to evaluate 1NN error and proxy models.
    pub test: Dataset,
    /// Task metadata.
    pub meta: DatasetMeta,
}

impl TaskDataset {
    /// Total number of samples across both splits.
    pub fn total_len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Raw feature dimensionality.
    pub fn raw_dim(&self) -> usize {
        self.train.dim()
    }

    /// Zero-copy labelled view over the training split (observed labels),
    /// annotated with the task's class count.
    pub fn train_view(&self) -> LabeledView<'_> {
        self.train.view().with_classes(self.num_classes)
    }

    /// Zero-copy labelled view over the test split (observed labels),
    /// annotated with the task's class count.
    pub fn test_view(&self) -> LabeledView<'_> {
        self.test.view().with_classes(self.num_classes)
    }

    /// Overall observed label-noise rate across train and test splits.
    pub fn observed_noise_rate(&self) -> f64 {
        let total = self.total_len();
        if total == 0 {
            return 0.0;
        }
        let train_wrong = self.train.observed_noise_rate() * self.train.len() as f64;
        let test_wrong = self.test.observed_noise_rate() * self.test.len() as f64;
        (train_wrong + test_wrong) / total as f64
    }

    /// Best possible accuracy on the *clean* task, `1 - BER`, when the BER is
    /// known by construction.
    pub fn best_possible_accuracy(&self) -> Option<f64> {
        self.meta.true_ber.map(|b| 1.0 - b)
    }

    /// Applies a function to both splits' feature matrices, returning a new
    /// task with transformed features but identical labels and metadata
    /// (minus the latent map, which only refers to raw features).
    pub fn map_features(&self, mut f: impl FnMut(&Matrix) -> Matrix) -> TaskDataset {
        TaskDataset {
            name: self.name.clone(),
            num_classes: self.num_classes,
            train: Dataset {
                features: f(&self.train.features),
                labels: self.train.labels.clone(),
                clean_labels: self.train.clean_labels.clone(),
            },
            test: Dataset {
                features: f(&self.test.features),
                labels: self.test.labels.clone(),
                clean_labels: self.test.clean_labels.clone(),
            },
            meta: DatasetMeta { latent_map: None, ..self.meta.clone() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let features = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        Dataset::new_noisy(features, vec![0, 1, 1, 0], vec![0, 1, 0, 0])
    }

    #[test]
    fn clean_construction_mirrors_labels() {
        let d = Dataset::new_clean(Matrix::zeros(3, 2), vec![0, 1, 2]);
        assert_eq!(d.labels, d.clean_labels);
        assert_eq!(d.observed_noise_rate(), 0.0);
        assert!(d.dirty_indices().is_empty());
    }

    #[test]
    fn noise_rate_and_dirty_indices() {
        let d = toy_dataset();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert!((d.observed_noise_rate() - 0.25).abs() < 1e-12);
        assert_eq!(d.dirty_indices(), vec![2]);
    }

    #[test]
    fn cleaning_restores_ground_truth() {
        let mut d = toy_dataset();
        assert!(d.clean_label(2));
        assert!(!d.clean_label(2), "second clean of same index is a no-op");
        assert_eq!(d.observed_noise_rate(), 0.0);
    }

    #[test]
    fn prefix_and_select_preserve_alignment() {
        let d = toy_dataset();
        let p = d.take_prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.labels, vec![0, 1]);
        let s = d.select(&[3, 0]);
        assert_eq!(s.labels, vec![0, 0]);
        assert_eq!(s.features.row(0), &[3.0, 3.0]);
    }

    #[test]
    fn class_priors_sum_to_one() {
        let d = toy_dataset();
        let priors = d.class_priors(2);
        assert!((priors.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((priors[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn task_accessors() {
        let d = toy_dataset();
        let task = TaskDataset {
            name: "toy".into(),
            num_classes: 2,
            train: d.clone(),
            test: d,
            meta: DatasetMeta {
                sota_error: 0.05,
                true_ber: Some(0.02),
                modality: Modality::Vision,
                latent_map: None,
                latent_dim: 2,
            },
        };
        assert_eq!(task.total_len(), 8);
        assert_eq!(task.raw_dim(), 2);
        assert!((task.observed_noise_rate() - 0.25).abs() < 1e-12);
        assert!((task.best_possible_accuracy().unwrap() - 0.98).abs() < 1e-12);
        let doubled = task.map_features(|m| {
            let mut c = m.clone();
            c.scale(2.0);
            c
        });
        assert_eq!(doubled.train.features.get(1, 1), 2.0);
        assert!(doubled.meta.latent_map.is_none());
    }

    #[test]
    fn views_borrow_the_split_buffers() {
        let d = toy_dataset();
        let v = d.view();
        assert_eq!(v.len(), 4);
        assert_eq!(v.labels(), d.labels.as_slice());
        assert_eq!(v.features().data().as_ptr(), d.features.data().as_ptr());
        assert_eq!(d.clean_view().labels(), d.clean_labels.as_slice());
        assert_eq!(d.prefix_view(2).len(), 2);
        let task = TaskDataset {
            name: "toy".into(),
            num_classes: 2,
            train: d.clone(),
            test: d,
            meta: DatasetMeta {
                sota_error: 0.05,
                true_ber: Some(0.02),
                modality: Modality::Vision,
                latent_map: None,
                latent_dim: 2,
            },
        };
        assert_eq!(task.train_view().num_classes(), 2);
        assert_eq!(task.test_view().len(), 4);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_labels_panic() {
        let _ = Dataset::new_clean(Matrix::zeros(3, 2), vec![0, 1]);
    }
}
