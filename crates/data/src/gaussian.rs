//! Class-conditional Gaussian mixture tasks with a known Bayes error rate.
//!
//! This is the work-horse generator of the reproduction: a `C`-class mixture
//! of isotropic Gaussians in a latent space of dimension `latent_dim`. For
//! such a distribution the posterior `p(y | z)` is available in closed form,
//! so the Bayes error `E_Z[1 - max_y p(y|Z)]` can be computed to arbitrary
//! precision by Monte-Carlo integration, and the class separation can be
//! *calibrated* to hit a requested BER. The vision- and text-like generators
//! in [`crate::vision`] and [`crate::text`] build on the same latent
//! construction.

use rand::rngs::StdRng;
use rand::Rng;
use snoopy_linalg::{rng, stats, Matrix};

/// Specification of a class-conditional isotropic Gaussian mixture.
#[derive(Debug, Clone)]
pub struct GaussianMixtureSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Latent dimensionality.
    pub latent_dim: usize,
    /// Distance scale of the class means (means are drawn from
    /// `N(0, class_sep^2 I)`).
    pub class_sep: f64,
    /// Within-class standard deviation (isotropic).
    pub within_std: f64,
    /// Seed for drawing the class means.
    pub seed: u64,
}

/// A sampled set of class prototypes plus the mixture parameters, from which
/// labelled samples and exact posteriors can be produced.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    /// `C × latent_dim` matrix of class means.
    pub means: Matrix,
    /// Within-class standard deviation.
    pub within_std: f64,
    /// Equal class priors are assumed throughout (as in the paper's noise
    /// lemmas).
    pub num_classes: usize,
}

impl GaussianMixture {
    /// Draws class means according to the spec.
    pub fn from_spec(spec: &GaussianMixtureSpec) -> Self {
        assert!(spec.num_classes >= 2, "need at least two classes");
        assert!(spec.latent_dim >= 1, "latent dimension must be positive");
        assert!(spec.within_std > 0.0, "within-class std must be positive");
        let mut r = rng::seeded(spec.seed);
        let means = Matrix::from_fn(spec.num_classes, spec.latent_dim, |_, _| {
            (rng::normal(&mut r) * spec.class_sep) as f32
        });
        Self { means, within_std: spec.within_std, num_classes: spec.num_classes }
    }

    /// Samples `n` labelled latent points with equal class priors.
    pub fn sample(&self, n: usize, rng_: &mut StdRng) -> (Matrix, Vec<u32>) {
        let d = self.means.cols();
        let mut x = Matrix::zeros(n, d);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let c = rng_.gen_range(0..self.num_classes);
            y.push(c as u32);
            let mean = self.means.row(c);
            let row = x.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v = mean[j] + (rng::normal(rng_) * self.within_std) as f32;
            }
        }
        (x, y)
    }

    /// Exact posterior `p(y | z)` for a latent point under equal priors.
    pub fn posterior(&self, z: &[f32]) -> Vec<f64> {
        let inv_two_var = 1.0 / (2.0 * self.within_std * self.within_std);
        let mut logits: Vec<f64> = (0..self.num_classes)
            .map(|c| -(Matrix::row_sq_dist(z, self.means.row(c)) as f64) * inv_two_var)
            .collect();
        stats::softmax_inplace(&mut logits);
        logits
    }

    /// Bayes-optimal prediction for a latent point.
    pub fn bayes_prediction(&self, z: &[f32]) -> u32 {
        stats::argmax(&self.posterior(z)) as u32
    }

    /// Monte-Carlo estimate of the Bayes error `E[1 - max_y p(y|Z)]`.
    pub fn bayes_error_monte_carlo(&self, n_samples: usize, seed: u64) -> f64 {
        let mut r = rng::seeded(seed);
        let mut acc = 0.0f64;
        for _ in 0..n_samples {
            let c = r.gen_range(0..self.num_classes);
            let mean = self.means.row(c);
            let z: Vec<f32> =
                mean.iter().map(|&m| m + (rng::normal(&mut r) * self.within_std) as f32).collect();
            let post = self.posterior(&z);
            acc += 1.0 - post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        }
        acc / n_samples as f64
    }

    /// Closed-form Bayes error for the two-class case with equal priors:
    /// `Φ(-‖μ₀ − μ₁‖ / (2σ))`.
    pub fn bayes_error_two_class_analytic(&self) -> Option<f64> {
        if self.num_classes != 2 {
            return None;
        }
        let d = Matrix::row_sq_dist(self.means.row(0), self.means.row(1)).sqrt() as f64;
        Some(stats::normal_cdf(-d / (2.0 * self.within_std)))
    }
}

/// Calibrates the class-separation scale so that the mixture's Bayes error is
/// close to `target_ber`, using bisection over the separation and Monte-Carlo
/// BER evaluation. Returns the mixture together with its estimated BER.
///
/// The BER of an isotropic mixture is monotonically decreasing in the
/// separation scale, which makes bisection sound.
pub fn calibrate_to_ber(
    num_classes: usize,
    latent_dim: usize,
    target_ber: f64,
    seed: u64,
    mc_samples: usize,
) -> (GaussianMixture, f64) {
    assert!((0.0..0.9).contains(&target_ber), "target BER must be in [0, 0.9)");
    let make = |sep: f64| {
        GaussianMixture::from_spec(&GaussianMixtureSpec {
            num_classes,
            latent_dim,
            class_sep: sep,
            within_std: 1.0,
            seed,
        })
    };
    // Bracket the target: small separation => BER near (C-1)/C, large => near 0.
    let mut lo = 0.01f64;
    let mut hi = 40.0f64;
    let mut best = make(hi);
    let mut best_ber = best.bayes_error_monte_carlo(mc_samples, seed ^ 0x5eed);
    if target_ber <= 1e-4 {
        return (best, best_ber);
    }
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        let mix = make(mid);
        let ber = mix.bayes_error_monte_carlo(mc_samples, seed ^ 0x5eed);
        best = mix;
        best_ber = ber;
        if ber > target_ber {
            // Too much overlap: increase separation.
            lo = mid;
        } else {
            hi = mid;
        }
        if (ber - target_ber).abs() < 0.002 {
            break;
        }
        // Bisection iterates on [lo, hi]; note ber decreases with separation,
        // so when ber > target we must *raise* the lower end of the bracket.
    }
    (best, best_ber)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(c: usize, sep: f64, seed: u64) -> GaussianMixtureSpec {
        GaussianMixtureSpec { num_classes: c, latent_dim: 8, class_sep: sep, within_std: 1.0, seed }
    }

    #[test]
    fn posterior_is_a_distribution() {
        let mix = GaussianMixture::from_spec(&spec(5, 3.0, 1));
        let mut r = rng::seeded(2);
        let (x, _) = mix.sample(20, &mut r);
        for i in 0..x.rows() {
            let p = mix.posterior(x.row(i));
            assert_eq!(p.len(), 5);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn bayes_error_decreases_with_separation() {
        let close = GaussianMixture::from_spec(&spec(4, 0.5, 3));
        let far = GaussianMixture::from_spec(&spec(4, 6.0, 3));
        let ber_close = close.bayes_error_monte_carlo(4000, 7);
        let ber_far = far.bayes_error_monte_carlo(4000, 7);
        assert!(ber_close > ber_far, "close {ber_close} vs far {ber_far}");
        assert!(ber_far < 0.05);
    }

    #[test]
    fn two_class_analytic_matches_monte_carlo() {
        let mix = GaussianMixture::from_spec(&spec(2, 1.5, 11));
        let analytic = mix.bayes_error_two_class_analytic().unwrap();
        let mc = mix.bayes_error_monte_carlo(60_000, 13);
        assert!((analytic - mc).abs() < 0.01, "analytic {analytic} vs mc {mc}");
        assert!(GaussianMixture::from_spec(&spec(3, 1.5, 1)).bayes_error_two_class_analytic().is_none());
    }

    #[test]
    fn samples_have_equalish_priors_and_right_shape() {
        let mix = GaussianMixture::from_spec(&spec(3, 2.0, 5));
        let mut r = rng::seeded(9);
        let (x, y) = mix.sample(3000, &mut r);
        assert_eq!(x.rows(), 3000);
        assert_eq!(x.cols(), 8);
        let mut counts = [0usize; 3];
        for &l in &y {
            counts[l as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 3000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.05, "class fraction {frac}");
        }
    }

    #[test]
    fn bayes_prediction_beats_noise() {
        let mix = GaussianMixture::from_spec(&spec(4, 4.0, 21));
        let mut r = rng::seeded(22);
        let (x, y) = mix.sample(2000, &mut r);
        let correct = (0..x.rows()).filter(|&i| mix.bayes_prediction(x.row(i)) == y[i]).count();
        let acc = correct as f64 / x.rows() as f64;
        assert!(acc > 0.9, "bayes accuracy {acc}");
    }

    #[test]
    fn calibration_hits_target_ber() {
        for &target in &[0.02f64, 0.10, 0.25] {
            let (_mix, ber) = calibrate_to_ber(10, 12, target, 31, 4000);
            assert!((ber - target).abs() < 0.03, "target {target}, got {ber}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        let _ = GaussianMixture::from_spec(&spec(1, 1.0, 1));
    }
}
