//! Vision-like synthetic task generator.
//!
//! The paper's vision datasets (MNIST, CIFAR10, CIFAR100) are replaced by a
//! generative replica with the same interface: high-dimensional "pixel"
//! vectors whose class structure lives in a low-dimensional latent subspace.
//!
//! Construction:
//!
//! 1. draw a `C`-class Gaussian mixture in a latent space (see
//!    [`crate::gaussian`]), calibrated so that its Bayes error matches the
//!    clean-task SOTA anchor from Table I,
//! 2. embed the latent points into a `raw_dim`-dimensional "pixel" space via
//!    a fixed orthonormal mixing map (columns play the role of visual
//!    patterns/templates),
//! 3. add per-pixel observation noise and a block of pure-nuisance
//!    dimensions, which is what makes the *raw* representation hard for 1NN
//!    and leaves room for "pre-trained embeddings" to shine — exactly the gap
//!    Figures 2 and 18–20 of the paper illustrate.
//!
//! The mixing map is exposed as the task's `latent_map`, which the simulated
//! embedding zoo uses (at varying fidelity) to mimic embeddings that
//! partially recover the semantic latents.

use crate::dataset::{Dataset, DatasetMeta, Modality, TaskDataset};
use crate::gaussian::{calibrate_to_ber, GaussianMixture};
use rand::rngs::StdRng;
use snoopy_linalg::projection::random_orthonormal_map;
use snoopy_linalg::{rng, Matrix};

/// Parameters of a vision-like synthetic task.
#[derive(Debug, Clone)]
pub struct VisionTaskSpec {
    /// Task name.
    pub name: String,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of training samples.
    pub train_size: usize,
    /// Number of test samples.
    pub test_size: usize,
    /// Raw ("pixel") dimensionality.
    pub raw_dim: usize,
    /// Latent dimensionality carrying the class signal.
    pub latent_dim: usize,
    /// Target Bayes error of the clean task (SOTA anchor from Table I).
    pub target_ber: f64,
    /// Published SOTA error for the paper dataset this task mirrors.
    pub sota_error: f64,
    /// Standard deviation of per-pixel observation noise added after mixing.
    pub pixel_noise: f64,
    /// Master seed.
    pub seed: u64,
}

impl VisionTaskSpec {
    /// Reasonable defaults for a quick, small task (useful in tests).
    pub fn small(name: &str, num_classes: usize, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            num_classes,
            train_size: 400,
            test_size: 200,
            raw_dim: 64,
            latent_dim: 8,
            target_ber: 0.05,
            sota_error: 0.05,
            pixel_noise: 0.3,
            seed,
        }
    }
}

/// Generates the task described by `spec`.
pub fn generate_vision_task(spec: &VisionTaskSpec) -> TaskDataset {
    assert!(spec.raw_dim >= spec.latent_dim, "raw_dim must be at least latent_dim");
    let mc = 6_000.max(40 * spec.num_classes);
    let (mixture, achieved_ber) =
        calibrate_to_ber(spec.num_classes, spec.latent_dim, spec.target_ber, spec.seed, mc);

    // Orthonormal mixing of latent directions into pixel space.
    let mixing = random_orthonormal_map(spec.raw_dim, spec.latent_dim, spec.seed ^ 0x00c0_ffee);

    let mut sample_rng = rng::seeded(spec.seed ^ 0xda7a);
    let train = render_split(&mixture, &mixing, spec, spec.train_size, &mut sample_rng);
    let test = render_split(&mixture, &mixing, spec, spec.test_size, &mut sample_rng);

    TaskDataset {
        name: spec.name.clone(),
        num_classes: spec.num_classes,
        train,
        test,
        meta: DatasetMeta {
            sota_error: spec.sota_error,
            true_ber: Some(achieved_ber),
            modality: Modality::Vision,
            latent_map: Some(mixing),
            latent_dim: spec.latent_dim,
        },
    }
}

fn render_split(
    mixture: &GaussianMixture,
    mixing: &Matrix,
    spec: &VisionTaskSpec,
    n: usize,
    sample_rng: &mut StdRng,
) -> Dataset {
    let (latent, labels) = mixture.sample(n, sample_rng);
    // Raw = latent * mixing^T  (n x raw_dim), then add pixel noise.
    let mut raw = latent.matmul(&mixing.transpose());
    for v in raw.data_mut() {
        *v += (rng::normal(sample_rng) * spec.pixel_noise) as f32;
    }
    Dataset::new_clean(raw, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_task_has_requested_shape() {
        let spec = VisionTaskSpec::small("toy-vision", 5, 3);
        let task = generate_vision_task(&spec);
        assert_eq!(task.train.len(), 400);
        assert_eq!(task.test.len(), 200);
        assert_eq!(task.raw_dim(), 64);
        assert_eq!(task.num_classes, 5);
        assert_eq!(task.meta.modality, Modality::Vision);
        assert_eq!(task.meta.latent_dim, 8);
        assert!(task.meta.latent_map.is_some());
        assert_eq!(task.observed_noise_rate(), 0.0, "clean task starts without label noise");
    }

    #[test]
    fn calibrated_ber_is_close_to_target() {
        let mut spec = VisionTaskSpec::small("ber-check", 10, 7);
        spec.target_ber = 0.15;
        let task = generate_vision_task(&spec);
        let ber = task.meta.true_ber.unwrap();
        assert!((ber - 0.15).abs() < 0.04, "ber {ber}");
    }

    #[test]
    fn latent_projection_separates_classes_better_than_chance() {
        let spec = VisionTaskSpec::small("latent-check", 4, 11);
        let task = generate_vision_task(&spec);
        let map = task.meta.latent_map.as_ref().unwrap();
        let latent = task.train.features.matmul(map);
        // Nearest-class-mean accuracy in latent space should be far above chance.
        let c = task.num_classes;
        let d = latent.cols();
        let mut means = vec![vec![0.0f64; d]; c];
        let mut counts = vec![0usize; c];
        for i in 0..latent.rows() {
            let y = task.train.clean_labels[i] as usize;
            counts[y] += 1;
            for (j, m) in means[y].iter_mut().enumerate() {
                *m += latent.get(i, j) as f64;
            }
        }
        for (m, &cnt) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= cnt.max(1) as f64;
            }
        }
        let mut correct = 0usize;
        for i in 0..latent.rows() {
            let mut best = (f64::INFINITY, 0usize);
            for (k, m) in means.iter().enumerate() {
                let dist: f64 = (0..d).map(|j| (latent.get(i, j) as f64 - m[j]).powi(2)).sum();
                if dist < best.0 {
                    best = (dist, k);
                }
            }
            if best.1 == task.train.clean_labels[i] as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / latent.rows() as f64;
        assert!(acc > 0.7, "latent nearest-mean accuracy {acc}");
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let spec = VisionTaskSpec::small("det", 3, 99);
        let a = generate_vision_task(&spec);
        let b = generate_vision_task(&spec);
        assert_eq!(a.train.labels, b.train.labels);
        assert_eq!(a.train.features.data(), b.train.features.data());
    }

    #[test]
    #[should_panic(expected = "raw_dim must be at least latent_dim")]
    fn rejects_raw_dim_smaller_than_latent() {
        let mut spec = VisionTaskSpec::small("bad", 3, 1);
        spec.raw_dim = 4;
        spec.latent_dim = 16;
        let _ = generate_vision_task(&spec);
    }
}
