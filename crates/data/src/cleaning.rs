//! Label-cleaning simulator.
//!
//! In the paper's end-to-end use case (Section VI-D), a user iteratively
//! cleans portions of a noisy dataset until the target accuracy becomes
//! reachable. On the public benchmarks the authors simulate cleaning by
//! restoring the original (pre-pollution) labels; our replicas carry the
//! ground-truth labels alongside the observed ones, so cleaning is the same
//! restoration operation here.

use crate::dataset::TaskDataset;
use rand::rngs::StdRng;
use snoopy_linalg::rng;

/// Where a cleaned sample lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitKind {
    /// Training split.
    Train,
    /// Test split.
    Test,
}

/// A single cleaning action: which split and which row had its label restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleanedLabel {
    /// Split the sample belongs to.
    pub split: SplitKind,
    /// Row index within that split.
    pub index: usize,
    /// Whether the observed label actually changed (it may already have been
    /// correct; the labelling effort is spent either way).
    pub changed: bool,
}

/// Outcome of one cleaning round.
#[derive(Debug, Clone)]
pub struct CleaningReport {
    /// Individual label inspections performed (paid for), in order.
    pub inspected: Vec<CleanedLabel>,
    /// Number of labels whose value actually changed.
    pub changed: usize,
}

impl CleaningReport {
    /// Number of labels inspected (the quantity the user pays for).
    pub fn inspected_count(&self) -> usize {
        self.inspected.len()
    }
}

/// Inspects (and restores) the labels of `count` samples drawn uniformly at
/// random across the train and test splits, mirroring the paper's
/// "clean a fixed portion of the data" action. Samples are drawn without
/// replacement from the pool of *not yet inspected this call* indices;
/// already-clean samples still cost an inspection, as they would for a human
/// annotator.
pub fn clean_random_labels(task: &mut TaskDataset, count: usize, rng_: &mut StdRng) -> CleaningReport {
    let total = task.total_len();
    let count = count.min(total);
    let picks = rng::sample_without_replacement(rng_, total, count);
    let train_len = task.train.len();
    let mut inspected = Vec::with_capacity(count);
    let mut changed = 0usize;
    for pick in picks {
        let (split, index) =
            if pick < train_len { (SplitKind::Train, pick) } else { (SplitKind::Test, pick - train_len) };
        let did_change = match split {
            SplitKind::Train => task.train.clean_label(index),
            SplitKind::Test => task.test.clean_label(index),
        };
        if did_change {
            changed += 1;
        }
        inspected.push(CleanedLabel { split, index, changed: did_change });
    }
    CleaningReport { inspected, changed }
}

/// Cleans a *fraction* of the total dataset size (e.g. `0.01` for the paper's
/// 1 % cleaning step). Returns the report of the round.
pub fn clean_fraction(task: &mut TaskDataset, fraction: f64, rng_: &mut StdRng) -> CleaningReport {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let count = ((task.total_len() as f64) * fraction).round() as usize;
    clean_random_labels(task, count, rng_)
}

/// Fraction of samples (train + test) whose observed label is still wrong —
/// the quantity the end-to-end experiment tracks on the x-axis of Figs. 9/10.
pub fn remaining_noise(task: &TaskDataset) -> f64 {
    task.observed_noise_rate()
}

/// Cleans *targeted* indices (e.g. produced by an active-cleaning heuristic).
/// Out-of-range indices are ignored.
pub fn clean_specific(
    task: &mut TaskDataset,
    train_indices: &[usize],
    test_indices: &[usize],
) -> CleaningReport {
    let mut inspected = Vec::new();
    let mut changed = 0usize;
    for &i in train_indices {
        if i < task.train.len() {
            let did = task.train.clean_label(i);
            changed += usize::from(did);
            inspected.push(CleanedLabel { split: SplitKind::Train, index: i, changed: did });
        }
    }
    for &i in test_indices {
        if i < task.test.len() {
            let did = task.test.clean_label(i);
            changed += usize::from(did);
            inspected.push(CleanedLabel { split: SplitKind::Test, index: i, changed: did });
        }
    }
    CleaningReport { inspected, changed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::NoiseModel;
    use crate::registry::{load_with_noise, SizeScale};

    fn noisy_task(seed: u64) -> TaskDataset {
        load_with_noise("sst2", SizeScale::Tiny, &NoiseModel::Uniform(0.6), seed)
    }

    #[test]
    fn cleaning_everything_removes_all_noise() {
        let mut task = noisy_task(1);
        assert!(task.observed_noise_rate() > 0.1);
        let total = task.total_len();
        let mut r = rng::seeded(2);
        let report = clean_random_labels(&mut task, total, &mut r);
        assert_eq!(report.inspected_count(), total);
        assert_eq!(task.observed_noise_rate(), 0.0);
        assert!(report.changed > 0);
    }

    #[test]
    fn clean_fraction_monotonically_reduces_noise() {
        let mut task = noisy_task(3);
        let mut r = rng::seeded(4);
        let before = remaining_noise(&task);
        let mut last = before;
        for _ in 0..5 {
            clean_fraction(&mut task, 0.1, &mut r);
            let now = remaining_noise(&task);
            assert!(now <= last + 1e-12);
            last = now;
        }
        assert!(last < before);
    }

    #[test]
    fn cleaning_more_than_total_is_clamped() {
        let mut task = noisy_task(5);
        let mut r = rng::seeded(6);
        let total = task.total_len();
        let report = clean_random_labels(&mut task, 10 * total, &mut r);
        assert_eq!(report.inspected_count(), total);
    }

    #[test]
    fn targeted_cleaning_only_touches_requested_rows() {
        let mut task = noisy_task(7);
        let dirty_train = task.train.dirty_indices();
        assert!(!dirty_train.is_empty());
        let target = dirty_train[0];
        let report = clean_specific(&mut task, &[target, 999_999], &[]);
        assert_eq!(report.inspected_count(), 1);
        assert_eq!(report.changed, 1);
        assert_eq!(task.train.labels[target], task.train.clean_labels[target]);
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn fraction_out_of_range_panics() {
        let mut task = noisy_task(8);
        let mut r = rng::seeded(9);
        let _ = clean_fraction(&mut task, 1.5, &mut r);
    }
}
