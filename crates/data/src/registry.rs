//! Dataset registry mirroring Table I of the paper, the CIFAR-N noisy
//! variants of Table II, and a VTAB-like suite of 19 small tasks (Fig. 11).
//!
//! Every entry is a *generative replica*: same number of classes, same
//! train/test proportions (scaled by a [`SizeScale`] so experiments stay
//! laptop-sized), the published SOTA error as the BER calibration target, and
//! a known true BER by construction. See `DESIGN.md` for the substitution
//! rationale.

use crate::dataset::{Modality, TaskDataset};
use crate::noise::{cifar_n_variants, NoiseModel};
use crate::text::{generate_text_task, TextTaskSpec};
use crate::vision::{generate_vision_task, VisionTaskSpec};
use snoopy_linalg::rng;

/// How large the generated replicas are relative to the paper's datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeScale {
    /// Roughly 1/10 of the paper's sample counts. Used by the experiment
    /// harness; CIFAR100 has 5 000 train / 1 000 test samples at this scale.
    Standard,
    /// Roughly 1/50 of the paper's sample counts; fast enough for integration
    /// tests and examples.
    Small,
    /// A few hundred samples with reduced dimensionality; used by unit tests.
    Tiny,
}

impl SizeScale {
    fn divisor(self) -> usize {
        match self {
            SizeScale::Standard => 10,
            SizeScale::Small => 50,
            SizeScale::Tiny => 200,
        }
    }

    fn dim_shrink(self) -> usize {
        match self {
            SizeScale::Standard => 1,
            SizeScale::Small => 2,
            SizeScale::Tiny => 4,
        }
    }
}

/// Static description of a registry dataset (Table I row).
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Canonical lower-case name (`"cifar10"`, `"imdb"`, ...).
    pub name: &'static str,
    /// Data modality.
    pub modality: Modality,
    /// Number of classes.
    pub num_classes: usize,
    /// Training samples in the original dataset.
    pub paper_train: usize,
    /// Test samples in the original dataset.
    pub paper_test: usize,
    /// Published SOTA error (Table I, "SOTA %" as a fraction).
    pub sota_error: f64,
    /// Raw feature dimensionality of the replica at `Standard` scale.
    pub raw_dim: usize,
    /// Latent dimensionality of the replica.
    pub latent_dim: usize,
    /// Expected document length (text tasks only).
    pub doc_length: f64,
}

/// The six Table I datasets.
pub fn table1_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "mnist",
            modality: Modality::Vision,
            num_classes: 10,
            paper_train: 60_000,
            paper_test: 10_000,
            sota_error: 0.0016,
            raw_dim: 256,
            latent_dim: 16,
            doc_length: 0.0,
        },
        DatasetSpec {
            name: "cifar10",
            modality: Modality::Vision,
            num_classes: 10,
            paper_train: 50_000,
            paper_test: 10_000,
            sota_error: 0.0063,
            raw_dim: 512,
            latent_dim: 24,
            doc_length: 0.0,
        },
        DatasetSpec {
            name: "cifar100",
            modality: Modality::Vision,
            num_classes: 100,
            paper_train: 50_000,
            paper_test: 10_000,
            sota_error: 0.0649,
            raw_dim: 512,
            latent_dim: 48,
            doc_length: 0.0,
        },
        DatasetSpec {
            name: "imdb",
            modality: Modality::Text,
            num_classes: 2,
            paper_train: 25_000,
            paper_test: 25_000,
            sota_error: 0.0379,
            raw_dim: 1_000,
            latent_dim: 2,
            doc_length: 120.0,
        },
        DatasetSpec {
            name: "sst2",
            modality: Modality::Text,
            num_classes: 2,
            paper_train: 67_000,
            paper_test: 872,
            sota_error: 0.032,
            raw_dim: 800,
            latent_dim: 2,
            doc_length: 20.0,
        },
        DatasetSpec {
            name: "yelp",
            modality: Modality::Text,
            num_classes: 5,
            paper_train: 500_000,
            paper_test: 50_000,
            sota_error: 0.278,
            raw_dim: 1_200,
            latent_dim: 5,
            doc_length: 80.0,
        },
    ]
}

/// Looks up a Table I spec by name.
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    table1_specs().into_iter().find(|s| s.name == name)
}

impl DatasetSpec {
    /// Train/test sizes at the given scale (never below 64/32 samples, and the
    /// test split is never larger than the train split at reduced scales).
    pub fn sizes(&self, scale: SizeScale) -> (usize, usize) {
        let div = scale.divisor();
        let train = (self.paper_train / div).max(64);
        let test = (self.paper_test / div).clamp(32, train);
        (train, test)
    }

    /// Raw feature dimensionality at the given scale.
    pub fn raw_dim_at(&self, scale: SizeScale) -> usize {
        (self.raw_dim / scale.dim_shrink()).max(self.latent_dim.max(8))
    }

    /// Generates the clean replica task at the given scale.
    pub fn generate(&self, scale: SizeScale, seed: u64) -> TaskDataset {
        let (train_size, test_size) = self.sizes(scale);
        let raw_dim = self.raw_dim_at(scale);
        // The SOTA error anchors the clean-task BER: a strong SOTA implies a
        // low natural BER (Section VI-A of the paper). We target slightly
        // below the SOTA to keep SOTA an upper bound on the BER.
        let target_ber = (self.sota_error * 0.8).min(0.4);
        match self.modality {
            Modality::Vision => generate_vision_task(&VisionTaskSpec {
                name: self.name.to_string(),
                num_classes: self.num_classes,
                train_size,
                test_size,
                raw_dim,
                latent_dim: self.latent_dim,
                target_ber,
                sota_error: self.sota_error,
                pixel_noise: 0.35,
                seed,
            }),
            Modality::Text => generate_text_task(&TextTaskSpec {
                name: self.name.to_string(),
                num_classes: self.num_classes,
                train_size,
                test_size,
                vocab_size: raw_dim,
                doc_length: self.doc_length,
                target_ber,
                sota_error: self.sota_error,
                seed,
            }),
        }
    }
}

/// Generates a clean Table I replica by name.
///
/// # Panics
/// Panics if the name is unknown.
pub fn load_clean(name: &str, scale: SizeScale, seed: u64) -> TaskDataset {
    spec_by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}")).generate(scale, seed)
}

/// Generates a Table I replica and corrupts its labels (train and test, as in
/// the paper's synthetic-noise experiments) with the given noise model.
pub fn load_with_noise(name: &str, scale: SizeScale, noise: &NoiseModel, seed: u64) -> TaskDataset {
    let mut task = load_clean(name, scale, seed);
    apply_noise(&mut task, noise, seed ^ 0x401e);
    task
}

/// Corrupts the labels of both splits in place according to `noise`.
pub fn apply_noise(task: &mut TaskDataset, noise: &NoiseModel, seed: u64) {
    let mut r = rng::seeded(seed);
    task.train.labels = noise.apply(&task.train.clean_labels, task.num_classes, &mut r);
    task.test.labels = noise.apply(&task.test.clean_labels, task.num_classes, &mut r);
}

/// Generates one of the CIFAR-N replicas of Table II (e.g.
/// `"cifar10-aggre"`, `"cifar100-noisy"`).
///
/// # Panics
/// Panics if the variant name is unknown.
pub fn load_cifar_n(variant: &str, scale: SizeScale, seed: u64) -> TaskDataset {
    let v = cifar_n_variants()
        .into_iter()
        .find(|v| v.name == variant)
        .unwrap_or_else(|| panic!("unknown CIFAR-N variant {variant}"));
    let mut task = load_clean(v.base, scale, seed);
    task.name = v.name.clone();
    apply_noise(&mut task, &NoiseModel::ClassDependent(v.matrix), seed ^ 0xc1fa);
    task
}

/// All CIFAR-N variant names.
pub fn cifar_n_names() -> Vec<String> {
    cifar_n_variants().into_iter().map(|v| v.name).collect()
}

/// Generates the VTAB-like suite of Fig. 11: 19 small (1 000 training sample)
/// vision tasks of varying difficulty and class count, intended to probe
/// small-data behaviour and embedding mismatch.
pub fn vtab_suite(seed: u64) -> Vec<TaskDataset> {
    let class_counts = [2usize, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 20, 10, 5, 4, 8, 6, 3, 2];
    let difficulty = [
        0.02, 0.05, 0.08, 0.12, 0.03, 0.15, 0.20, 0.10, 0.25, 0.06, 0.18, 0.30, 0.02, 0.22, 0.09, 0.14, 0.28,
        0.07, 0.35,
    ];
    class_counts
        .iter()
        .zip(&difficulty)
        .enumerate()
        .map(|(i, (&c, &ber))| {
            generate_vision_task(&VisionTaskSpec {
                name: format!("vtab-{i:02}"),
                num_classes: c,
                train_size: 1_000,
                test_size: 300,
                raw_dim: 128,
                latent_dim: 12,
                target_ber: ber,
                sota_error: ber + 0.02,
                pixel_noise: 0.35,
                seed: seed.wrapping_add(i as u64 * 77),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_datasets_with_paper_stats() {
        let specs = table1_specs();
        assert_eq!(specs.len(), 6);
        let cifar100 = spec_by_name("cifar100").unwrap();
        assert_eq!(cifar100.num_classes, 100);
        assert_eq!(cifar100.paper_train, 50_000);
        assert!((cifar100.sota_error - 0.0649).abs() < 1e-12);
        let yelp = spec_by_name("yelp").unwrap();
        assert_eq!(yelp.num_classes, 5);
        assert_eq!(yelp.modality, Modality::Text);
        assert!(spec_by_name("imagenet").is_none());
    }

    #[test]
    fn sizes_scale_down_sensibly() {
        let spec = spec_by_name("yelp").unwrap();
        let (train_std, test_std) = spec.sizes(SizeScale::Standard);
        let (train_tiny, test_tiny) = spec.sizes(SizeScale::Tiny);
        assert_eq!(train_std, 50_000);
        assert_eq!(test_std, 5_000);
        assert!(train_tiny < train_std);
        assert!(test_tiny <= train_tiny);
        assert!(test_tiny >= 32);
    }

    #[test]
    fn tiny_generation_produces_consistent_task() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        assert_eq!(task.num_classes, 10);
        assert_eq!(task.name, "mnist");
        assert!(task.train.len() >= 64);
        assert!(task.meta.true_ber.is_some());
        let ber = task.meta.true_ber.unwrap();
        assert!(ber <= task.meta.sota_error + 0.02, "ber {ber} should not exceed SOTA by much");
    }

    #[test]
    fn noise_injection_reaches_expected_rate() {
        let task = load_with_noise("sst2", SizeScale::Tiny, &NoiseModel::Uniform(0.4), 3);
        let rate = task.observed_noise_rate();
        // Uniform(0.4) flips 0.4 * (1 - 1/2) = 0.2 of binary labels.
        assert!((rate - 0.2).abs() < 0.05, "rate {rate}");
        // Clean labels are preserved for the cleaning simulator.
        assert!(task.train.clean_labels.iter().zip(&task.train.labels).any(|(a, b)| a != b));
    }

    #[test]
    fn cifar_n_variant_loads_with_class_dependent_noise() {
        let task = load_cifar_n("cifar10-aggre", SizeScale::Tiny, 5);
        assert_eq!(task.name, "cifar10-aggre");
        assert_eq!(task.num_classes, 10);
        let rate = task.observed_noise_rate();
        assert!(rate > 0.02 && rate < 0.25, "rate {rate}");
        assert_eq!(cifar_n_names().len(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        let _ = load_clean("does-not-exist", SizeScale::Tiny, 1);
    }

    #[test]
    fn vtab_suite_has_19_small_tasks() {
        let suite = vtab_suite(11);
        assert_eq!(suite.len(), 19);
        for task in &suite {
            assert_eq!(task.train.len(), 1_000);
            assert_eq!(task.test.len(), 300);
            assert!(task.num_classes >= 2);
            assert!(task.meta.true_ber.is_some());
        }
        // Tasks differ in difficulty.
        let bers: Vec<f64> = suite.iter().map(|t| t.meta.true_ber.unwrap()).collect();
        let min = bers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = bers.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.1, "difficulty spread {min}..{max}");
    }
}
