//! Label-noise models and the paper's noise theory.
//!
//! Implements:
//!
//! * class-dependent label noise via row-stochastic transition matrices
//!   (Section III-A of the paper, Eq. 4),
//! * uniform noise as the special case of Lemma 2.1, pairwise flipping as the
//!   second worked example of Appendix VIII,
//! * the BER-evolution formula of Theorem 3.1 for generative tasks where the
//!   posterior is known, its lower/upper bounds (Eq. 17–19) anchored at the
//!   SOTA error `s_{X,Y}`, and the diagonal-average approximation (Eq. 20),
//! * replicas of the CIFAR-N transition matrices with the statistics reported
//!   in Table II.

use rand::rngs::StdRng;
use rand::Rng;
use snoopy_linalg::rng;

/// A row-stochastic label-transition matrix `t[y][y'] = P(Y_noisy = y' | Y = y)`.
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    num_classes: usize,
    /// Row-major `C × C` probabilities.
    probs: Vec<f64>,
}

impl TransitionMatrix {
    /// Builds a transition matrix from row-major probabilities.
    ///
    /// # Panics
    /// Panics if the matrix is not `C × C`, contains negative entries, or has
    /// rows that do not sum to 1 (tolerance `1e-6`).
    pub fn new(num_classes: usize, probs: Vec<f64>) -> Self {
        assert_eq!(probs.len(), num_classes * num_classes, "transition matrix must be C x C");
        for y in 0..num_classes {
            let row = &probs[y * num_classes..(y + 1) * num_classes];
            assert!(row.iter().all(|&p| p >= -1e-12), "negative transition probability");
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {y} sums to {sum}, expected 1");
        }
        Self { num_classes, probs }
    }

    /// Identity matrix: no label noise.
    pub fn identity(num_classes: usize) -> Self {
        let mut probs = vec![0.0; num_classes * num_classes];
        for y in 0..num_classes {
            probs[y * num_classes + y] = 1.0;
        }
        Self { num_classes, probs }
    }

    /// Uniform flipping: with probability `rho` the label is replaced by a
    /// uniform draw over all `C` classes (including the original one). This is
    /// exactly the noise model of Lemma 2.1: the per-class flip fraction is
    /// `rho * (1 - 1/C)` and every off-diagonal entry is `rho / C`.
    pub fn uniform(num_classes: usize, rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
        let c = num_classes as f64;
        let mut probs = vec![rho / c; num_classes * num_classes];
        for y in 0..num_classes {
            probs[y * num_classes + y] = 1.0 - rho + rho / c;
        }
        Self { num_classes, probs }
    }

    /// Pairwise flipping: class `y` flips to `(y + 1) mod C` with probability
    /// `rho` (Appendix VIII, second example).
    pub fn pairwise(num_classes: usize, rho: f64) -> Self {
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0, 1]");
        let mut probs = vec![0.0; num_classes * num_classes];
        for y in 0..num_classes {
            probs[y * num_classes + y] = 1.0 - rho;
            probs[y * num_classes + (y + 1) % num_classes] = rho;
        }
        Self { num_classes, probs }
    }

    /// Builds a confusion-structured class-dependent matrix whose per-class
    /// flip rates are spread between `min_flip` and `max_flip` and whose
    /// largest off-diagonal entry is capped at `max_offdiag`. Each class
    /// confuses most strongly with one "partner" class (as human annotators
    /// do for visually similar categories), with the remaining flip mass
    /// spread uniformly.
    pub fn confusion_structured(
        num_classes: usize,
        min_flip: f64,
        max_flip: f64,
        max_offdiag: f64,
        seed: u64,
    ) -> Self {
        Self::confusion_structured_skewed(num_classes, min_flip, max_flip, max_offdiag, 1.0, seed)
    }

    /// Like [`Self::confusion_structured`], but the per-class flip rates are
    /// interpolated as `min + (max - min) * t^skew`; `skew > 1` concentrates
    /// most classes near the low end (as in CIFAR-100N, where one class has an
    /// 85 % flip rate but the overall noise is only 40 %).
    pub fn confusion_structured_skewed(
        num_classes: usize,
        min_flip: f64,
        max_flip: f64,
        max_offdiag: f64,
        skew: f64,
        seed: u64,
    ) -> Self {
        assert!(num_classes >= 2);
        assert!(min_flip >= 0.0 && max_flip <= 1.0 && min_flip <= max_flip);
        assert!(max_offdiag > 0.0 && max_offdiag <= 1.0);
        let mut r = rng::seeded(seed);
        let mut probs = vec![0.0; num_classes * num_classes];
        for y in 0..num_classes {
            // Flip rate linearly interpolated (then shuffled by class identity).
            let t = if num_classes == 1 { 0.0 } else { y as f64 / (num_classes - 1) as f64 };
            let flip = min_flip + t.powf(skew) * (max_flip - min_flip);
            let partner = loop {
                let p = r.gen_range(0..num_classes);
                if p != y {
                    break p;
                }
            };
            // Cap the partner mass so that the diagonal stays the row maximum
            // (the assumption of Theorem 3.1, which Table II reports to hold
            // for every CIFAR-N variant).
            let partner_mass = flip.min(max_offdiag).min(1.0 - flip);
            let rest = (flip - partner_mass).max(0.0);
            let others = (num_classes - 2).max(1) as f64;
            for y2 in 0..num_classes {
                let p = if y2 == y {
                    1.0 - flip
                } else if y2 == partner {
                    partner_mass + if num_classes == 2 { rest } else { 0.0 }
                } else {
                    rest / others
                };
                probs[y * num_classes + y2] = p;
            }
        }
        Self::new(num_classes, probs)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Entry `t[y][y']`.
    pub fn get(&self, y: usize, y2: usize) -> f64 {
        self.probs[y * self.num_classes + y2]
    }

    /// Per-class flip fraction `ρ(y) = 1 - t[y][y]`.
    pub fn flip_rate(&self, y: usize) -> f64 {
        1.0 - self.get(y, y)
    }

    /// Largest per-class flip fraction `max_y ρ(y)`.
    pub fn max_flip(&self) -> f64 {
        (0..self.num_classes).map(|y| self.flip_rate(y)).fold(0.0, f64::max)
    }

    /// Smallest per-class flip fraction `min_y ρ(y)`.
    pub fn min_flip(&self) -> f64 {
        (0..self.num_classes).map(|y| self.flip_rate(y)).fold(1.0, f64::min)
    }

    /// Average per-class flip fraction `E_y ρ(y)` under the given priors
    /// (uniform priors if `None`).
    pub fn mean_flip(&self, priors: Option<&[f64]>) -> f64 {
        match priors {
            Some(p) => (0..self.num_classes).map(|y| p[y] * self.flip_rate(y)).sum(),
            None => (0..self.num_classes).map(|y| self.flip_rate(y)).sum::<f64>() / self.num_classes as f64,
        }
    }

    /// Largest off-diagonal entry `max_{y≠y'} t[y][y']`.
    pub fn max_offdiag(&self) -> f64 {
        let mut m: f64 = 0.0;
        for y in 0..self.num_classes {
            for y2 in 0..self.num_classes {
                if y != y2 {
                    m = m.max(self.get(y, y2));
                }
            }
        }
        m
    }

    /// Smallest off-diagonal entry `min_{y≠y'} t[y][y']`.
    pub fn min_offdiag(&self) -> f64 {
        let mut m = f64::INFINITY;
        for y in 0..self.num_classes {
            for y2 in 0..self.num_classes {
                if y != y2 {
                    m = m.min(self.get(y, y2));
                }
            }
        }
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }

    /// Overall expected noise rate under the given class priors (uniform if
    /// `None`): the probability that a freshly drawn label gets corrupted.
    pub fn overall_noise(&self, priors: Option<&[f64]>) -> f64 {
        self.mean_flip(priors)
    }

    /// Whether every diagonal entry is the row maximum — the assumption of
    /// Theorem 3.1 ("the maximal label per sample is preserved").
    pub fn diagonal_dominant(&self) -> bool {
        (0..self.num_classes).all(|y| {
            let diag = self.get(y, y);
            (0..self.num_classes).all(|y2| y2 == y || self.get(y, y2) <= diag + 1e-12)
        })
    }

    /// Applies the noise model to a slice of labels, returning the corrupted
    /// labels.
    pub fn apply(&self, labels: &[u32], rng_: &mut StdRng) -> Vec<u32> {
        labels
            .iter()
            .map(|&y| {
                let row = &self.probs[(y as usize) * self.num_classes..(y as usize + 1) * self.num_classes];
                rng::categorical(rng_, row) as u32
            })
            .collect()
    }
}

/// High-level noise models exposed to the experiment harness.
#[derive(Debug, Clone)]
pub enum NoiseModel {
    /// No corruption.
    Clean,
    /// Uniform flipping with probability `rho` (Lemma 2.1).
    Uniform(f64),
    /// Pairwise flipping with probability `rho`.
    Pairwise(f64),
    /// Arbitrary class-dependent transition matrix (Theorem 3.1).
    ClassDependent(TransitionMatrix),
}

impl NoiseModel {
    /// The transition matrix realising this model for `num_classes` classes.
    pub fn transition_matrix(&self, num_classes: usize) -> TransitionMatrix {
        match self {
            NoiseModel::Clean => TransitionMatrix::identity(num_classes),
            NoiseModel::Uniform(rho) => TransitionMatrix::uniform(num_classes, *rho),
            NoiseModel::Pairwise(rho) => TransitionMatrix::pairwise(num_classes, *rho),
            NoiseModel::ClassDependent(t) => {
                assert_eq!(t.num_classes(), num_classes, "transition matrix class count mismatch");
                t.clone()
            }
        }
    }

    /// Applies the model to labels.
    pub fn apply(&self, labels: &[u32], num_classes: usize, rng_: &mut StdRng) -> Vec<u32> {
        match self {
            NoiseModel::Clean => labels.to_vec(),
            _ => self.transition_matrix(num_classes).apply(labels, rng_),
        }
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            NoiseModel::Clean => "clean".to_string(),
            NoiseModel::Uniform(rho) => format!("uniform({rho:.2})"),
            NoiseModel::Pairwise(rho) => format!("pairwise({rho:.2})"),
            NoiseModel::ClassDependent(t) => {
                format!("class-dependent(noise {:.2})", t.overall_noise(None))
            }
        }
    }
}

/// Lemma 2.1: evolution of the BER under uniform label noise,
/// `R*_{X,Y_ρ} = R*_{X,Y} + ρ (1 - 1/C - R*_{X,Y})`.
pub fn ber_after_uniform_noise(clean_ber: f64, rho: f64, num_classes: usize) -> f64 {
    let c = num_classes as f64;
    clean_ber + rho * (1.0 - 1.0 / c - clean_ber)
}

/// Pairwise-flipping example of Appendix VIII:
/// `R*_{X,Y_ρ} = R*_{X,Y} + ρ (1 - 2 R*_{X,Y})` (binary-style flip to one
/// fixed partner class).
pub fn ber_after_pairwise_noise(clean_ber: f64, rho: f64) -> f64 {
    clean_ber + rho * (1.0 - 2.0 * clean_ber)
}

/// Valid lower/upper bounds on the noisy BER from Eq. 19 of the paper,
/// anchored at the clean-task SOTA error `s_{X,Y}` (which upper-bounds the
/// clean BER):
///
/// `R*_{X,Y_ρ} ∈ [ (1 - s) · min_y ρ(y) − s · max_{y≠y'} t_{y,y'},  s + max_y ρ(y) ]`.
pub fn ber_bounds_class_dependent(sota_error: f64, t: &TransitionMatrix) -> (f64, f64) {
    let lower = (1.0 - sota_error) * t.min_flip() - sota_error * t.max_offdiag();
    let upper = sota_error + t.max_flip();
    (lower.max(0.0), upper.min(1.0))
}

/// The approximation of Eq. 20: `R ≈ s + E_y[ρ(y)] (1 - s)`, i.e. the average
/// diagonal distance from one instead of the min/max extremes.
pub fn ber_approx_class_dependent(sota_error: f64, t: &TransitionMatrix, priors: Option<&[f64]>) -> f64 {
    (sota_error + t.mean_flip(priors) * (1.0 - sota_error)).min(1.0)
}

/// Theorem 3.1 evaluated for a task whose posterior is known: given per-sample
/// posterior vectors `p(·|x)` (each of length `C`), returns the exact noisy
/// BER
///
/// `R*_{X,Y_ρ} = R*_{X,Y} + E_X[ρ(y_x) p(y_x|x)] − E_X[Σ_{y≠y_x} t_{y_x,y} p(y|x)]`.
pub fn ber_after_class_dependent_noise_exact(posteriors: &[Vec<f64>], t: &TransitionMatrix) -> f64 {
    assert!(!posteriors.is_empty());
    let c = t.num_classes();
    let mut clean = 0.0f64;
    let mut gain = 0.0f64;
    let mut loss = 0.0f64;
    for p in posteriors {
        assert_eq!(p.len(), c, "posterior dimension mismatch");
        let yx = snoopy_linalg::stats::argmax(p);
        clean += 1.0 - p[yx];
        gain += t.flip_rate(yx) * p[yx];
        loss += (0..c).filter(|&y| y != yx).map(|y| t.get(yx, y) * p[y]).sum::<f64>();
    }
    let n = posteriors.len() as f64;
    ((clean + gain - loss) / n).clamp(0.0, 1.0)
}

/// One named CIFAR-N-style noisy variant (Table II replica).
#[derive(Debug, Clone)]
pub struct CifarNVariant {
    /// Variant name, e.g. `"cifar10-aggre"`.
    pub name: String,
    /// Base dataset name in the registry (`"cifar10"` or `"cifar100"`).
    pub base: &'static str,
    /// The replica transition matrix.
    pub matrix: TransitionMatrix,
    /// Overall noise level reported in Table II.
    pub reported_noise: f64,
}

/// Builds the five CIFAR-N replicas with the statistics of Table II:
///
/// | dataset            | noise | max ρ(y) | min ρ(y) | max off-diag |
/// |---------------------|-------|----------|----------|--------------|
/// | CIFAR10-Aggre       | 9 %   | 17 %     | 3 %      | 10 %         |
/// | CIFAR10-Random1     | 17 %  | 26 %     | 10 %     | 23 %         |
/// | CIFAR10-Random2     | 18 %  | 26 %     | 10 %     | 23 %         |
/// | CIFAR10-Random3     | 18 %  | 26 %     | 10 %     | 23 %         |
/// | CIFAR100-Noisy      | 40 %  | 85 %     | 8 %      | 31 %         |
pub fn cifar_n_variants() -> Vec<CifarNVariant> {
    vec![
        CifarNVariant {
            name: "cifar10-aggre".into(),
            base: "cifar10",
            matrix: TransitionMatrix::confusion_structured(10, 0.03, 0.17, 0.10, 101),
            reported_noise: 0.09,
        },
        CifarNVariant {
            name: "cifar10-random1".into(),
            base: "cifar10",
            matrix: TransitionMatrix::confusion_structured(10, 0.10, 0.26, 0.23, 102),
            reported_noise: 0.17,
        },
        CifarNVariant {
            name: "cifar10-random2".into(),
            base: "cifar10",
            matrix: TransitionMatrix::confusion_structured(10, 0.10, 0.26, 0.23, 103),
            reported_noise: 0.18,
        },
        CifarNVariant {
            name: "cifar10-random3".into(),
            base: "cifar10",
            matrix: TransitionMatrix::confusion_structured(10, 0.10, 0.26, 0.23, 104),
            reported_noise: 0.18,
        },
        CifarNVariant {
            name: "cifar100-noisy".into(),
            base: "cifar100",
            matrix: TransitionMatrix::confusion_structured_skewed(100, 0.08, 0.85, 0.31, 1.45, 105),
            reported_noise: 0.40,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix_matches_lemma_parameters() {
        let c = 10;
        let rho = 0.4;
        let t = TransitionMatrix::uniform(c, rho);
        for y in 0..c {
            assert!((t.flip_rate(y) - rho * (1.0 - 1.0 / c as f64)).abs() < 1e-12);
            for y2 in 0..c {
                if y != y2 {
                    assert!((t.get(y, y2) - rho / c as f64).abs() < 1e-12);
                }
            }
        }
        assert!(t.diagonal_dominant());
    }

    #[test]
    fn pairwise_matrix_shape() {
        let t = TransitionMatrix::pairwise(4, 0.2);
        assert!((t.get(0, 1) - 0.2).abs() < 1e-12);
        assert!((t.get(3, 0) - 0.2).abs() < 1e-12);
        assert!((t.get(2, 2) - 0.8).abs() < 1e-12);
        assert_eq!(t.get(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn rejects_non_stochastic_rows() {
        let _ = TransitionMatrix::new(2, vec![0.9, 0.2, 0.0, 1.0]);
    }

    #[test]
    fn apply_produces_expected_noise_rate() {
        let c = 5;
        let rho = 0.3;
        let t = TransitionMatrix::uniform(c, rho);
        let labels: Vec<u32> = (0..20_000).map(|i| (i % c) as u32).collect();
        let mut r = rng::seeded(44);
        let noisy = t.apply(&labels, &mut r);
        let flipped = labels.iter().zip(&noisy).filter(|(a, b)| a != b).count() as f64 / labels.len() as f64;
        let expected = rho * (1.0 - 1.0 / c as f64);
        assert!((flipped - expected).abs() < 0.01, "flipped {flipped}, expected {expected}");
    }

    #[test]
    fn lemma21_endpoints() {
        // rho = 0 keeps the BER, rho = 1 drives it to 1 - 1/C.
        assert!((ber_after_uniform_noise(0.05, 0.0, 10) - 0.05).abs() < 1e-12);
        assert!((ber_after_uniform_noise(0.05, 1.0, 10) - 0.9).abs() < 1e-12);
        // Monotone in rho.
        let lo = ber_after_uniform_noise(0.1, 0.2, 5);
        let hi = ber_after_uniform_noise(0.1, 0.6, 5);
        assert!(hi > lo);
    }

    #[test]
    fn pairwise_formula_endpoints() {
        assert!((ber_after_pairwise_noise(0.1, 0.0) - 0.1).abs() < 1e-12);
        assert!((ber_after_pairwise_noise(0.0, 0.3) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn theorem31_recovers_lemma21_for_uniform_noise() {
        // Build synthetic posteriors with known clean BER, apply Theorem 3.1
        // with the uniform matrix and compare against Lemma 2.1.
        let c = 4;
        let mut r = rng::seeded(7);
        let mut posteriors = Vec::new();
        for _ in 0..4000 {
            let p = rng::simplex_point(&mut r, c, 0.5);
            posteriors.push(p);
        }
        let clean_ber =
            posteriors.iter().map(|p| 1.0 - p.iter().cloned().fold(f64::NEG_INFINITY, f64::max)).sum::<f64>()
                / posteriors.len() as f64;
        for &rho in &[0.1, 0.3, 0.6] {
            let t = TransitionMatrix::uniform(c, rho);
            let exact = ber_after_class_dependent_noise_exact(&posteriors, &t);
            let lemma = ber_after_uniform_noise(clean_ber, rho, c);
            assert!((exact - lemma).abs() < 1e-9, "rho {rho}: exact {exact} vs lemma {lemma}");
        }
    }

    #[test]
    fn theorem31_bounds_contain_exact_value() {
        let c = 6;
        let mut r = rng::seeded(9);
        let posteriors: Vec<Vec<f64>> = (0..3000).map(|_| rng::simplex_point(&mut r, c, 0.4)).collect();
        let clean_ber =
            posteriors.iter().map(|p| 1.0 - p.iter().cloned().fold(f64::NEG_INFINITY, f64::max)).sum::<f64>()
                / posteriors.len() as f64;
        let t = TransitionMatrix::confusion_structured(c, 0.05, 0.3, 0.2, 3);
        let exact = ber_after_class_dependent_noise_exact(&posteriors, &t);
        // s_{X,Y} is any upper bound on the clean BER; use clean BER + margin.
        let sota = clean_ber + 0.02;
        let (lo, hi) = ber_bounds_class_dependent(sota, &t);
        assert!(exact >= lo - 1e-9, "exact {exact} below lower bound {lo}");
        assert!(exact <= hi + 1e-9, "exact {exact} above upper bound {hi}");
        let approx = ber_approx_class_dependent(sota, &t, None);
        assert!(approx >= lo && approx <= hi);
    }

    #[test]
    fn confusion_structured_matches_requested_statistics() {
        let t = TransitionMatrix::confusion_structured(10, 0.03, 0.17, 0.10, 101);
        assert!((t.min_flip() - 0.03).abs() < 1e-9);
        assert!((t.max_flip() - 0.17).abs() < 1e-9);
        assert!(t.max_offdiag() <= 0.10 + 1e-9);
        assert!(t.diagonal_dominant());
        let noise = t.overall_noise(None);
        assert!((noise - 0.10).abs() < 0.03, "overall noise {noise}");
    }

    #[test]
    fn cifar_n_variants_reproduce_table2() {
        let variants = cifar_n_variants();
        assert_eq!(variants.len(), 5);
        for v in &variants {
            assert!(v.matrix.diagonal_dominant(), "{} must satisfy Theorem 3.1's assumption", v.name);
            let noise = v.matrix.overall_noise(None);
            assert!(
                (noise - v.reported_noise).abs() < 0.06,
                "{}: generated noise {noise}, reported {}",
                v.name,
                v.reported_noise
            );
        }
        let c100 = &variants[4];
        assert_eq!(c100.matrix.num_classes(), 100);
        assert!((c100.matrix.max_flip() - 0.85).abs() < 1e-9);
    }

    #[test]
    fn noise_model_dispatch() {
        let mut r = rng::seeded(5);
        let labels = vec![0u32, 1, 2, 3, 0, 1, 2, 3];
        assert_eq!(NoiseModel::Clean.apply(&labels, 4, &mut r), labels);
        let noisy = NoiseModel::Uniform(1.0).apply(&labels, 4, &mut r);
        assert_eq!(noisy.len(), labels.len());
        assert!(NoiseModel::Uniform(0.2).describe().contains("uniform"));
        assert!(NoiseModel::Clean.describe().contains("clean"));
        let t = TransitionMatrix::pairwise(4, 0.5);
        assert!(NoiseModel::ClassDependent(t).describe().contains("class-dependent"));
    }
}
