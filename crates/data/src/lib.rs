//! # snoopy-data
//!
//! Datasets, synthetic generators, and label-noise models for the Snoopy
//! feasibility-study system.
//!
//! The paper evaluates Snoopy on six public vision/NLP benchmarks (Table I)
//! plus the human-annotated CIFAR-N noisy variants (Table II). Those corpora
//! cannot be shipped with an offline reproduction, so this crate provides
//! *generative replicas*: synthetic tasks with
//!
//! * the same number of classes, train/test proportions and modality mix,
//! * a state-of-the-art error anchor taken from Table I,
//! * and — crucially — a **known Bayes error rate (BER)** by construction,
//!   which the original benchmarks do not have. This turns the paper's
//!   "SOTA as a proxy for the BER" argument into something that can actually
//!   be verified in tests and experiments.
//!
//! The crate also implements the paper's label-noise theory: uniform noise
//! (Lemma 2.1), class-dependent transition-matrix noise (Theorem 3.1) with its
//! lower/upper bounds (Eq. 17–19) and the diagonal-average approximation
//! (Eq. 20), pairwise flipping, and replicas of the CIFAR-N transition
//! matrices with the statistics of Table II.

pub mod cleaning;
pub mod dataset;
pub mod disk;
pub mod feature_noise;
pub mod gaussian;
pub mod noise;
pub mod registry;
pub mod text;
pub mod vision;

pub use dataset::{Dataset, DatasetMeta, Modality, TaskDataset};
pub use disk::{DiskLabeledDataset, DiskPairError};
pub use noise::{NoiseModel, TransitionMatrix};
pub use registry::{DatasetSpec, SizeScale};
