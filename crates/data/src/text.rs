//! Text-like synthetic task generator (topic-model documents).
//!
//! The paper's NLP datasets (IMDB, SST2, YELP) are replaced by a bag-of-words
//! generative replica:
//!
//! 1. each class `c` owns a word distribution `θ_c` over a vocabulary of size
//!    `vocab_size`, drawn from a symmetric Dirichlet and then *sharpened*
//!    towards a small set of class-indicative words (so classes overlap on
//!    common words and differ on discriminative ones, as sentiment corpora
//!    do),
//! 2. a document of class `c` samples its length from a Poisson distribution
//!    and its words i.i.d. from `θ_c`,
//! 3. the raw feature vector is the L2-normalised term-frequency vector.
//!
//! Because the generative model is known exactly, the posterior `p(c | doc)`
//! — and therefore the true Bayes error — can be computed by Monte-Carlo, and
//! the sharpening temperature is calibrated to hit the SOTA anchor from
//! Table I. The matrix of per-class log-word-probabilities serves as the
//! task's `latent_map`: projecting a term-frequency vector onto it yields
//! (scaled) class log-likelihood scores, which is the sufficient statistic a
//! perfect text embedding could recover.

use crate::dataset::{Dataset, DatasetMeta, Modality, TaskDataset};
use rand::rngs::StdRng;
use rand::Rng;
use snoopy_linalg::{rng, stats, Matrix};

/// Parameters of a text-like synthetic task.
#[derive(Debug, Clone)]
pub struct TextTaskSpec {
    /// Task name.
    pub name: String,
    /// Number of classes.
    pub num_classes: usize,
    /// Number of training documents.
    pub train_size: usize,
    /// Number of test documents.
    pub test_size: usize,
    /// Vocabulary size (raw feature dimensionality).
    pub vocab_size: usize,
    /// Expected document length (Poisson mean).
    pub doc_length: f64,
    /// Target Bayes error of the clean task.
    pub target_ber: f64,
    /// Published SOTA error of the mirrored paper dataset.
    pub sota_error: f64,
    /// Master seed.
    pub seed: u64,
}

impl TextTaskSpec {
    /// Small task for tests.
    pub fn small(name: &str, num_classes: usize, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            num_classes,
            train_size: 400,
            test_size: 200,
            vocab_size: 200,
            doc_length: 40.0,
            target_ber: 0.05,
            sota_error: 0.05,
            seed,
        }
    }
}

/// The fitted generative model for a text task.
#[derive(Debug, Clone)]
pub struct TopicModel {
    /// `C × V` matrix of per-class word probabilities.
    pub theta: Vec<Vec<f64>>,
    /// Expected document length.
    pub doc_length: f64,
    /// Pre-computed per-class cumulative samplers for fast word draws.
    samplers: Vec<rng::CumulativeSampler>,
}

impl TopicModel {
    /// Builds class word-distributions: a shared background distribution
    /// blended with class-specific sparse "indicator" distributions. A larger
    /// `signal` gives more separable classes.
    pub fn new(num_classes: usize, vocab_size: usize, signal: f64, seed: u64, doc_length: f64) -> Self {
        assert!(num_classes >= 2 && vocab_size >= num_classes * 2);
        let mut r = rng::seeded(seed);
        let background = rng::simplex_point(&mut r, vocab_size, 5.0);
        let mut theta = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let indicative = rng::simplex_point(&mut r, vocab_size, 0.05);
            let mut dist: Vec<f64> =
                background.iter().zip(&indicative).map(|(&b, &i)| (1.0 - signal) * b + signal * i).collect();
            let sum: f64 = dist.iter().sum();
            for d in &mut dist {
                *d /= sum;
            }
            theta.push(dist);
        }
        let samplers = theta.iter().map(|d| rng::CumulativeSampler::new(d)).collect();
        Self { theta, doc_length, samplers }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.theta.len()
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.theta[0].len()
    }

    /// Samples a document of class `c`, returning raw word counts.
    pub fn sample_counts(&self, c: usize, rng_: &mut StdRng) -> Vec<u32> {
        let len = rng::poisson(rng_, self.doc_length).max(1);
        let mut counts = vec![0u32; self.vocab_size()];
        for _ in 0..len {
            let w = self.samplers[c].sample(rng_);
            counts[w] += 1;
        }
        counts
    }

    /// Posterior `p(c | counts)` under equal priors.
    pub fn posterior(&self, counts: &[u32]) -> Vec<f64> {
        let mut logits: Vec<f64> = self
            .theta
            .iter()
            .map(|dist| {
                counts
                    .iter()
                    .zip(dist)
                    .filter(|(&cnt, _)| cnt > 0)
                    .map(|(&cnt, &p)| cnt as f64 * p.max(1e-300).ln())
                    .sum()
            })
            .collect();
        stats::softmax_inplace(&mut logits);
        logits
    }

    /// Monte-Carlo Bayes error of the document-classification task.
    pub fn bayes_error_monte_carlo(&self, n_samples: usize, seed: u64) -> f64 {
        let mut r = rng::seeded(seed);
        let c = self.num_classes();
        let mut acc = 0.0;
        for _ in 0..n_samples {
            let y = r.gen_range(0..c);
            let counts = self.sample_counts(y, &mut r);
            let post = self.posterior(&counts);
            acc += 1.0 - post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        }
        acc / n_samples as f64
    }

    /// The `V × C` matrix of per-class log-probabilities (the task's latent map).
    pub fn log_theta_map(&self) -> Matrix {
        let v = self.vocab_size();
        let c = self.num_classes();
        Matrix::from_fn(v, c, |w, cls| self.theta[cls][w].max(1e-300).ln() as f32)
    }

    /// Converts word counts to an L2-normalised term-frequency feature vector.
    pub fn counts_to_features(counts: &[u32]) -> Vec<f32> {
        let mut feat: Vec<f32> = counts.iter().map(|&c| c as f32).collect();
        let norm = Matrix::row_norm(&feat);
        if norm > 0.0 {
            for f in &mut feat {
                *f /= norm;
            }
        }
        feat
    }
}

/// Calibrates the class-signal strength so that the document task's Bayes
/// error is close to the target.
pub fn calibrate_topic_model(spec: &TextTaskSpec, mc_samples: usize) -> (TopicModel, f64) {
    let mut lo = 0.005f64; // almost no class signal: BER near chance
    let mut hi = 0.95f64; // strong signal: BER near zero
    let mut model = TopicModel::new(spec.num_classes, spec.vocab_size, hi, spec.seed, spec.doc_length);
    let mut ber = model.bayes_error_monte_carlo(mc_samples, spec.seed ^ 0xbe5);
    if spec.target_ber <= 1e-4 {
        return (model, ber);
    }
    for _ in 0..18 {
        let mid = 0.5 * (lo + hi);
        let cand = TopicModel::new(spec.num_classes, spec.vocab_size, mid, spec.seed, spec.doc_length);
        let cand_ber = cand.bayes_error_monte_carlo(mc_samples, spec.seed ^ 0xbe5);
        model = cand;
        ber = cand_ber;
        if cand_ber > spec.target_ber {
            lo = mid; // need more signal
        } else {
            hi = mid;
        }
        if (cand_ber - spec.target_ber).abs() < 0.004 {
            break;
        }
    }
    (model, ber)
}

/// Generates the text task described by `spec`.
pub fn generate_text_task(spec: &TextTaskSpec) -> TaskDataset {
    let mc = 3_000.max(30 * spec.num_classes);
    let (model, achieved_ber) = calibrate_topic_model(spec, mc);
    let mut sample_rng = rng::seeded(spec.seed ^ 0x7e47);
    let train = render_split(&model, spec.train_size, spec.num_classes, &mut sample_rng);
    let test = render_split(&model, spec.test_size, spec.num_classes, &mut sample_rng);
    TaskDataset {
        name: spec.name.clone(),
        num_classes: spec.num_classes,
        train,
        test,
        meta: DatasetMeta {
            sota_error: spec.sota_error,
            true_ber: Some(achieved_ber),
            modality: Modality::Text,
            latent_map: Some(model.log_theta_map()),
            latent_dim: spec.num_classes,
        },
    }
}

fn render_split(model: &TopicModel, n: usize, num_classes: usize, rng_: &mut StdRng) -> Dataset {
    let v = model.vocab_size();
    let mut features = Matrix::zeros(n, v);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let y = rng_.gen_range(0..num_classes);
        labels.push(y as u32);
        let counts = model.sample_counts(y, rng_);
        features.row_mut(i).copy_from_slice(&TopicModel::counts_to_features(&counts));
    }
    Dataset::new_clean(features, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_model_distributions_are_valid() {
        let m = TopicModel::new(3, 50, 0.4, 1, 30.0);
        for dist in &m.theta {
            assert_eq!(dist.len(), 50);
            assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(dist.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn posterior_is_a_distribution_and_identifies_strong_signal() {
        let m = TopicModel::new(2, 60, 0.8, 2, 60.0);
        let mut r = rng::seeded(3);
        let mut correct = 0;
        for i in 0..200 {
            let y = i % 2;
            let counts = m.sample_counts(y, &mut r);
            let post = m.posterior(&counts);
            assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            if stats::argmax(&post) == y {
                correct += 1;
            }
        }
        assert!(correct > 180, "posterior argmax accuracy {correct}/200");
    }

    #[test]
    fn more_signal_means_lower_bayes_error() {
        let weak = TopicModel::new(4, 100, 0.05, 5, 40.0);
        let strong = TopicModel::new(4, 100, 0.7, 5, 40.0);
        let ber_weak = weak.bayes_error_monte_carlo(1500, 6);
        let ber_strong = strong.bayes_error_monte_carlo(1500, 6);
        assert!(ber_weak > ber_strong, "weak {ber_weak} vs strong {ber_strong}");
    }

    #[test]
    fn calibration_hits_target() {
        let mut spec = TextTaskSpec::small("cal", 2, 17);
        spec.target_ber = 0.12;
        let (_m, ber) = calibrate_topic_model(&spec, 2000);
        assert!((ber - 0.12).abs() < 0.04, "ber {ber}");
    }

    #[test]
    fn generated_task_shape_and_normalisation() {
        let spec = TextTaskSpec::small("toy-text", 3, 23);
        let task = generate_text_task(&spec);
        assert_eq!(task.train.len(), 400);
        assert_eq!(task.test.len(), 200);
        assert_eq!(task.raw_dim(), 200);
        assert_eq!(task.meta.modality, Modality::Text);
        assert_eq!(task.meta.latent_dim, 3);
        // Feature rows are unit-norm (or zero).
        for i in 0..20 {
            let norm = Matrix::row_norm(task.train.features.row(i));
            assert!((norm - 1.0).abs() < 1e-4 || norm == 0.0);
        }
    }

    #[test]
    fn latent_map_scores_discriminate() {
        let spec = TextTaskSpec::small("latent-text", 2, 29);
        let task = generate_text_task(&spec);
        let map = task.meta.latent_map.as_ref().unwrap();
        let scores = task.test.features.matmul(map);
        let mut correct = 0;
        for i in 0..scores.rows() {
            let row: Vec<f64> = scores.row(i).iter().map(|&v| v as f64).collect();
            if stats::argmax(&row) as u32 == task.test.clean_labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / scores.rows() as f64;
        assert!(acc > 0.8, "latent-map score accuracy {acc}");
    }

    #[test]
    fn counts_to_features_handles_empty_document() {
        let feats = TopicModel::counts_to_features(&[0, 0, 0]);
        assert_eq!(feats, vec![0.0, 0.0, 0.0]);
    }
}
