//! Feature-side data-quality issues (extension beyond the paper's label-noise
//! case study).
//!
//! The paper's limitation section explicitly leaves "noisy or incomplete
//! features" to future work while noting that the BER framework covers them:
//! any corruption of `X` that destroys information about `Y` raises the
//! irreducible error. This module provides the two classic corruptions —
//! additive Gaussian feature noise and missing features (completeness) — so
//! the estimator stack can be exercised on those dimensions as well
//! (`exp_ext_feature_noise`).

use crate::dataset::TaskDataset;
use rand::rngs::StdRng;
use rand::Rng;
use snoopy_linalg::{rng, Matrix};

/// A feature-corruption model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureNoise {
    /// Adds i.i.d. `N(0, sigma^2)` noise to every feature value.
    Gaussian {
        /// Standard deviation of the additive noise, expressed as a multiple
        /// of the per-feature standard deviation of the clean data.
        relative_sigma: f64,
    },
    /// Sets each feature value to the imputation value (the column mean) with
    /// probability `missing_rate`, modelling incomplete records that were
    /// mean-imputed downstream.
    MissingCompleteness {
        /// Probability that any individual cell is missing.
        missing_rate: f64,
    },
}

impl FeatureNoise {
    /// Human-readable description.
    pub fn describe(&self) -> String {
        match self {
            FeatureNoise::Gaussian { relative_sigma } => {
                format!("gaussian-feature-noise({relative_sigma:.2})")
            }
            FeatureNoise::MissingCompleteness { missing_rate } => {
                format!("missing-features({missing_rate:.2})")
            }
        }
    }

    /// Applies the corruption to a feature matrix, given the per-column means
    /// and standard deviations of the *clean* data (so that train and test are
    /// corrupted consistently).
    pub fn apply(&self, features: &Matrix, col_means: &[f64], col_stds: &[f64], rng_: &mut StdRng) -> Matrix {
        let mut out = features.clone();
        match *self {
            FeatureNoise::Gaussian { relative_sigma } => {
                assert!(relative_sigma >= 0.0, "noise level must be non-negative");
                for r in 0..out.rows() {
                    let row = out.row_mut(r);
                    for (j, v) in row.iter_mut().enumerate() {
                        let sigma = relative_sigma * col_stds[j].max(1e-9);
                        *v += (rng::normal(rng_) * sigma) as f32;
                    }
                }
            }
            FeatureNoise::MissingCompleteness { missing_rate } => {
                assert!((0.0..=1.0).contains(&missing_rate), "missing rate must be in [0, 1]");
                for r in 0..out.rows() {
                    let row = out.row_mut(r);
                    for (j, v) in row.iter_mut().enumerate() {
                        if rng_.gen::<f64>() < missing_rate {
                            *v = col_means[j] as f32;
                        }
                    }
                }
            }
        }
        out
    }
}

/// Applies a feature-corruption model to both splits of a task in place,
/// using column statistics computed on the clean training split.
pub fn apply_feature_noise(task: &mut TaskDataset, noise: &FeatureNoise, seed: u64) {
    let mut r = rng::seeded(seed);
    let col_means = task.train.features.column_means();
    let col_stds = task.train.features.column_stds();
    task.train.features = noise.apply(&task.train.features, &col_means, &col_stds, &mut r);
    task.test.features = noise.apply(&task.test.features, &col_means, &col_stds, &mut r);
    // Feature corruption invalidates the generative latent map (the map was
    // fitted to clean features) and the calibrated BER, which is why the meta
    // keeps only the fact that they are no longer exact.
    task.meta.true_ber = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{load_clean, SizeScale};
    use snoopy_linalg::Matrix as M;

    #[test]
    fn gaussian_noise_preserves_shape_and_adds_variance() {
        let task = load_clean("mnist", SizeScale::Tiny, 1);
        let mut r = rng::seeded(2);
        let means = task.train.features.column_means();
        let stds = task.train.features.column_stds();
        let noisy =
            FeatureNoise::Gaussian { relative_sigma: 1.0 }.apply(&task.train.features, &means, &stds, &mut r);
        assert_eq!(noisy.rows(), task.train.features.rows());
        assert_eq!(noisy.cols(), task.train.features.cols());
        let clean_var: f64 = task.train.features.column_stds().iter().map(|s| s * s).sum();
        let noisy_var: f64 = noisy.column_stds().iter().map(|s| s * s).sum();
        assert!(noisy_var > clean_var * 1.5, "variance should grow: {clean_var} -> {noisy_var}");
    }

    #[test]
    fn zero_noise_is_identity() {
        let features = M::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut r = rng::seeded(3);
        let out = FeatureNoise::Gaussian { relative_sigma: 0.0 }.apply(
            &features,
            &features.column_means(),
            &features.column_stds(),
            &mut r,
        );
        assert_eq!(out.data(), features.data());
    }

    #[test]
    fn missing_features_replace_cells_with_column_means() {
        let task = load_clean("sst2", SizeScale::Tiny, 4);
        let mut r = rng::seeded(5);
        let means = task.train.features.column_means();
        let stds = task.train.features.column_stds();
        let corrupted = FeatureNoise::MissingCompleteness { missing_rate: 1.0 }.apply(
            &task.train.features,
            &means,
            &stds,
            &mut r,
        );
        // Every cell is the column mean.
        #[allow(clippy::needless_range_loop)] // j indexes both the matrix and the mean vector
        for j in 0..corrupted.cols().min(10) {
            for i in 0..corrupted.rows().min(10) {
                assert!((corrupted.get(i, j) as f64 - means[j]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn feature_corruption_raises_one_nn_error() {
        use snoopy_knn::{BruteForceIndex, Metric};
        let clean = load_clean("cifar10", SizeScale::Tiny, 7);
        let mut corrupted = clean.clone();
        apply_feature_noise(&mut corrupted, &FeatureNoise::Gaussian { relative_sigma: 3.0 }, 11);
        assert!(corrupted.meta.true_ber.is_none(), "exact BER no longer known after corruption");

        let err = |task: &TaskDataset| {
            BruteForceIndex::from_view(task.train_view(), Metric::SquaredEuclidean)
                .one_nn_error_view(task.test_view())
        };
        assert!(
            err(&corrupted) > err(&clean) + 0.05,
            "heavy feature noise must raise the 1NN error ({:.3} vs {:.3})",
            err(&corrupted),
            err(&clean)
        );
    }

    #[test]
    fn descriptions_are_informative() {
        assert!(FeatureNoise::Gaussian { relative_sigma: 0.5 }.describe().contains("0.50"));
        assert!(FeatureNoise::MissingCompleteness { missing_rate: 0.2 }.describe().contains("missing"));
    }
}
