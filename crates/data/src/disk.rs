//! The labelled on-disk dataset: a feature matrix plus its labels sidecar
//! in one directory, opened back as the workspace's universal
//! [`LabeledView`] handshake.
//!
//! `snoopy-linalg`'s [`DiskDataset`] / [`DiskLabels`] define the per-file
//! format and the mmap backing; this module owns the *pairing* convention —
//! fixed file names ([`FEATURES_FILE`], [`LABELS_FILE`]) inside a dataset
//! directory, plus the cross-file consistency check (one label per feature
//! row) that neither file can validate alone. Everything downstream of a
//! [`LabeledView`] (estimators, studies, the kNN engines) runs over the
//! mapped payload without knowing it is disk-backed.

use snoopy_linalg::disk::{DiskDataset, DiskDatasetError, DiskLabels};
use snoopy_linalg::LabeledView;
use std::fmt;
use std::path::Path;

/// File name of the f32 feature matrix inside a dataset directory.
pub const FEATURES_FILE: &str = "features.snpy";
/// File name of the u32 labels sidecar inside a dataset directory.
pub const LABELS_FILE: &str = "labels.snpy";

/// Failure of opening a feature/labels pair.
#[derive(Debug)]
pub enum DiskPairError {
    /// One of the two files failed to open or validate.
    Dataset(DiskDatasetError),
    /// Both files are individually valid but disagree on the row count.
    RowMismatch {
        /// Feature rows.
        features: usize,
        /// Label count.
        labels: usize,
    },
}

impl fmt::Display for DiskPairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskPairError::Dataset(e) => write!(f, "{e}"),
            DiskPairError::RowMismatch { features, labels } => {
                write!(f, "feature/label row mismatch: {features} feature rows, {labels} labels")
            }
        }
    }
}

impl std::error::Error for DiskPairError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskPairError::Dataset(e) => Some(e),
            DiskPairError::RowMismatch { .. } => None,
        }
    }
}

impl From<DiskDatasetError> for DiskPairError {
    fn from(e: DiskDatasetError) -> Self {
        DiskPairError::Dataset(e)
    }
}

/// A labelled dataset living on disk: mmap-backed features plus labels,
/// validated as a pair at open.
pub struct DiskLabeledDataset {
    features: DiskDataset,
    labels: DiskLabels,
}

impl DiskLabeledDataset {
    /// Writes `data` into `dir` (created if missing) as the canonical
    /// [`FEATURES_FILE`] + [`LABELS_FILE`] pair.
    pub fn write(dir: &Path, data: &LabeledView<'_>) -> Result<(), DiskPairError> {
        std::fs::create_dir_all(dir).map_err(DiskDatasetError::from)?;
        DiskDataset::write(&dir.join(FEATURES_FILE), data.features())?;
        DiskLabels::write(&dir.join(LABELS_FILE), data.labels(), data.num_classes())?;
        Ok(())
    }

    /// Opens the pair under `dir`, hard-validating each header and the
    /// cross-file row agreement.
    pub fn open(dir: &Path) -> Result<Self, DiskPairError> {
        let features = DiskDataset::open(&dir.join(FEATURES_FILE))?;
        let labels = DiskLabels::open(&dir.join(LABELS_FILE))?;
        if features.rows() != labels.len() {
            return Err(DiskPairError::RowMismatch { features: features.rows(), labels: labels.len() });
        }
        Ok(DiskLabeledDataset { features, labels })
    }

    /// Number of labelled rows.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.rows() == 0
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// The class count recorded at write time.
    pub fn num_classes(&self) -> usize {
        self.labels.num_classes()
    }

    /// The zero-copy labelled window over the mapped payloads — the same
    /// handshake an in-memory dataset hands out.
    pub fn view(&self) -> LabeledView<'_> {
        LabeledView::from_parts(self.features.view(), self.labels.labels(), self.labels.num_classes())
    }

    /// Streaming checksum verification of both files (faults every page in;
    /// an explicit integrity opt-in, not part of `open`).
    pub fn verify_checksums(&self) -> Result<(), DiskPairError> {
        self.features.verify_checksum()?;
        self.labels.verify_checksum()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_linalg::Matrix;
    use std::fs;
    use std::path::PathBuf;

    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let dir = std::env::temp_dir().join(format!("snoopy_pair_{tag}_{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn labelled(n: usize, d: usize, classes: usize) -> (Matrix, Vec<u32>) {
        let m = Matrix::from_fn(n, d, |r, c| ((r * d + c) as f32).cos());
        let y = (0..n as u32).map(|i| i % classes as u32).collect();
        (m, y)
    }

    #[test]
    fn pair_roundtrips_through_labeled_view() {
        let dir = Scratch::new("roundtrip");
        let (m, y) = labelled(50, 6, 4);
        let data = LabeledView::new(&m, &y).with_classes(4);
        DiskLabeledDataset::write(&dir.0, &data).expect("write");
        let disk = DiskLabeledDataset::open(&dir.0).expect("open");
        assert_eq!(disk.len(), 50);
        assert_eq!(disk.dim(), 6);
        assert_eq!(disk.num_classes(), 4);
        let v = disk.view();
        assert_eq!(v.features().data(), data.features().data(), "bit-identical features");
        assert_eq!(v.labels(), data.labels());
        disk.verify_checksums().expect("checksums");
    }

    #[test]
    fn row_mismatch_is_rejected() {
        let dir = Scratch::new("mismatch");
        let (m, y) = labelled(20, 3, 2);
        let data = LabeledView::new(&m, &y).with_classes(2);
        DiskLabeledDataset::write(&dir.0, &data).expect("write");
        // Overwrite the sidecar with one label too few.
        snoopy_linalg::disk::DiskLabels::write(&dir.0.join(LABELS_FILE), &y[..19], 2).expect("short");
        assert!(matches!(
            DiskLabeledDataset::open(&dir.0),
            Err(DiskPairError::RowMismatch { features: 20, labels: 19 })
        ));
    }

    #[test]
    fn missing_files_surface_as_dataset_errors() {
        let dir = Scratch::new("missing");
        fs::create_dir_all(&dir.0).expect("mkdir");
        assert!(matches!(DiskLabeledDataset::open(&dir.0), Err(DiskPairError::Dataset(_))));
    }
}
