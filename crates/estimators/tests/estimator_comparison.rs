//! Cross-estimator integration and property tests: every estimator must track
//! the known BER of synthetic tasks and respect the Lemma 2.1 noise
//! evolution at least qualitatively (the FeeBee evaluation protocol).

use proptest::prelude::*;
use snoopy_data::noise::{ber_after_uniform_noise, TransitionMatrix};
use snoopy_estimators::{
    cover_hart_lower_bound, default_estimators, estimate_all, estimate_all_with_backend,
    estimate_all_with_state, estimate_all_with_table, shared_neighbor_table,
    shared_neighbor_table_with_backend, shared_table_k, BerEstimator, EvalBackend, IncrementalTopK,
    KnnPosteriorEstimator, LabeledView, Metric, OneNnEstimator,
};
use snoopy_linalg::{rng, Matrix};
// Shared fixture: the Gaussian-mixture task with a Monte-Carlo true BER.
use snoopy_testutil::gaussian_task as make_task;

#[test]
fn all_estimators_are_close_on_a_moderate_task() {
    let task = make_task(4, 2.2, 7, 1500, 400);
    let train = LabeledView::new(&task.train_x, &task.train_y);
    let test = LabeledView::new(&task.test_x, &task.test_y);
    for est in default_estimators() {
        let value = est.estimate(&train, &test, task.num_classes);
        assert!(
            (value - task.true_ber).abs() < 0.12,
            "{}: estimate {value:.3} vs true BER {:.3}",
            est.name(),
            task.true_ber
        );
    }
}

#[test]
fn one_nn_estimator_is_a_lower_bound_on_easy_and_moderate_tasks() {
    for (seed, sep) in [(1u64, 4.0f64), (2, 2.5), (3, 1.8)] {
        let task = make_task(5, sep, seed, 1200, 400);
        let est = OneNnEstimator::default();
        let value = est.estimate(
            &LabeledView::new(&task.train_x, &task.train_y),
            &LabeledView::new(&task.test_x, &task.test_y),
            task.num_classes,
        );
        // Finite-sample effects push the estimate up, never below by much.
        assert!(
            value >= task.true_ber - 0.03,
            "sep {sep}: estimate {value:.3} clearly below true BER {:.3}",
            task.true_ber
        );
    }
}

#[test]
fn estimators_follow_the_lemma21_noise_evolution() {
    // Inject uniform noise and verify the 1NN estimate tracks the predicted
    // BER evolution (the FeeBee evaluation protocol).
    let task = make_task(4, 3.0, 11, 1500, 500);
    let est = OneNnEstimator::default();
    let mut r = rng::seeded(99);
    for rho in [0.0f64, 0.2, 0.4] {
        let t = TransitionMatrix::uniform(task.num_classes, rho);
        let noisy_train = t.apply(&task.train_y, &mut r);
        let noisy_test = t.apply(&task.test_y, &mut r);
        let estimate = est.estimate(
            &LabeledView::new(&task.train_x, &noisy_train),
            &LabeledView::new(&task.test_x, &noisy_test),
            task.num_classes,
        );
        let expected = ber_after_uniform_noise(task.true_ber, rho, task.num_classes);
        assert!(
            (estimate - expected).abs() < 0.10,
            "rho {rho}: estimate {estimate:.3}, Lemma 2.1 predicts {expected:.3}"
        );
    }
}

#[test]
fn knn_posterior_estimator_improves_with_larger_k() {
    let task = make_task(3, 1.6, 13, 2000, 500);
    let train = LabeledView::new(&task.train_x, &task.train_y);
    let test = LabeledView::new(&task.test_x, &task.test_y);
    let small_k = KnnPosteriorEstimator::new(1).estimate(&train, &test, 3);
    let large_k = KnnPosteriorEstimator::new(30).estimate(&train, &test, 3);
    // k = 1 collapses to the raw 1NN error which overestimates the BER;
    // a moderate k should land closer to the truth.
    let err_small = (small_k - task.true_ber).abs();
    let err_large = (large_k - task.true_ber).abs();
    assert!(
        err_large <= err_small + 0.02,
        "k=30 ({large_k:.3}) should beat k=1 ({small_k:.3}) wrt {:.3}",
        task.true_ber
    );
}

/// The shared-table fast path must agree with each estimator's
/// self-contained evaluation: same engine, same distances, same tie-breaks —
/// the table only amortises the neighbour computation.
#[test]
fn shared_table_estimates_equal_individual_estimates() {
    let task = make_task(3, 2.0, 23, 600, 150);
    let train = LabeledView::new(&task.train_x, &task.train_y);
    let test = LabeledView::new(&task.test_x, &task.test_y);
    let estimators = default_estimators();
    let shared = estimate_all(&estimators, &train, &test, task.num_classes);
    for (est, &via_table) in estimators.iter().zip(&shared) {
        let individual = est.estimate(&train, &test, task.num_classes);
        assert!(
            (via_table - individual).abs() < 1e-12,
            "{}: shared-table {via_table} != individual {individual}",
            est.name()
        );
    }
}

/// The growing-state path must be invisible to every estimator: a state
/// appended round by round yields, at each round, estimates bit-identical to
/// a cold `estimate_all` over the same prefix — across the rounds *and*
/// across relabelled (noisy) label sets read against the same state.
#[test]
fn growing_state_estimates_equal_cold_estimates_at_every_round() {
    let task = make_task(3, 2.0, 53, 600, 150);
    let estimators = default_estimators();
    let k_max = shared_table_k(&estimators);
    let mut state =
        IncrementalTopK::new(task.test_x.clone(), task.test_y.clone(), Metric::SquaredEuclidean, k_max);
    let mut r = rng::seeded(54);
    let mut consumed = 0usize;
    for round_n in [200usize, 400, 600] {
        state.append(task.train_x.view().slice_rows(consumed, round_n), &task.train_y[consumed..round_n]);
        consumed = round_n;
        for rho in [0.0f64, 0.3] {
            let t = TransitionMatrix::uniform(task.num_classes, rho);
            let noisy_train = t.apply(&task.train_y, &mut r);
            let noisy_test = t.apply(&task.test_y, &mut r);
            let train = LabeledView::new(&task.train_x, &noisy_train).prefix(round_n);
            let test = LabeledView::new(&task.test_x, &noisy_test);
            let via_state = estimate_all_with_state(&estimators, &state, &train, &test, task.num_classes);
            let cold = estimate_all(&estimators, &train, &test, task.num_classes);
            for ((est, &a), &b) in estimators.iter().zip(&via_state).zip(&cold) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} at round {round_n} rho {rho}: state {a} vs cold {b}",
                    est.name()
                );
            }
        }
    }
}

/// The clustered backend must be invisible to every estimator: tables and
/// estimates are bit-identical to the exhaustive path.
#[test]
fn clustered_backend_tables_and_estimates_are_bit_identical() {
    let task = make_task(3, 2.0, 41, 500, 120);
    let train = LabeledView::new(&task.train_x, &task.train_y);
    let test = LabeledView::new(&task.test_x, &task.test_y);
    let estimators = default_estimators();
    let k_max = shared_table_k(&estimators);
    let exhaustive =
        shared_neighbor_table_with_backend(train.features(), test.features(), k_max, EvalBackend::Exhaustive);
    let clustered = shared_neighbor_table_with_backend(
        train.features(),
        test.features(),
        k_max,
        EvalBackend::clustered(16),
    );
    assert_eq!(exhaustive, clustered, "shared tables must match bit for bit");
    let a = estimate_all_with_backend(&estimators, &train, &test, task.num_classes, EvalBackend::Exhaustive);
    let b =
        estimate_all_with_backend(&estimators, &train, &test, task.num_classes, EvalBackend::clustered(16));
    for ((est, &x), &y) in estimators.iter().zip(&a).zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{}: exhaustive {x} vs clustered {y}", est.name());
    }
}

#[test]
fn degenerate_empty_eval_split_through_shared_table() {
    let task = make_task(3, 2.0, 29, 120, 40);
    let train = LabeledView::new(&task.train_x, &task.train_y);
    let empty_x = Matrix::zeros(0, task.train_x.cols());
    let empty_y: Vec<u32> = vec![];
    let empty = LabeledView::new(&empty_x, &empty_y);
    let estimators = default_estimators();
    // Must not panic; every estimate stays a probability. The same holds when
    // an (unusual) caller hands the empty-eval table to the table path
    // directly.
    for value in estimate_all(&estimators, &train, &empty, task.num_classes) {
        assert!((0.0..=1.0).contains(&value), "estimate {value} out of range");
    }
    let table = shared_neighbor_table(train.features(), empty.features(), shared_table_k(&estimators));
    for value in estimate_all_with_table(&estimators, &table, &train, &empty, task.num_classes) {
        assert!((0.0..=1.0).contains(&value), "estimate {value} out of range");
    }
    // Empty train as well: the guarded path falls back to chance-level style
    // constants without touching the engine.
    for value in estimate_all(&estimators, &empty, &train, task.num_classes) {
        assert!((0.0..=1.0).contains(&value), "estimate {value} out of range");
    }
}

#[test]
fn degenerate_single_class_train_through_shared_table() {
    let task = make_task(3, 2.0, 31, 200, 60);
    let one_class = vec![1u32; task.train_y.len()];
    let train = LabeledView::new(&task.train_x, &one_class);
    let test = LabeledView::new(&task.test_x, &task.test_y);
    let estimators = default_estimators();
    let values = estimate_all(&estimators, &train, &test, task.num_classes);
    for (est, &value) in estimators.iter().zip(&values) {
        assert!((0.0..=1.0).contains(&value), "{}: estimate {value} out of range", est.name());
        // A single-class posterior is maximally confident: the plug-in risk
        // collapses to zero.
        if est.name() == "knn-posterior" {
            assert_eq!(value, 0.0);
        }
    }
}

#[test]
fn degenerate_k_exceeding_train_size_through_shared_table() {
    let task = make_task(2, 2.5, 37, 12, 30);
    let train = LabeledView::new(&task.train_x, &task.train_y);
    let test = LabeledView::new(&task.test_x, &task.test_y);
    let estimators: Vec<Box<dyn BerEstimator>> = vec![
        Box::new(OneNnEstimator::default()),
        Box::new(KnnPosteriorEstimator::new(500)), // k ≫ train.len()
    ];
    assert_eq!(shared_table_k(&estimators), 500);
    let values = estimate_all(&estimators, &train, &test, task.num_classes);
    for (est, &value) in estimators.iter().zip(&values) {
        assert!((0.0..=1.0).contains(&value), "{}: estimate {value} out of range", est.name());
        let individual = est.estimate(&train, &test, task.num_classes);
        assert!((value - individual).abs() < 1e-12, "{}: table/individual mismatch", est.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Cover–Hart correction never exceeds its input and stays in [0, 1].
    #[test]
    fn cover_hart_is_contractive(err in 0.0f64..1.0, c in 2usize..200) {
        let b = cover_hart_lower_bound(err, c);
        prop_assert!(b >= 0.0);
        prop_assert!(b <= err + 1e-12);
        prop_assert!(b <= 1.0);
    }

    /// Chaining Lemma 2.1 twice equals a single application with the composed
    /// noise level (the uniform-noise channel family is closed under
    /// composition).
    #[test]
    fn lemma21_composes(ber in 0.0f64..0.4, rho1 in 0.0f64..0.9, rho2 in 0.0f64..0.9, c in 2usize..50) {
        let step = ber_after_uniform_noise(ber_after_uniform_noise(ber, rho1, c), rho2, c);
        let combined_rho = 1.0 - (1.0 - rho1) * (1.0 - rho2);
        let direct = ber_after_uniform_noise(ber, combined_rho, c);
        prop_assert!((step - direct).abs() < 1e-9);
    }
}
