//! Devijver-style kNN posterior plug-in estimator ("1NN-kNN" / DE-kNN family).
//!
//! Devijver's multiclass kNN approach to Bayes-risk estimation approximates
//! the posterior at an evaluation point by the class frequencies among its
//! `k` nearest training neighbours and plugs that into the Bayes-risk
//! expression `E[1 − max_y p(y|x)]`. With `k → ∞`, `k/n → 0` this converges
//! to the true BER; with finite `k` it is a biased but useful baseline the
//! paper compares against.

use crate::{BerEstimator, LabeledView};
use snoopy_knn::{EvalEngine, Metric, NeighborTable};

/// kNN posterior plug-in estimator.
#[derive(Debug, Clone)]
pub struct KnnPosteriorEstimator {
    k: usize,
    metric: Metric,
}

impl KnnPosteriorEstimator {
    /// Creates an estimator using `k` neighbours and squared-Euclidean
    /// distance.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1), metric: Metric::SquaredEuclidean }
    }

    /// Creates an estimator with an explicit metric.
    pub fn with_metric(k: usize, metric: Metric) -> Self {
        Self { k: k.max(1), metric }
    }

    /// The number of neighbours consulted.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The plug-in Bayes-risk average `E[1 − max_y p̂(y|x)]` read off a
    /// neighbour table: the posterior at each eval point is the class
    /// frequency among the first `min(k, table.k())` stored neighbours.
    fn posterior_risk(&self, table: &NeighborTable, train_labels: &[u32], num_classes: usize) -> f64 {
        let k = self.k.min(table.k()).max(1);
        let mut counts = vec![0usize; num_classes];
        let mut acc = 0.0f64;
        for q in 0..table.num_queries() {
            counts.iter_mut().for_each(|c| *c = 0);
            let neighbors = table.neighbors_k(q, k);
            for hit in neighbors {
                counts[train_labels[hit.index] as usize] += 1;
            }
            let max_frac = counts.iter().copied().max().unwrap_or(0) as f64 / neighbors.len() as f64;
            acc += 1.0 - max_frac;
        }
        acc / table.num_queries() as f64
    }
}

impl BerEstimator for KnnPosteriorEstimator {
    fn name(&self) -> &'static str {
        "knn-posterior"
    }

    fn estimate(&self, train: &LabeledView<'_>, eval: &LabeledView<'_>, num_classes: usize) -> f64 {
        if train.is_empty() || eval.is_empty() {
            return 1.0 - 1.0 / num_classes as f64;
        }
        let table = EvalEngine::parallel().topk(
            train.features(),
            eval.features(),
            self.metric,
            self.k.min(train.len()),
        );
        self.posterior_risk(&table, train.labels(), num_classes)
    }

    fn table_k(&self) -> usize {
        // Only the exact shared metric may read the table: Euclidean ranks
        // like squared Euclidean in real arithmetic, but f32 sqrt can
        // collapse two distinct squared distances into an exact tie and
        // flip the lowest-index tie-break, breaking the documented
        // estimate == estimate_with_table parity.
        match self.metric {
            Metric::SquaredEuclidean => self.k,
            Metric::Euclidean | Metric::Cosine => 0,
        }
    }

    fn estimate_with_table(
        &self,
        table: &NeighborTable,
        train: &LabeledView<'_>,
        eval: &LabeledView<'_>,
        num_classes: usize,
    ) -> f64 {
        if train.is_empty() || eval.is_empty() {
            return 1.0 - 1.0 / num_classes as f64;
        }
        self.posterior_risk(table, train.labels(), num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use snoopy_linalg::{rng, Matrix};

    /// Binary task with a tunable overlap so the true BER is known
    /// analytically: two unit-variance Gaussians at ±mu/2 in 1-D (embedded in
    /// 2-D), BER = Φ(−mu/2).
    fn gaussian_pair(n: usize, mu: f64, seed: u64) -> (Matrix, Vec<u32>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = r.gen_range(0..2u32);
            let center = if c == 0 { -mu / 2.0 } else { mu / 2.0 };
            rows.push(vec![rng::normal_with(&mut r, center, 1.0) as f32, rng::normal(&mut r) as f32 * 0.01]);
            labels.push(c);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn estimate_tracks_known_bayes_error() {
        let mu = 2.0;
        let true_ber = snoopy_linalg::stats::normal_cdf(-mu / 2.0); // ≈ 0.1587
        let (tx, ty) = gaussian_pair(2500, mu, 1);
        let (qx, qy) = gaussian_pair(600, mu, 2);
        let est = KnnPosteriorEstimator::new(25);
        let value = est.estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 2);
        assert!((value - true_ber).abs() < 0.06, "estimate {value}, true {true_ber}");
    }

    #[test]
    fn separable_task_gives_near_zero() {
        let (tx, ty) = gaussian_pair(800, 10.0, 3);
        let (qx, qy) = gaussian_pair(200, 10.0, 4);
        let est = KnnPosteriorEstimator::new(15);
        let value = est.estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 2);
        assert!(value < 0.02, "estimate {value}");
    }

    #[test]
    fn k_is_clamped_to_training_size() {
        let (tx, ty) = gaussian_pair(10, 3.0, 5);
        let (qx, qy) = gaussian_pair(5, 3.0, 6);
        let est = KnnPosteriorEstimator::new(500);
        // Must not panic; with k = n the posterior estimate equals the class
        // priors, so the value is close to 1 - max prior (≈ 0.5 here).
        let value = est.estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 2);
        assert!((0.0..=0.6).contains(&value));
        assert_eq!(est.k(), 500);
    }

    #[test]
    fn empty_train_returns_chance_level() {
        let empty = Matrix::zeros(0, 2);
        let no_labels: Vec<u32> = vec![];
        let (qx, qy) = gaussian_pair(10, 2.0, 7);
        let est = KnnPosteriorEstimator::new(5);
        let value = est.estimate(&LabeledView::new(&empty, &no_labels), &LabeledView::new(&qx, &qy), 4);
        assert!((value - 0.75).abs() < 1e-12);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(KnnPosteriorEstimator::new(3).name(), "knn-posterior");
    }
}
