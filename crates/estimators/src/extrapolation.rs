//! Finite-sample extrapolation of 1NN convergence curves.
//!
//! Section IV-C of the paper supports the binary REALISTIC/UNREALISTIC signal
//! with two numeric aids derived from the convergence curve
//! `(n, (R_X)_{n,1})`:
//!
//! * a log-linear fit `log((R_X)_{n,k}) ≈ −α log(n) + C` (Eq. 10), motivated
//!   by neural scaling laws, used to (i) extrapolate the error a short way
//!   beyond the available data and (ii) estimate how many *additional*
//!   samples would be needed to reach the target accuracy,
//! * a Snapp–Xu-style power-law fit `err(n) ≈ e_∞ + a·n^(−2/d)` whose
//!   intercept estimates the asymptotic 1NN error (the quantity the
//!   Cover–Hart correction should really be applied to).
//!
//! Both fits warn (via `reliable()` / documented caveats) when asked to
//! extrapolate far beyond the observed range: the log-linear form converges
//! to zero, so sufficiently large `n` makes *any* target look reachable
//! (Fig. 7/8 discussion).

use snoopy_linalg::stats;

/// Cap on the fitted `ln(n)` beyond which [`LogLinearFit::samples_to_reach`]
/// refuses to extrapolate: `e^27.6 ≈ 9.7 × 10^11`, i.e. roughly a trillion
/// samples. Past that point the answer is "not by adding data" — the
/// log-linear form of Eq. 10 converges to zero eventually, so sufficiently
/// large `n` makes *any* target look reachable, and such extrapolations are
/// artefacts rather than guidance (the paper's Fig. 7/8 discussion).
pub const MAX_EXTRAPOLATION_LN_N: f64 = 27.6;

/// Log-linear fit of a convergence curve (Eq. 10).
#[derive(Debug, Clone)]
pub struct LogLinearFit {
    /// Decay exponent `α` (non-negative for decreasing curves).
    pub alpha: f64,
    /// Intercept `C` of the fit in log-log space.
    pub intercept: f64,
    /// Goodness of fit (R²) in log-log space.
    pub r_squared: f64,
    /// Largest sample size observed during fitting.
    pub max_observed_n: usize,
}

impl LogLinearFit {
    /// Fits Eq. 10 on a curve of `(training samples, error)` points. Points
    /// with non-positive error are clamped to a small floor so the log is
    /// defined (a zero finite-sample error genuinely provides no decay
    /// information).
    ///
    /// # Panics
    /// Panics if fewer than two curve points are provided.
    pub fn fit(curve: &[(usize, f64)]) -> Self {
        assert!(curve.len() >= 2, "need at least two curve points to fit Eq. 10");
        let xs: Vec<f64> = curve.iter().map(|&(n, _)| (n.max(1) as f64).ln()).collect();
        let ys: Vec<f64> = curve.iter().map(|&(_, e)| e.max(1e-6).ln()).collect();
        let (slope, intercept) = stats::linear_fit(&xs, &ys);
        let r2 = stats::r_squared(&xs, &ys, slope, intercept);
        let max_n = curve.iter().map(|&(n, _)| n).max().unwrap_or(1);
        Self { alpha: -slope, intercept, r_squared: r2, max_observed_n: max_n }
    }

    /// Predicted error at training-set size `n`.
    pub fn predict_error(&self, n: usize) -> f64 {
        ((-self.alpha) * (n.max(1) as f64).ln() + self.intercept).exp().clamp(0.0, 1.0)
    }

    /// Number of training samples needed for the predicted error to drop to
    /// `target_error`. Returns `None` when the fitted curve is flat or
    /// increasing (`α ≤ 0`), the target is already met at the observed
    /// size, or the required size exceeds [`MAX_EXTRAPOLATION_LN_N`].
    pub fn samples_to_reach(&self, target_error: f64) -> Option<usize> {
        if self.alpha <= 1e-9 {
            return None;
        }
        let target = target_error.max(1e-6);
        if self.predict_error(self.max_observed_n) <= target {
            return Some(self.max_observed_n);
        }
        let ln_n = (self.intercept - target.ln()) / self.alpha;
        if !ln_n.is_finite() || ln_n > MAX_EXTRAPOLATION_LN_N {
            return None;
        }
        Some(ln_n.exp().ceil() as usize)
    }

    /// Additional samples (beyond the observed maximum) needed to reach the
    /// target error.
    pub fn additional_samples_to_reach(&self, target_error: f64) -> Option<usize> {
        self.samples_to_reach(target_error).map(|n| n.saturating_sub(self.max_observed_n))
    }

    /// Whether the extrapolation should be trusted: the fit explains the curve
    /// well and the requested sample size is within `max_factor` of the
    /// observed range (the paper's Fig. 8 shows extrapolations beyond a small
    /// multiple of the data quickly become wishful thinking).
    pub fn reliable(&self, n: usize, max_factor: f64) -> bool {
        self.r_squared > 0.6 && (n as f64) <= max_factor * self.max_observed_n as f64
    }
}

/// Snapp–Xu-style power-law fit `err(n) ≈ e_∞ + a · n^(−2/d)`.
#[derive(Debug, Clone)]
pub struct PowerLawFit {
    /// Estimated asymptotic error `e_∞`.
    pub asymptote: f64,
    /// Coefficient of the decaying term.
    pub coefficient: f64,
    /// Exponent used (`2/d` by default).
    pub exponent: f64,
}

impl PowerLawFit {
    /// Fits the power law with exponent `2/d` by ordinary least squares in the
    /// transformed variable `u = n^(−2/d)`.
    ///
    /// # Panics
    /// Panics if fewer than two points are provided or `dim == 0`.
    pub fn fit(curve: &[(usize, f64)], dim: usize) -> Self {
        assert!(curve.len() >= 2, "need at least two curve points");
        assert!(dim >= 1, "dimension must be positive");
        let exponent = 2.0 / dim as f64;
        let us: Vec<f64> = curve.iter().map(|&(n, _)| (n.max(1) as f64).powf(-exponent)).collect();
        let ys: Vec<f64> = curve.iter().map(|&(_, e)| e).collect();
        let (slope, intercept) = stats::linear_fit(&us, &ys);
        Self { asymptote: intercept.clamp(0.0, 1.0), coefficient: slope, exponent }
    }

    /// Predicted error at size `n`.
    pub fn predict_error(&self, n: usize) -> f64 {
        (self.asymptote + self.coefficient * (n.max(1) as f64).powf(-self.exponent)).clamp(0.0, 1.0)
    }

    /// Estimated asymptotic (infinite-sample) 1NN error.
    pub fn asymptotic_error(&self) -> f64 {
        self.asymptote
    }
}

/// The kNN-extrapolation estimator (Snapp & Xu): evaluate the 1NN error on a
/// ladder of training-set prefixes, fit the `e_∞ + a·n^(−2/d)` power law, and
/// apply the Cover–Hart correction to the extrapolated asymptote. This is the
/// "kNN-Extrapolation" family of Section II; the paper (and FeeBee) note that
/// the number of samples needed for a reliable fit grows exponentially with
/// the dimension, which is why it is a baseline rather than Snoopy's choice.
///
/// The whole ladder costs **one** appended pass over the full training set:
/// the rungs are nested prefixes, so the curve is exactly the convergence
/// curve of an [`IncrementalTopK`](snoopy_knn::IncrementalTopK) fed the rows
/// rung-by-rung — each rung is a snapshot of the one growing state, and the
/// per-rung error is bit-identical to recomputing the prefix cold. When a
/// shared [`NeighborTable`](crate::NeighborTable) is available, the final
/// rung (the full training set) is read from it instead, roughly halving the
/// appended distance work.
#[derive(Debug, Clone)]
pub struct KnnExtrapolationEstimator {
    /// Number of prefix sizes evaluated (log-spaced up to the full set).
    pub ladder_steps: usize,
}

impl Default for KnnExtrapolationEstimator {
    fn default() -> Self {
        Self { ladder_steps: 5 }
    }
}

impl KnnExtrapolationEstimator {
    /// The log-spaced ladder of prefix sizes: strictly increasing, between
    /// `~n / 2^(steps−1)` and `n` inclusive.
    fn ladder(&self, n: usize) -> Vec<usize> {
        let steps = self.ladder_steps.max(2);
        let mut sizes = Vec::with_capacity(steps);
        for s in 1..=steps {
            let size = ((n as f64) / 2f64.powi((steps - s) as i32)).round() as usize;
            let size = size.clamp(2, n);
            if sizes.last() != Some(&size) {
                sizes.push(size);
            }
        }
        sizes
    }

    /// The `(prefix size, 1NN eval error)` convergence curve: one
    /// [`IncrementalTopK`](snoopy_knn::IncrementalTopK) grown rung by rung —
    /// every rung is a snapshot of the same appended state, never a cold
    /// rebuild. `final_from_table` supplies the last rung from a precomputed
    /// (train → eval) neighbour table.
    fn convergence_curve(
        &self,
        train: &crate::LabeledView<'_>,
        eval: &crate::LabeledView<'_>,
        final_from_table: Option<&crate::NeighborTable>,
    ) -> Vec<(usize, f64)> {
        use snoopy_knn::IncrementalTopK;
        let sizes = self.ladder(train.len());
        let mut curve = Vec::with_capacity(sizes.len());
        let mut consumed = 0usize;
        let mut state = IncrementalTopK::new(
            eval.features().to_matrix(),
            eval.labels().to_vec(),
            crate::Metric::SquaredEuclidean,
            1,
        );
        for &n in &sizes {
            if n == train.len() {
                if let Some(table) = final_from_table {
                    curve.push((n, table.one_nn_error(train.labels(), eval.labels())));
                    continue;
                }
            }
            let rung = train.features().slice_rows(consumed, n);
            let err = state.append(rung, &train.labels()[consumed..n]);
            consumed = n;
            curve.push((n, err));
        }
        curve
    }

    /// Fits the power law to the curve and applies the Cover–Hart correction.
    fn fit_and_correct(curve: &[(usize, f64)], dim: usize, num_classes: usize) -> f64 {
        use crate::cover_hart::cover_hart_lower_bound;
        if curve.len() < 2 {
            let err = curve.first().map(|&(_, e)| e).unwrap_or(1.0);
            return cover_hart_lower_bound(err, num_classes);
        }
        let fit = PowerLawFit::fit(curve, dim.max(1));
        cover_hart_lower_bound(fit.asymptotic_error(), num_classes)
    }
}

impl crate::BerEstimator for KnnExtrapolationEstimator {
    fn name(&self) -> &'static str {
        "knn-extrapolation"
    }

    fn estimate(
        &self,
        train: &crate::LabeledView<'_>,
        eval: &crate::LabeledView<'_>,
        num_classes: usize,
    ) -> f64 {
        if train.len() < 4 || eval.is_empty() {
            return 1.0 - 1.0 / num_classes as f64;
        }
        let curve = self.convergence_curve(train, eval, None);
        Self::fit_and_correct(&curve, eval.dim(), num_classes)
    }

    fn table_k(&self) -> usize {
        1
    }

    fn estimate_with_table(
        &self,
        table: &crate::NeighborTable,
        train: &crate::LabeledView<'_>,
        eval: &crate::LabeledView<'_>,
        num_classes: usize,
    ) -> f64 {
        if train.len() < 4 || eval.is_empty() {
            return 1.0 - 1.0 / num_classes as f64;
        }
        let curve = self.convergence_curve(train, eval, Some(table));
        Self::fit_and_correct(&curve, eval.dim(), num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic curve following exactly err = exp(C) * n^(-alpha).
    fn log_linear_curve(alpha: f64, c: f64, sizes: &[usize]) -> Vec<(usize, f64)> {
        sizes.iter().map(|&n| (n, (c - alpha * (n as f64).ln()).exp())).collect()
    }

    #[test]
    fn log_linear_fit_recovers_parameters() {
        let curve = log_linear_curve(0.35, -0.4, &[100, 200, 400, 800, 1600, 3200]);
        let fit = LogLinearFit::fit(&curve);
        assert!((fit.alpha - 0.35).abs() < 1e-6, "alpha {}", fit.alpha);
        assert!((fit.intercept + 0.4).abs() < 1e-6);
        assert!(fit.r_squared > 0.999);
        assert_eq!(fit.max_observed_n, 3200);
    }

    #[test]
    fn prediction_and_samples_to_reach_are_consistent() {
        let curve = log_linear_curve(0.5, 0.0, &[100, 200, 400, 800]);
        let fit = LogLinearFit::fit(&curve);
        let target = 0.02;
        let needed = fit.samples_to_reach(target).unwrap();
        let predicted = fit.predict_error(needed);
        assert!(predicted <= target * 1.05, "error at recommended n: {predicted}");
        // A point just below should not reach the target.
        let before = fit.predict_error((needed as f64 * 0.8) as usize);
        assert!(before > target);
        let extra = fit.additional_samples_to_reach(target).unwrap();
        assert_eq!(extra, needed - 800);
    }

    #[test]
    fn flat_curve_gives_no_extrapolation() {
        let curve = vec![(100, 0.3), (200, 0.3), (400, 0.3)];
        let fit = LogLinearFit::fit(&curve);
        assert!(fit.alpha.abs() < 1e-9);
        assert!(fit.samples_to_reach(0.1).is_none());
    }

    #[test]
    fn already_reached_target_returns_observed_size() {
        let curve = log_linear_curve(0.5, 0.0, &[100, 400, 1600]);
        let fit = LogLinearFit::fit(&curve);
        // Error at 1600 is exp(-0.5*ln 1600) = 1/40 = 0.025.
        assert_eq!(fit.samples_to_reach(0.05), Some(1600));
    }

    #[test]
    fn reliability_flags_large_extrapolations() {
        let curve = log_linear_curve(0.4, 0.0, &[100, 200, 400]);
        let fit = LogLinearFit::fit(&curve);
        assert!(fit.reliable(800, 5.0));
        assert!(!fit.reliable(400_000, 5.0));
    }

    #[test]
    fn unreachable_targets_return_none() {
        let curve = log_linear_curve(0.05, 0.0, &[100, 200, 400]);
        let fit = LogLinearFit::fit(&curve);
        // With alpha = 0.05, reaching 1e-4 needs n ≈ e^{184}, far past the cap.
        assert!(fit.samples_to_reach(1e-4).is_none());
    }

    #[test]
    fn power_law_fit_recovers_asymptote() {
        let dim = 4;
        let exponent = 2.0 / dim as f64;
        let curve: Vec<(usize, f64)> = [50usize, 100, 200, 400, 800, 1600]
            .iter()
            .map(|&n| (n, 0.12 + 0.8 * (n as f64).powf(-exponent)))
            .collect();
        let fit = PowerLawFit::fit(&curve, dim);
        assert!((fit.asymptotic_error() - 0.12).abs() < 1e-6, "asymptote {}", fit.asymptote);
        assert!((fit.coefficient - 0.8).abs() < 1e-6);
        assert!((fit.predict_error(1_000_000) - 0.12).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least two curve points")]
    fn fit_requires_two_points() {
        let _ = LogLinearFit::fit(&[(100, 0.5)]);
    }

    #[test]
    fn knn_extrapolation_estimator_tracks_a_known_task() {
        use crate::{BerEstimator, LabeledView};
        use rand::Rng;
        use snoopy_linalg::{rng, Matrix};
        // Two 1-D Gaussians with known BER = Phi(-mu/2).
        let mu = 2.0;
        let true_ber = snoopy_linalg::stats::normal_cdf(-mu / 2.0);
        let mut r = rng::seeded(3);
        let mut sample = |n: usize| {
            let mut rows = Vec::with_capacity(n);
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                let c = r.gen_range(0..2u32);
                let center = if c == 0 { -mu / 2.0 } else { mu / 2.0 };
                rows.push(vec![
                    rng::normal_with(&mut r, center, 1.0) as f32,
                    rng::normal(&mut r) as f32 * 0.01,
                ]);
                labels.push(c);
            }
            (Matrix::from_rows(&rows), labels)
        };
        let (train_x, train_y) = sample(1600);
        let (test_x, test_y) = sample(400);
        let est = KnnExtrapolationEstimator::default();
        assert_eq!(est.name(), "knn-extrapolation");
        let value =
            est.estimate(&LabeledView::new(&train_x, &train_y), &LabeledView::new(&test_x, &test_y), 2);
        assert!((value - true_ber).abs() < 0.08, "estimate {value:.3} vs true {true_ber:.3}");
    }

    #[test]
    fn knn_extrapolation_handles_tiny_inputs() {
        use crate::{BerEstimator, LabeledView};
        use snoopy_linalg::Matrix;
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let y = vec![0u32, 1];
        let est = KnnExtrapolationEstimator::default();
        let value = est.estimate(&LabeledView::new(&x, &y), &LabeledView::new(&x, &y), 2);
        assert!((0.0..=1.0).contains(&value));
    }
}
