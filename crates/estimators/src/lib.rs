//! # snoopy-estimators
//!
//! Bayes error rate (BER) estimators.
//!
//! The paper groups existing BER estimators into density estimators (KDE,
//! DE-kNN), divergence estimators (GHP), and kNN-classifier-accuracy
//! estimators (1NN-kNN, kNN-extrapolation, and the Cover–Hart 1NN bound that
//! Snoopy ultimately builds on). This crate implements one representative of
//! each family behind a common [`BerEstimator`] trait so the FeeBee-style
//! comparison of Section II-A can be reproduced, plus the finite-sample
//! extrapolation tooling of Section IV-C (Eq. 10).
//!
//! ## The `NeighborTable` handshake
//!
//! No estimator performs its own per-query distance scans: every distance is
//! computed by the blocked, chunk-parallel
//! [`EvalEngine`](snoopy_knn::EvalEngine) in `snoopy-knn`. The kNN-family
//! estimators consume a query-major [`NeighborTable`] — Cover–Hart reads each
//! eval point's first hit, Devijver's posterior plug-in reads a `k`-prefix,
//! and kNN-extrapolation reads the final rung of its convergence ladder from
//! the table (the earlier rungs are snapshots of one
//! [`IncrementalTopK`] grown rung by rung). Because per-query lists are
//! sorted, one table computed at
//! `k_max = max(`[`BerEstimator::table_k`]`)` serves *all* of them by prefix:
//! [`estimate_all`] computes that table once per (train, eval) pair — and
//! the growing-state callers (`exp_estimators`, the estimator-comparison
//! example) go further with [`estimate_all_with_state`]: one
//! [`IncrementalTopK`] per (transformation, split) is **appended** as the
//! training prefix grows round over round and merely re-snapshotted per
//! round *and* per label-noise level, since neighbours depend only on
//! features.
//! GHP and KDE do not rank neighbours, but their dense distance work routes
//! through the same engine kernels (blocked Prim relaxations and per-class
//! Gaussian kernel accumulation, respectively).
//!
//! Table construction is backend-dispatched ([`EvalBackend`]): large
//! training splits are answered by the exact-pruned clustered index in
//! `snoopy-knn` (k-means coarse partition + triangle-inequality pruning),
//! small ones by the exhaustive engine — the resulting tables are
//! bit-identical, so every estimate is too. [`shared_neighbor_table`] and
//! [`estimate_all`] auto-select by train size; the `_with_backend` variants
//! force a path.
//!
//! All estimators receive a training view and a held-out evaluation view;
//! estimators that conceptually use a single sample (GHP, KDE fitted on
//! train and evaluated on train) simply ignore or pool the views as their
//! definition dictates.

pub mod cover_hart;
pub mod devijver;
pub mod extrapolation;
pub mod ghp;
pub mod kde;

/// The shared zero-copy labelled view every estimator consumes. This crate
/// used to define its own view struct; it now speaks the same
/// [`snoopy_linalg::LabeledView`] handshake as the kNN engine, the
/// feasibility study, and the experiment binaries.
pub use snoopy_linalg::LabeledView;

pub use snoopy_knn::{EvalBackend, EvalEngine, IncrementalTopK, Metric, NeighborTable};

/// A Bayes-error estimator.
pub trait BerEstimator: Send + Sync {
    /// Short name used in reports (e.g. `"1nn-cover-hart"`).
    fn name(&self) -> &'static str;

    /// Estimates the Bayes error of the task from a training sample and a
    /// held-out evaluation sample.
    fn estimate(&self, train: &LabeledView<'_>, eval: &LabeledView<'_>, num_classes: usize) -> f64;

    /// Number of neighbours per eval point this estimator can consume from a
    /// shared squared-Euclidean [`NeighborTable`] over (train → eval).
    /// `0` (the default) means the estimator does not rank neighbours and the
    /// shared table is not offered to it.
    fn table_k(&self) -> usize {
        0
    }

    /// Estimates from a precomputed neighbour table over (train → eval),
    /// consuming a `table_k()`-prefix of each per-query list. Only called
    /// when [`BerEstimator::table_k`] is positive and the table's distances
    /// rank like this estimator's metric; the default falls back to a
    /// self-contained [`BerEstimator::estimate`].
    fn estimate_with_table(
        &self,
        _table: &NeighborTable,
        train: &LabeledView<'_>,
        eval: &LabeledView<'_>,
        num_classes: usize,
    ) -> f64 {
        self.estimate(train, eval, num_classes)
    }
}

/// The largest table prefix any of `estimators` can consume (0 when none of
/// them uses the shared table).
pub fn shared_table_k(estimators: &[Box<dyn BerEstimator>]) -> usize {
    estimators.iter().map(|e| e.table_k()).max().unwrap_or(0)
}

/// Computes the shared squared-Euclidean neighbour table: the `k_max` nearest
/// training rows of every eval row, by the parallel engine. Neighbours depend
/// only on features, so one table serves every relabelling of the same
/// (transformation, split) pair. The evaluation backend is auto-selected by
/// the train-size heuristic ([`EvalBackend::auto_for`]): large training
/// splits route through the exact-pruned clustered index, small ones through
/// the exhaustive kernel — the table is bit-identical either way.
pub fn shared_neighbor_table(
    train: snoopy_linalg::DatasetView<'_>,
    eval: snoopy_linalg::DatasetView<'_>,
    k_max: usize,
) -> NeighborTable {
    let backend = EvalBackend::auto_for(train.rows(), eval.rows(), Metric::SquaredEuclidean);
    shared_neighbor_table_with_backend(train, eval, k_max, backend)
}

/// [`shared_neighbor_table`] with an explicit [`EvalBackend`] (e.g. to force
/// the clustered path in a parity test, or the exhaustive path in a timing
/// baseline).
pub fn shared_neighbor_table_with_backend(
    train: snoopy_linalg::DatasetView<'_>,
    eval: snoopy_linalg::DatasetView<'_>,
    k_max: usize,
    backend: EvalBackend,
) -> NeighborTable {
    EvalEngine::parallel().topk_with_backend(train, eval, Metric::SquaredEuclidean, k_max, backend)
}

/// Evaluates every estimator against one precomputed shared table: table
/// consumers ([`BerEstimator::table_k`] `> 0`) read their prefix of it, the
/// rest estimate self-contained.
pub fn estimate_all_with_table(
    estimators: &[Box<dyn BerEstimator>],
    table: &NeighborTable,
    train: &LabeledView<'_>,
    eval: &LabeledView<'_>,
    num_classes: usize,
) -> Vec<f64> {
    estimators
        .iter()
        .map(|e| {
            if e.table_k() > 0 {
                e.estimate_with_table(table, train, eval, num_classes)
            } else {
                e.estimate(train, eval, num_classes)
            }
        })
        .collect()
}

/// Evaluates every estimator against a *growing* incremental state: the
/// state's current [`NeighborTable`] snapshot (bit-identical to a cold
/// build over the rows appended so far) is shared by all kNN-family
/// estimators, the rest estimate self-contained. Callers that sweep
/// training-set *rounds* and label-noise levels hold one state per
/// (transformation, split), append per round, and call this per
/// (round, noise) cell — no neighbour is ever recomputed. `train` must be
/// the labelled view of exactly the rows appended so far.
///
/// # Panics
/// Panics if the state's capacity [`IncrementalTopK::k`] is below
/// [`shared_table_k`] (an undersized state would silently clamp
/// k-consuming estimators to shorter prefixes, breaking the
/// bit-identical-to-cold contract) or if `train` does not cover exactly
/// the appended rows.
pub fn estimate_all_with_state(
    estimators: &[Box<dyn BerEstimator>],
    state: &IncrementalTopK,
    train: &LabeledView<'_>,
    eval: &LabeledView<'_>,
    num_classes: usize,
) -> Vec<f64> {
    assert_eq!(state.consumed(), train.len(), "train view must cover exactly the appended rows");
    assert_eq!(state.test_len(), eval.len(), "eval view must match the state's query split");
    assert!(
        state.k() >= shared_table_k(estimators),
        "state capacity k = {} is below the estimators' shared_table_k = {} — k-consuming \
         estimators would silently read a truncated prefix",
        state.k(),
        shared_table_k(estimators)
    );
    let table = state.table();
    estimate_all_with_table(estimators, &table, train, eval, num_classes)
}

/// Evaluates every estimator, computing the neighbour table once at
/// `k_max = ` [`shared_table_k`] and sharing it across all kNN-family
/// estimators — the amortisation the FeeBee-style comparison relies on.
pub fn estimate_all(
    estimators: &[Box<dyn BerEstimator>],
    train: &LabeledView<'_>,
    eval: &LabeledView<'_>,
    num_classes: usize,
) -> Vec<f64> {
    let backend = EvalBackend::auto_for(train.len(), eval.len(), Metric::SquaredEuclidean);
    estimate_all_with_backend(estimators, train, eval, num_classes, backend)
}

/// [`estimate_all`] with an explicit [`EvalBackend`] for the shared table:
/// both backends produce bit-identical tables, so every estimate is
/// identical too — the backend only decides how much scan work the table
/// construction skips.
pub fn estimate_all_with_backend(
    estimators: &[Box<dyn BerEstimator>],
    train: &LabeledView<'_>,
    eval: &LabeledView<'_>,
    num_classes: usize,
    backend: EvalBackend,
) -> Vec<f64> {
    let k_max = shared_table_k(estimators);
    if k_max == 0 || train.is_empty() || eval.is_empty() {
        return estimators.iter().map(|e| e.estimate(train, eval, num_classes)).collect();
    }
    let table = shared_neighbor_table_with_backend(train.features(), eval.features(), k_max, backend);
    estimate_all_with_table(estimators, &table, train, eval, num_classes)
}

/// The default collection of estimators used in the FeeBee-style comparison
/// experiment (`exp_estimators`).
pub fn default_estimators() -> Vec<Box<dyn BerEstimator>> {
    vec![
        Box::new(cover_hart::OneNnEstimator::default()),
        Box::new(devijver::KnnPosteriorEstimator::new(10)),
        Box::new(ghp::GhpEstimator::default()),
        Box::new(kde::KdeEstimator::default()),
        Box::new(extrapolation::KnnExtrapolationEstimator::default()),
    ]
}

pub use cover_hart::{cover_hart_lower_bound, OneNnEstimator};
pub use devijver::KnnPosteriorEstimator;
pub use extrapolation::{KnnExtrapolationEstimator, LogLinearFit, PowerLawFit};
pub use ghp::GhpEstimator;
pub use kde::KdeEstimator;
