//! # snoopy-estimators
//!
//! Bayes error rate (BER) estimators.
//!
//! The paper groups existing BER estimators into density estimators (KDE,
//! DE-kNN), divergence estimators (GHP), and kNN-classifier-accuracy
//! estimators (1NN-kNN, kNN-extrapolation, and the Cover–Hart 1NN bound that
//! Snoopy ultimately builds on). This crate implements one representative of
//! each family behind a common [`BerEstimator`] trait so the FeeBee-style
//! comparison of Section II-A can be reproduced, plus the finite-sample
//! extrapolation tooling of Section IV-C (Eq. 10).
//!
//! All estimators receive a training view and a held-out evaluation view;
//! estimators that conceptually use a single sample (GHP, KDE fitted on
//! train and evaluated on train) simply ignore or pool the views as their
//! definition dictates.

pub mod cover_hart;
pub mod devijver;
pub mod extrapolation;
pub mod ghp;
pub mod kde;

/// The shared zero-copy labelled view every estimator consumes. This crate
/// used to define its own view struct; it now speaks the same
/// [`snoopy_linalg::LabeledView`] handshake as the kNN engine, the
/// feasibility study, and the experiment binaries.
pub use snoopy_linalg::LabeledView;

/// A Bayes-error estimator.
pub trait BerEstimator: Send + Sync {
    /// Short name used in reports (e.g. `"1nn-cover-hart"`).
    fn name(&self) -> &'static str;

    /// Estimates the Bayes error of the task from a training sample and a
    /// held-out evaluation sample.
    fn estimate(&self, train: &LabeledView<'_>, eval: &LabeledView<'_>, num_classes: usize) -> f64;
}

/// The default collection of estimators used in the FeeBee-style comparison
/// experiment (`exp_estimators`).
pub fn default_estimators() -> Vec<Box<dyn BerEstimator>> {
    vec![
        Box::new(cover_hart::OneNnEstimator::default()),
        Box::new(devijver::KnnPosteriorEstimator::new(10)),
        Box::new(ghp::GhpEstimator::default()),
        Box::new(kde::KdeEstimator::default()),
        Box::new(extrapolation::KnnExtrapolationEstimator::default()),
    ]
}

pub use cover_hart::{cover_hart_lower_bound, OneNnEstimator};
pub use devijver::KnnPosteriorEstimator;
pub use extrapolation::{KnnExtrapolationEstimator, LogLinearFit, PowerLawFit};
pub use ghp::GhpEstimator;
pub use kde::KdeEstimator;
