//! Kernel-density-estimation plug-in BER estimator (Fukunaga & Hummels' KDE
//! family).
//!
//! Class-conditional densities are estimated with isotropic Gaussian kernels
//! (Scott's-rule bandwidth), the posterior is formed from the density
//! estimates and the empirical class priors, and the Bayes error is the
//! average of `1 − max_y p̂(y|x)` over the evaluation points. The per-class
//! kernel sums — the estimator's `O(train × eval)` hot loop — run through
//! the engine's blocked, chunk-parallel
//! [`class_kernel_log_sums`](snoopy_knn::EvalEngine::class_kernel_log_sums)
//! accumulation (an online log-sum-exp per (eval point, class)) instead of a
//! serial per-query scan. KDE suffers badly from the curse of
//! dimensionality — which is precisely why the paper (and FeeBee) find the
//! 1NN estimator over trained embeddings preferable — but it remains the
//! canonical density-estimation baseline.

use crate::{BerEstimator, LabeledView};
use snoopy_knn::EvalEngine;
use snoopy_linalg::stats;

/// KDE plug-in estimator.
#[derive(Debug, Clone)]
pub struct KdeEstimator {
    /// Multiplier applied to the Scott's-rule bandwidth.
    bandwidth_scale: f64,
}

impl Default for KdeEstimator {
    fn default() -> Self {
        Self { bandwidth_scale: 1.0 }
    }
}

impl KdeEstimator {
    /// Creates a KDE estimator with a custom bandwidth multiplier.
    pub fn new(bandwidth_scale: f64) -> Self {
        assert!(bandwidth_scale > 0.0, "bandwidth scale must be positive");
        Self { bandwidth_scale }
    }

    /// Scott's-rule bandwidth for `n` samples in `d` dimensions with average
    /// per-feature standard deviation `sigma`.
    pub fn scott_bandwidth(n: usize, d: usize, sigma: f64) -> f64 {
        let n = n.max(2) as f64;
        let d = d.max(1) as f64;
        (sigma.max(1e-6)) * n.powf(-1.0 / (d + 4.0))
    }
}

impl BerEstimator for KdeEstimator {
    fn name(&self) -> &'static str {
        "kde-plugin"
    }

    fn estimate(&self, train: &LabeledView<'_>, eval: &LabeledView<'_>, num_classes: usize) -> f64 {
        if train.is_empty() || eval.is_empty() {
            return 1.0 - 1.0 / num_classes as f64;
        }
        let d = train.dim();
        let sigma = stats::mean(&train.features().column_stds());
        let h = Self::scott_bandwidth(train.len(), d, sigma) * self.bandwidth_scale;
        let inv_two_h2 = 1.0 / (2.0 * h * h);

        // Per-class sample counts and priors.
        let mut class_counts = vec![0usize; num_classes];
        for &y in train.labels() {
            class_counts[y as usize] += 1;
        }
        let priors: Vec<f64> = class_counts.iter().map(|&c| c as f64 / train.len() as f64).collect();

        // All pairwise kernel work in one blocked, chunk-parallel engine
        // pass: log Σ_j exp(−‖x − x_j‖² / 2h²) per (eval point, class).
        let kernel_sums = EvalEngine::parallel().class_kernel_log_sums(
            eval.features(),
            train.features(),
            train.labels(),
            num_classes,
            inv_two_h2,
        );

        let mut acc = 0.0f64;
        let mut log_post = vec![f64::NEG_INFINITY; num_classes];
        for sums in kernel_sums.chunks_exact(num_classes) {
            // Log of class-conditional density (up to a shared constant),
            // then the posterior via softmax against the class priors.
            for (c, post) in log_post.iter_mut().enumerate() {
                *post = if class_counts[c] == 0 {
                    f64::NEG_INFINITY
                } else {
                    priors[c].max(1e-12).ln() + sums[c] - (class_counts[c] as f64).ln()
                };
            }
            stats::softmax_inplace(&mut log_post);
            let max_post = log_post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            acc += 1.0 - max_post;
        }
        (acc / eval.len() as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use snoopy_linalg::{rng, Matrix};

    fn gaussian_pair(n: usize, mu: f64, seed: u64) -> (Matrix, Vec<u32>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = r.gen_range(0..2u32);
            let center = if c == 0 { -mu / 2.0 } else { mu / 2.0 };
            rows.push(vec![rng::normal_with(&mut r, center, 1.0) as f32, rng::normal(&mut r) as f32]);
            labels.push(c);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn scott_bandwidth_shrinks_with_n() {
        let h_small = KdeEstimator::scott_bandwidth(100, 2, 1.0);
        let h_large = KdeEstimator::scott_bandwidth(10_000, 2, 1.0);
        assert!(h_large < h_small);
        assert!(h_large > 0.0);
    }

    #[test]
    fn estimate_tracks_known_bayes_error_in_low_dim() {
        let mu = 2.0;
        let true_ber = stats::normal_cdf(-mu / 2.0);
        let (tx, ty) = gaussian_pair(1500, mu, 1);
        let (qx, qy) = gaussian_pair(400, mu, 2);
        let est = KdeEstimator::default();
        let value = est.estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 2);
        assert!((value - true_ber).abs() < 0.08, "estimate {value}, true {true_ber}");
    }

    #[test]
    fn separable_task_gives_near_zero() {
        let (tx, ty) = gaussian_pair(600, 12.0, 3);
        let (qx, qy) = gaussian_pair(200, 12.0, 4);
        let value =
            KdeEstimator::default().estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 2);
        assert!(value < 0.02, "estimate {value}");
    }

    #[test]
    fn missing_class_in_training_is_handled() {
        // Training data only contains class 0; estimator should stay finite
        // and report a value bounded by 1.
        let (tx, _) = gaussian_pair(100, 1.0, 5);
        let ty = vec![0u32; 100];
        let (qx, qy) = gaussian_pair(50, 1.0, 6);
        let value =
            KdeEstimator::default().estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 3);
        assert!((0.0..=1.0).contains(&value));
    }

    #[test]
    #[should_panic(expected = "bandwidth scale must be positive")]
    fn rejects_bad_bandwidth() {
        let _ = KdeEstimator::new(0.0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(KdeEstimator::default().name(), "kde-plugin");
    }
}
