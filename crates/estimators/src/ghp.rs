//! Generalised Henze–Penrose (GHP) divergence estimator via the Euclidean
//! minimum spanning tree.
//!
//! Friedman & Rafsky's multivariate run statistic counts the edges of the
//! Euclidean MST over the pooled sample whose endpoints carry different
//! labels. As `n → ∞` the normalised cross-count converges to
//! `2 Σ_{i<j} ∫ p_i p_j f_i f_j / f` — the pairwise Henze–Penrose affinity —
//! and since `min(a, b) ≥ ab/(a+b) ≥ min(a, b)/2` the statistic sandwiches the
//! Bayes error:
//!
//! ```text
//! R_cross / (2n)  ≤  BER-estimate  ≤  R_cross / n
//! ```
//!
//! Following Sekeh, Oselio & Hero (2020) the multiclass case sums the
//! pairwise contributions, which the global MST cross-count does implicitly.
//! The estimator reports the lower end of the sandwich, making it directly
//! comparable with the other lower-bound-style estimators in this crate.

use crate::{BerEstimator, LabeledView};
use snoopy_knn::{EvalEngine, Metric, MetricKernel, NearestHit};
use snoopy_linalg::{DatasetView, Matrix};

/// Remaining relaxation work (`frontier points × dims`) above which a Prim
/// round fans out across the persistent pool; below it a single-threaded
/// engine skips the chunk hand-off. Submitting to the pool is a queue push
/// plus a condvar wake (sub-microsecond), not a thread spawn, so the cutoff
/// sits far lower than the old per-round `std::thread::scope` threshold —
/// it only needs to cover the push/wake and the cache cost of splitting a
/// tiny frontier. Re-evaluated every round, because the frontier shrinks as
/// the tree grows.
const PARALLEL_RELAXATION_MIN_WORK: usize = 1 << 14;

/// GHP/MST-based BER estimator.
#[derive(Debug, Clone)]
pub struct GhpEstimator {
    /// Maximum number of pooled points used to build the MST; larger samples
    /// are subsampled deterministically (every `ceil(n/max)`‑th point) to keep
    /// the `O(n²)` Prim construction tractable.
    max_points: usize,
}

impl Default for GhpEstimator {
    fn default() -> Self {
        Self { max_points: 2_000 }
    }
}

impl GhpEstimator {
    /// Creates an estimator with a custom pooled-sample cap.
    pub fn new(max_points: usize) -> Self {
        Self { max_points: max_points.max(8) }
    }

    /// Counts cross-label edges in the Euclidean MST of the pooled sample and
    /// returns `(cross_edges, total_points)`.
    ///
    /// Prim's algorithm, with each round's distance relaxations expressed as
    /// one engine update: the out-of-tree frontier is kept row-contiguous
    /// (swap-remove compaction) so the queries are exactly the remaining
    /// points — the same `~n²/2` total distance evaluations as the textbook
    /// serial loop — and the newly added vertex is a one-row training batch
    /// at its global offset, so the engine's strict-`<` fold leaves every
    /// frontier point's `(best distance, parent)` pair exactly as the serial
    /// relaxation would. Vertex selection breaks distance ties on the lowest
    /// global index, making the tree (and the cross count) independent of
    /// thread count and compaction order.
    pub fn cross_edge_count(features: &Matrix, labels: &[u32]) -> (usize, usize) {
        let n = labels.len();
        if n < 2 {
            return (0, n);
        }
        let d = features.cols();
        let parallel = EvalEngine::parallel();
        let serial = EvalEngine::serial();
        let view = features.view();

        // Contiguous out-of-tree frontier: row `p` of `frontier` is point
        // `ids[p]`, and `best[p]` its (distance-to-tree, parent) pair.
        let mut frontier: Vec<f32> = Vec::with_capacity((n - 1) * d);
        for j in 1..n {
            frontier.extend_from_slice(view.row(j));
        }
        let mut ids: Vec<usize> = (1..n).collect();
        let mut best = vec![NearestHit::NONE; n - 1];
        let mut m = n - 1;

        // One kernel for the whole Prim run: the frontier's query-side norm
        // cache is computed once and then mirrors the swap-remove compaction
        // (O(1) per round instead of an O(m·d) re-bind); each new tree
        // vertex is a one-row train binding.
        let mut kernel = MetricKernel::new(Metric::SquaredEuclidean);
        kernel.bind_queries(DatasetView::from_raw(&frontier, m, d));
        let engine_for = |work: usize| if work >= PARALLEL_RELAXATION_MIN_WORK { parallel } else { serial };
        kernel.bind_train(view.slice_rows(0, 1));
        engine_for(m * d).update_nearest(
            DatasetView::from_raw(&frontier, m, d),
            &kernel,
            view.slice_rows(0, 1),
            0,
            &mut best,
        );
        let mut cross = 0usize;
        while m > 0 {
            // Pick the closest frontier vertex; distance ties resolve to the
            // lowest global index (the serial scan's first-minimum rule).
            let mut pos = usize::MAX;
            for p in 0..m {
                if best[p].distance < f32::INFINITY
                    && (pos == usize::MAX
                        || best[p].distance < best[pos].distance
                        || (best[p].distance == best[pos].distance && ids[p] < ids[pos]))
                {
                    pos = p;
                }
            }
            if pos == usize::MAX {
                break;
            }
            let next = ids[pos];
            if labels[next] != labels[best[pos].index] {
                cross += 1;
            }
            // Swap-remove the new tree vertex from the frontier; the
            // kernel's query cache compacts in lockstep.
            m -= 1;
            ids.swap(pos, m);
            best.swap(pos, m);
            if pos != m {
                let (head, tail) = frontier.split_at_mut(m * d);
                head[pos * d..(pos + 1) * d].copy_from_slice(&tail[..d]);
            }
            frontier.truncate(m * d);
            ids.truncate(m);
            best.truncate(m);
            kernel.queries_swap_remove(pos);
            // Relax the remaining frontier through the new vertex.
            kernel.bind_train(view.slice_rows(next, next + 1));
            engine_for(m * d).update_nearest(
                DatasetView::from_raw(&frontier, m, d),
                &kernel,
                view.slice_rows(next, next + 1),
                next,
                &mut best,
            );
        }
        (cross, n)
    }

    fn pooled(&self, train: &LabeledView<'_>, eval: &LabeledView<'_>) -> (Matrix, Vec<u32>) {
        // Pooling two disjoint samples is the one genuinely materialising
        // operation in this estimator: the MST needs a contiguous buffer.
        let pooled_features = train.features().vstack(&eval.features());
        let mut pooled_labels = train.labels().to_vec();
        pooled_labels.extend_from_slice(eval.labels());
        let n = pooled_labels.len();
        if n <= self.max_points {
            return (pooled_features, pooled_labels);
        }
        let stride = n.div_ceil(self.max_points);
        let keep: Vec<usize> = (0..n).step_by(stride).collect();
        (pooled_features.select_rows(&keep), keep.iter().map(|&i| pooled_labels[i]).collect())
    }
}

impl BerEstimator for GhpEstimator {
    fn name(&self) -> &'static str {
        "ghp-mst"
    }

    fn estimate(&self, train: &LabeledView<'_>, eval: &LabeledView<'_>, num_classes: usize) -> f64 {
        let (features, labels) = self.pooled(train, eval);
        if labels.len() < 2 {
            return 1.0 - 1.0 / num_classes as f64;
        }
        let (cross, n) = Self::cross_edge_count(&features, &labels);
        (cross as f64 / (2.0 * n as f64)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use snoopy_linalg::{rng, Matrix};

    fn gaussian_pair(n: usize, mu: f64, seed: u64) -> (Matrix, Vec<u32>) {
        let mut r = rng::seeded(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = r.gen_range(0..2u32);
            let center = if c == 0 { -mu / 2.0 } else { mu / 2.0 };
            rows.push(vec![rng::normal_with(&mut r, center, 1.0) as f32, rng::normal(&mut r) as f32]);
            labels.push(c);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn mst_cross_count_on_tiny_example() {
        // Two tight clusters: the MST has exactly one cross edge.
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.2, 0.0],
            vec![10.0, 0.0],
            vec![10.1, 0.0],
        ]);
        let y = vec![0, 0, 0, 1, 1];
        let (cross, n) = GhpEstimator::cross_edge_count(&x, &y);
        assert_eq!(n, 5);
        assert_eq!(cross, 1);
    }

    #[test]
    fn separable_clusters_give_near_zero_estimate() {
        let (x0, _) = gaussian_pair(200, 0.0, 1);
        // Shift class-1 points far away to make the task separable.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..x0.rows() {
            let c = (i % 2) as u32;
            let shift = if c == 0 { 0.0 } else { 50.0 };
            rows.push(vec![x0.get(i, 0) + shift, x0.get(i, 1)]);
            labels.push(c);
        }
        let x = Matrix::from_rows(&rows);
        let est = GhpEstimator::default();
        let half = x.rows() / 2;
        let value = est.estimate(
            &LabeledView::new(&x.slice_rows(0, half), &labels[..half]),
            &LabeledView::new(&x.slice_rows(half, x.rows()), &labels[half..]),
            2,
        );
        assert!(value < 0.02, "estimate {value}");
    }

    #[test]
    fn estimate_grows_with_overlap_and_stays_below_half() {
        let est = GhpEstimator::default();
        let mut last = -1.0f64;
        for (seed, mu) in [(10u64, 4.0f64), (11, 2.0), (12, 0.5)] {
            let (tx, ty) = gaussian_pair(500, mu, seed);
            let (qx, qy) = gaussian_pair(200, mu, seed + 100);
            let v = est.estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 2);
            assert!(v >= last - 0.03, "estimate should grow with overlap: {v} after {last}");
            assert!(v <= 0.55);
            last = v;
        }
        assert!(last > 0.2, "heavily overlapping classes should give a large estimate, got {last}");
    }

    #[test]
    fn estimate_is_roughly_a_lower_bound_of_known_ber() {
        let mu = 1.5;
        let true_ber = snoopy_linalg::stats::normal_cdf(-mu / 2.0);
        let (tx, ty) = gaussian_pair(1200, mu, 21);
        let (qx, qy) = gaussian_pair(400, mu, 22);
        let value =
            GhpEstimator::default().estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 2);
        assert!(
            value <= true_ber + 0.05,
            "GHP estimate {value} should not exceed true BER {true_ber} by much"
        );
        assert!(value > true_ber * 0.3, "GHP estimate {value} should not collapse to zero (true {true_ber})");
    }

    #[test]
    fn subsampling_keeps_estimator_usable() {
        let (tx, ty) = gaussian_pair(3000, 2.0, 31);
        let (qx, qy) = gaussian_pair(1000, 2.0, 32);
        let small = GhpEstimator::new(500);
        let value = small.estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 2);
        assert!((0.0..=0.5).contains(&value));
        assert_eq!(small.name(), "ghp-mst");
    }

    #[test]
    fn degenerate_inputs() {
        let x = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let y = vec![0u32];
        let (cross, n) = GhpEstimator::cross_edge_count(&x, &y);
        assert_eq!((cross, n), (0, 1));
    }
}
