//! The Cover–Hart 1NN-based BER lower-bound estimator (Eq. 2 of the paper).
//!
//! Cover & Hart's classic result relates the infinite-sample 1NN error
//! `R_{∞,1}` to the Bayes error `R*` (Eq. 1):
//!
//! ```text
//! R_{∞,1} ≥ R* ≥ R_{∞,1} / (1 + sqrt(1 − C·R_{∞,1}/(C−1)))
//! ```
//!
//! Snoopy's practical estimator plugs the *finite-sample* 1NN error into the
//! right-hand side (Eq. 2), which FeeBee found to be on par with or better
//! than every other estimator family while being scalable and hyper-parameter
//! free.

use crate::{BerEstimator, LabeledView};
use snoopy_knn::{EvalEngine, Metric, NeighborTable};

/// Applies the Cover–Hart lower bound to a (finite-sample) 1NN error value.
///
/// Values of `one_nn_error` above the chance level `(C−1)/C` would make the
/// square-root argument negative; the argument is clamped at zero, which
/// collapses the bound to `error / 1 = error` — the correct limiting
/// behaviour for a completely uninformative classifier.
pub fn cover_hart_lower_bound(one_nn_error: f64, num_classes: usize) -> f64 {
    assert!(num_classes >= 2, "need at least two classes");
    let c = num_classes as f64;
    let err = one_nn_error.clamp(0.0, 1.0);
    let inner = (1.0 - c * err / (c - 1.0)).max(0.0);
    err / (1.0 + inner.sqrt())
}

/// The inverse direction: given a Bayes error, the asymptotic 1NN error lies
/// in `[R*, R*(2 − C·R*/(C−1))]`; this returns that upper end, which is useful
/// for sanity-checking estimator outputs on tasks with known BER.
pub fn one_nn_error_upper_bound(bayes_error: f64, num_classes: usize) -> f64 {
    let c = num_classes as f64;
    let b = bayes_error.clamp(0.0, 1.0);
    (b * (2.0 - c * b / (c - 1.0))).clamp(0.0, 1.0)
}

/// 1NN + Cover–Hart estimator over a fixed feature representation.
#[derive(Debug, Clone)]
pub struct OneNnEstimator {
    metric: Metric,
}

impl Default for OneNnEstimator {
    fn default() -> Self {
        Self { metric: Metric::SquaredEuclidean }
    }
}

impl OneNnEstimator {
    /// Creates an estimator with the given metric.
    pub fn new(metric: Metric) -> Self {
        Self { metric }
    }

    /// The raw (uncorrected) 1NN error of `train` evaluated on `eval`,
    /// computed by one parallel engine pass. Both views are consumed
    /// zero-copy.
    pub fn raw_one_nn_error(
        &self,
        train: &LabeledView<'_>,
        eval: &LabeledView<'_>,
        _num_classes: usize,
    ) -> f64 {
        if train.is_empty() || eval.is_empty() {
            return 1.0;
        }
        EvalEngine::parallel()
            .topk(train.features(), eval.features(), self.metric, 1)
            .one_nn_error(train.labels(), eval.labels())
    }
}

impl BerEstimator for OneNnEstimator {
    fn name(&self) -> &'static str {
        "1nn-cover-hart"
    }

    fn estimate(&self, train: &LabeledView<'_>, eval: &LabeledView<'_>, num_classes: usize) -> f64 {
        let err = self.raw_one_nn_error(train, eval, num_classes);
        cover_hart_lower_bound(err, num_classes)
    }

    fn table_k(&self) -> usize {
        // Only the exact shared metric may read the table: Euclidean ranks
        // like squared Euclidean in real arithmetic, but f32 sqrt can
        // collapse two distinct squared distances into an exact tie and
        // flip the lowest-index tie-break, breaking the documented
        // estimate == estimate_with_table parity.
        match self.metric {
            Metric::SquaredEuclidean => 1,
            Metric::Euclidean | Metric::Cosine => 0,
        }
    }

    fn estimate_with_table(
        &self,
        table: &NeighborTable,
        train: &LabeledView<'_>,
        eval: &LabeledView<'_>,
        num_classes: usize,
    ) -> f64 {
        if train.is_empty() || eval.is_empty() {
            return cover_hart_lower_bound(1.0, num_classes);
        }
        cover_hart_lower_bound(table.one_nn_error(train.labels(), eval.labels()), num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_linalg::Matrix;

    fn separated_task() -> (Matrix, Vec<u32>, Matrix, Vec<u32>) {
        let mut train_rows = Vec::new();
        let mut train_y = Vec::new();
        let mut test_rows = Vec::new();
        let mut test_y = Vec::new();
        for i in 0..60 {
            let c = i % 3;
            let base = c as f32 * 10.0;
            train_rows.push(vec![base + (i as f32 * 0.7).sin() * 0.2, base - (i as f32 * 0.3).cos() * 0.2]);
            train_y.push(c as u32);
            test_rows.push(vec![base + (i as f32 * 1.3).sin() * 0.2, base + (i as f32 * 0.9).cos() * 0.2]);
            test_y.push(c as u32);
        }
        (Matrix::from_rows(&train_rows), train_y, Matrix::from_rows(&test_rows), test_y)
    }

    #[test]
    fn bound_is_below_error_and_nonnegative() {
        for c in [2usize, 5, 10, 100] {
            for err in [0.0, 0.01, 0.1, 0.3, 0.5, 0.8, 1.0] {
                let b = cover_hart_lower_bound(err, c);
                assert!(b >= 0.0, "C={c}, err={err}");
                assert!(b <= err + 1e-12, "bound must not exceed the 1NN error");
            }
        }
    }

    #[test]
    fn bound_known_values() {
        // Binary case: err/(1 + sqrt(1 - 2 err)).
        let b = cover_hart_lower_bound(0.2, 2);
        assert!((b - 0.2 / (1.0 + (1.0f64 - 0.4).sqrt())).abs() < 1e-12);
        // Zero error maps to zero, chance-level error maps to itself.
        assert_eq!(cover_hart_lower_bound(0.0, 10), 0.0);
        let chance = 0.9;
        assert!((cover_hart_lower_bound(chance, 10) - chance).abs() < 1e-12);
    }

    #[test]
    fn bound_is_monotone_in_error() {
        let mut prev = 0.0;
        for i in 0..=50 {
            let err = i as f64 / 50.0 * 0.89;
            let b = cover_hart_lower_bound(err, 10);
            assert!(b + 1e-12 >= prev, "bound must be monotone");
            prev = b;
        }
    }

    #[test]
    fn one_nn_upper_bound_brackets() {
        for c in [2usize, 10] {
            for ber in [0.0, 0.05, 0.2, 0.4] {
                let upper = one_nn_error_upper_bound(ber, c);
                assert!(upper >= ber);
                // Round-tripping through the lower bound recovers at most the BER.
                assert!(cover_hart_lower_bound(upper, c) <= ber + 1e-9);
            }
        }
    }

    #[test]
    fn estimator_on_separable_task_is_near_zero() {
        let (tx, ty, qx, qy) = separated_task();
        let est = OneNnEstimator::default();
        let value = est.estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 3);
        assert!(value < 0.01, "estimate {value}");
        assert_eq!(est.name(), "1nn-cover-hart");
    }

    #[test]
    fn estimator_detects_label_noise() {
        let (tx, mut ty, qx, mut qy) = separated_task();
        // Flip a quarter of the labels (a stride co-prime with the class
        // pattern, so this is genuine noise rather than a class renaming):
        // the estimate should rise well above zero.
        for i in (0..ty.len()).step_by(4) {
            ty[i] = (ty[i] + 1) % 3;
        }
        for i in (0..qy.len()).step_by(5) {
            qy[i] = (qy[i] + 2) % 3;
        }
        let est = OneNnEstimator::default();
        let value = est.estimate(&LabeledView::new(&tx, &ty), &LabeledView::new(&qx, &qy), 3);
        assert!(value > 0.1, "estimate {value}");
    }

    #[test]
    fn empty_inputs_give_pessimistic_estimate() {
        let (tx, ty, _, _) = separated_task();
        let est = OneNnEstimator::default();
        let empty_features = Matrix::zeros(0, 2);
        let empty_labels: Vec<u32> = vec![];
        let view = LabeledView::new(&empty_features, &empty_labels);
        let value = est.raw_one_nn_error(&LabeledView::new(&tx, &ty), &view, 3);
        assert_eq!(value, 1.0);
    }
}
