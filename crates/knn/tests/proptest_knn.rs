//! Property-based tests for the k-nearest-neighbour crate.

use proptest::prelude::*;
use snoopy_knn::engine::{knn_reference, EvalEngine, NeighborTable, TopKState};
use snoopy_knn::{BruteForceIndex, ClusteredIndex, IncrementalTopK, Metric, MetricKernel};
use snoopy_linalg::LabeledView;
use snoopy_testutil::{cloud, cloud_with_ties};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental state fed in arbitrary batch sizes always matches a
    /// full brute-force recomputation on the same prefix.
    #[test]
    fn appended_equals_full(seed in 0u64..500, batch in 1usize..40) {
        let (train_x, train_y) = cloud(seed, 80, 4, 3);
        let (test_x, test_y) = cloud(seed ^ 0xff, 30, 4, 3);
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 1);
        let train = LabeledView::new(&train_x, &train_y).with_classes(3);
        let mut consumed = 0;
        while consumed < train_x.rows() {
            let end = (consumed + batch).min(train_x.rows());
            let chunk = train.slice(consumed, end);
            let appended_err = state.append(chunk.features(), chunk.labels());
            consumed = end;
            let full_err = BruteForceIndex::from_view(train.prefix(consumed), Metric::SquaredEuclidean)
                .one_nn_error(&test_x, &test_y);
            prop_assert!((appended_err - full_err).abs() < 1e-12);
        }
    }

    /// Incremental re-labelling equals full recomputation for arbitrary
    /// cleaning sequences.
    #[test]
    fn incremental_equals_full_after_relabels(
        seed in 0u64..500,
        edits in prop::collection::vec((0usize..60, 0u32..3), 0..30),
    ) {
        let (train_x, mut train_y) = cloud(seed, 60, 3, 3);
        let (test_x, test_y) = cloud(seed ^ 0xabc, 25, 3, 3);
        let mut inc = IncrementalTopK::build(&train_x, &train_y, &test_x, &test_y, Metric::SquaredEuclidean, 1);
        for (idx, label) in edits {
            train_y[idx] = label;
            inc.relabel_train(idx, label);
            let full = BruteForceIndex::new(&train_x, &train_y, 3, Metric::SquaredEuclidean)
                .one_nn_error(&test_x, &test_y);
            prop_assert!((inc.error() - full).abs() < 1e-12);
        }
    }

    /// The parallel top-k engine is bit-identical to the serial sort-based
    /// reference for every metric, k ∈ {1, 3, 10, len}, arbitrary engine
    /// shapes (threads × blocks × tiles), and batch-streamed ingestion of
    /// the training rows.
    #[test]
    fn parallel_topk_equals_serial_reference(
        seed in 0u64..500,
        threads in 1usize..8,
        block in 1usize..96,
        tile in 1usize..80,
        batch in 1usize..40,
    ) {
        let n = 60;
        let (train_x, _) = cloud(seed, n, 4, 3);
        let (test_x, _) = cloud(seed ^ 0x5eed, 18, 4, 3);
        let engine = EvalEngine::with_threads(threads).with_block_rows(block).with_tile_rows(tile);
        for metric in Metric::all() {
            for k in [1usize, 3, 10, n] {
                let reference = knn_reference(train_x.view(), test_x.view(), metric, k);
                // Cold start.
                prop_assert_eq!(
                    &engine.topk(train_x.view(), test_x.view(), metric, k),
                    &reference,
                    "cold metric {} k {}", metric.name(), k
                );
                // Batch-streamed ingestion accumulates to the same table.
                let mut kernel = MetricKernel::new(metric);
                kernel.bind_queries(test_x.view());
                let mut states = vec![TopKState::new(k); test_x.rows()];
                let mut consumed = 0;
                for chunk in train_x.view().batches(batch) {
                    kernel.bind_train(chunk);
                    engine.update_topk(test_x.view(), &kernel, chunk, consumed, &mut states, None);
                    consumed += chunk.rows();
                }
                prop_assert_eq!(
                    &NeighborTable::from_states(&states),
                    &reference,
                    "streamed metric {} k {} batch {}", metric.name(), k, batch
                );
            }
        }
    }

    /// Tiled kernel == fixed-order serial reference on *ragged tile edges*:
    /// dimensions straddling the lane width, row counts straddling the
    /// register block, tile sizes that do not divide either, duplicate rows
    /// (distance ties), and the clustered + streamed consumers on top. This
    /// is the kernel layer's determinism contract, proptested.
    #[test]
    fn tiled_kernel_equals_reference_on_ragged_edges(
        seed in 0u64..400,
        d in 1usize..20,
        n in 1usize..50,
        tile in 1usize..60,
        nlist in 1usize..16,
    ) {
        let (train_x, train_y) = cloud_with_ties(seed, n, d, 3);
        let (test_x, test_y) = cloud(seed ^ 0x7117, 9, d, 3);
        let engine = EvalEngine::with_threads(3).with_tile_rows(tile);
        for metric in Metric::all() {
            for k in [1usize, 3, 10, n] {
                let reference = knn_reference(train_x.view(), test_x.view(), metric, k);
                prop_assert_eq!(
                    &engine.topk(train_x.view(), test_x.view(), metric, k),
                    &reference,
                    "metric {} k {} d {} tile {}", metric.name(), k, d, tile
                );
            }
        }
        // Clustered consumer: same tile knob, same bits.
        let index =
            ClusteredIndex::build_with_engine(train_x.view(), Metric::SquaredEuclidean, nlist, engine);
        prop_assert_eq!(
            index.topk(test_x.view(), 4),
            knn_reference(train_x.view(), test_x.view(), Metric::SquaredEuclidean, 4)
        );
        // Incremental consumer: the running append fold through the tiled
        // engine matches a cold-start brute-force recomputation.
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 1)
            .with_engine(engine);
        let train = LabeledView::new(&train_x, &train_y).with_classes(3);
        for chunk in train.batches(17) {
            state.append(chunk.features(), chunk.labels());
        }
        let full = BruteForceIndex::from_view(train, Metric::SquaredEuclidean)
            .one_nn_error(&test_x, &test_y);
        prop_assert!((state.error() - full).abs() < 1e-12);
    }

    /// kNN neighbour lists are sorted by distance and contain distinct indices.
    #[test]
    fn knn_lists_sorted_and_distinct(seed in 0u64..500, k in 1usize..20) {
        let (train_x, train_y) = cloud(seed, 50, 5, 4);
        let (query_x, _) = cloud(seed ^ 0x77, 5, 5, 4);
        let index = BruteForceIndex::new(&train_x, &train_y, 4, Metric::Euclidean);
        for qi in 0..query_x.rows() {
            let neigh = index.query_knn(query_x.row(qi), k);
            prop_assert_eq!(neigh.len(), k.min(50));
            for w in neigh.windows(2) {
                prop_assert!(w[0].distance <= w[1].distance);
            }
            let mut ids: Vec<usize> = neigh.iter().map(|n| n.index).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), neigh.len());
        }
    }

    /// Metric axioms that nearest-neighbour search relies on: non-negativity,
    /// symmetry, and identity.
    #[test]
    fn metric_axioms(
        a in prop::collection::vec(-100.0f32..100.0, 8),
        b in prop::collection::vec(-100.0f32..100.0, 8),
    ) {
        for metric in Metric::all() {
            let dab = metric.distance(&a, &b);
            let dba = metric.distance(&b, &a);
            prop_assert!(dab >= -1e-6, "{} non-negative", metric.name());
            prop_assert!((dab - dba).abs() < 1e-4, "{} symmetric", metric.name());
            prop_assert!(metric.distance(&a, &a).abs() < 1e-5, "{} identity", metric.name());
        }
    }

    /// Adding more training data never increases the appended error by more
    /// than it can justify: the curve endpoint equals the full-data 1NN error.
    #[test]
    fn curve_endpoint_matches_full_data_error(seed in 0u64..200) {
        let (train_x, train_y) = cloud(seed, 64, 4, 2);
        let (test_x, test_y) = cloud(seed ^ 0x1234, 20, 4, 2);
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::Cosine, 1);
        let mut consumed = 0;
        while consumed < train_x.rows() {
            let end = (consumed + 17).min(train_x.rows());
            state.append(train_x.view().slice_rows(consumed, end), &train_y[consumed..end]);
            consumed = end;
        }
        let full = BruteForceIndex::new(&train_x, &train_y, 2, Metric::Cosine).one_nn_error(&test_x, &test_y);
        let last = state.curve().last().unwrap().1;
        prop_assert!((last - full).abs() < 1e-12);
    }
}
