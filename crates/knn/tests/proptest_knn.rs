//! Property-based tests for the k-nearest-neighbour crate.

use proptest::prelude::*;
use snoopy_knn::engine::{knn_reference, row_norms_into, EvalEngine, NeighborTable, TopKState};
use snoopy_knn::{BruteForceIndex, IncrementalOneNn, Metric, StreamedOneNn};
use snoopy_linalg::LabeledView;
use snoopy_testutil::cloud;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The streamed evaluator fed in arbitrary batch sizes always matches a
    /// full brute-force recomputation on the same prefix.
    #[test]
    fn streamed_equals_full(seed in 0u64..500, batch in 1usize..40) {
        let (train_x, train_y) = cloud(seed, 80, 4, 3);
        let (test_x, test_y) = cloud(seed ^ 0xff, 30, 4, 3);
        let mut stream = StreamedOneNn::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean);
        let train = LabeledView::new(&train_x, &train_y).with_classes(3);
        let mut consumed = 0;
        while consumed < train_x.rows() {
            let end = (consumed + batch).min(train_x.rows());
            let chunk = train.slice(consumed, end);
            let streamed_err = stream.add_train_batch(chunk.features(), chunk.labels());
            consumed = end;
            let full_err = BruteForceIndex::from_view(train.prefix(consumed), Metric::SquaredEuclidean)
                .one_nn_error(&test_x, &test_y);
            prop_assert!((streamed_err - full_err).abs() < 1e-12);
        }
    }

    /// Incremental re-labelling equals full recomputation for arbitrary
    /// cleaning sequences.
    #[test]
    fn incremental_equals_full_after_relabels(
        seed in 0u64..500,
        edits in prop::collection::vec((0usize..60, 0u32..3), 0..30),
    ) {
        let (train_x, mut train_y) = cloud(seed, 60, 3, 3);
        let (test_x, test_y) = cloud(seed ^ 0xabc, 25, 3, 3);
        let mut inc = IncrementalOneNn::build(&train_x, &train_y, &test_x, &test_y, 3, Metric::SquaredEuclidean);
        for (idx, label) in edits {
            train_y[idx] = label;
            inc.relabel_train(idx, label);
            let full = BruteForceIndex::new(&train_x, &train_y, 3, Metric::SquaredEuclidean)
                .one_nn_error(&test_x, &test_y);
            prop_assert!((inc.error() - full).abs() < 1e-12);
        }
    }

    /// The parallel top-k kernel is bit-identical to the serial sort-based
    /// reference for every metric, k ∈ {1, 3, 10, len}, arbitrary engine
    /// shapes, and batch-streamed ingestion of the training rows.
    #[test]
    fn parallel_topk_equals_serial_reference(
        seed in 0u64..500,
        threads in 1usize..8,
        block in 1usize..96,
        batch in 1usize..40,
    ) {
        let n = 60;
        let (train_x, _) = cloud(seed, n, 4, 3);
        let (test_x, _) = cloud(seed ^ 0x5eed, 18, 4, 3);
        let engine = EvalEngine::with_threads(threads).with_block_rows(block);
        for metric in Metric::all() {
            for k in [1usize, 3, 10, n] {
                let reference = knn_reference(train_x.view(), test_x.view(), metric, k);
                // Cold start.
                prop_assert_eq!(
                    &engine.topk(train_x.view(), test_x.view(), metric, k),
                    &reference,
                    "cold metric {} k {}", metric.name(), k
                );
                // Batch-streamed ingestion accumulates to the same table.
                let mut test_norms = Vec::new();
                let mut batch_norms = Vec::new();
                if metric == Metric::Cosine {
                    row_norms_into(test_x.view(), &mut test_norms);
                }
                let mut states = vec![TopKState::new(k); test_x.rows()];
                let mut consumed = 0;
                for chunk in train_x.view().batches(batch) {
                    if metric == Metric::Cosine {
                        row_norms_into(chunk, &mut batch_norms);
                    }
                    engine.update_topk(
                        test_x.view(),
                        metric,
                        (metric == Metric::Cosine).then_some(test_norms.as_slice()),
                        chunk,
                        (metric == Metric::Cosine).then_some(batch_norms.as_slice()),
                        consumed,
                        &mut states,
                        None,
                    );
                    consumed += chunk.rows();
                }
                prop_assert_eq!(
                    &NeighborTable::from_states(&states),
                    &reference,
                    "streamed metric {} k {} batch {}", metric.name(), k, batch
                );
            }
        }
    }

    /// kNN neighbour lists are sorted by distance and contain distinct indices.
    #[test]
    fn knn_lists_sorted_and_distinct(seed in 0u64..500, k in 1usize..20) {
        let (train_x, train_y) = cloud(seed, 50, 5, 4);
        let (query_x, _) = cloud(seed ^ 0x77, 5, 5, 4);
        let index = BruteForceIndex::new(&train_x, &train_y, 4, Metric::Euclidean);
        for qi in 0..query_x.rows() {
            let neigh = index.query_knn(query_x.row(qi), k);
            prop_assert_eq!(neigh.len(), k.min(50));
            for w in neigh.windows(2) {
                prop_assert!(w[0].distance <= w[1].distance);
            }
            let mut ids: Vec<usize> = neigh.iter().map(|n| n.index).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), neigh.len());
        }
    }

    /// Metric axioms that nearest-neighbour search relies on: non-negativity,
    /// symmetry, and identity.
    #[test]
    fn metric_axioms(
        a in prop::collection::vec(-100.0f32..100.0, 8),
        b in prop::collection::vec(-100.0f32..100.0, 8),
    ) {
        for metric in Metric::all() {
            let dab = metric.distance(&a, &b);
            let dba = metric.distance(&b, &a);
            prop_assert!(dab >= -1e-6, "{} non-negative", metric.name());
            prop_assert!((dab - dba).abs() < 1e-4, "{} symmetric", metric.name());
            prop_assert!(metric.distance(&a, &a).abs() < 1e-5, "{} identity", metric.name());
        }
    }

    /// Adding more training data never increases the streamed error by more
    /// than it can justify: the curve endpoint equals the full-data 1NN error.
    #[test]
    fn curve_endpoint_matches_full_data_error(seed in 0u64..200) {
        let (train_x, train_y) = cloud(seed, 64, 4, 2);
        let (test_x, test_y) = cloud(seed ^ 0x1234, 20, 4, 2);
        let mut stream = StreamedOneNn::new(test_x.clone(), test_y.clone(), Metric::Cosine);
        let mut consumed = 0;
        while consumed < train_x.rows() {
            let end = (consumed + 17).min(train_x.rows());
            stream.add_train_batch(train_x.view().slice_rows(consumed, end), &train_y[consumed..end]);
            consumed = end;
        }
        let full = BruteForceIndex::new(&train_x, &train_y, 2, Metric::Cosine).one_nn_error(&test_x, &test_y);
        let last = stream.curve().last().unwrap().1;
        prop_assert!((last - full).abs() < 1e-12);
    }
}
