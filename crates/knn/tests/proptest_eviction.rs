//! Property-based pin of the sliding-window contract: an eviction-enabled
//! [`IncrementalTopK`] driven by arbitrary interleaved appends and oldest-row
//! evictions is **bit-identical** to a cold fold over the surviving window at
//! every window position — across metrics, `k ∈ {1, 3, 10}`, exhaustive /
//! clustered / quantized backends, admission-buffer slacks (slack 0 forces
//! the buffer-drain re-scan path on almost every slide), and with relabels
//! interleaved between slides.

use proptest::prelude::*;
use snoopy_knn::{EvalBackend, EvalEngine, IncrementalTopK, Metric, MetricKernel, NeighborTable, TopKState};
use snoopy_linalg::{DatasetView, Matrix};
use snoopy_testutil::{cloud, cloud_with_ties};

/// Cold fold over the surviving window `[start, end)` with global row
/// indices — the reference every slid state must match bit for bit.
fn cold_window_table(
    train: DatasetView<'_>,
    test_x: &Matrix,
    metric: Metric,
    k: usize,
    start: usize,
    end: usize,
) -> NeighborTable {
    let window = train.slice_rows(start, end);
    let mut kernel = MetricKernel::new(metric);
    kernel.bind_queries(test_x.view());
    kernel.bind_train(window);
    let mut states = vec![TopKState::new(k); test_x.rows()];
    EvalEngine::parallel().update_topk(test_x.view(), &kernel, window, start, &mut states, None);
    NeighborTable::from_states(&states)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Slide a window by interleaved appends and evictions: the table, the
    /// 1NN error, and the k-vote error equal a cold fold over the surviving
    /// window at every position, for every metric × k × backend × slack.
    #[test]
    fn sliding_window_equals_cold_fold(
        seed in 0u64..400,
        batch in 1usize..16,
        evict in 1usize..12,
        slack in 0usize..5,
        nlist in 1usize..8,
    ) {
        let n = 72;
        // Duplicated rows so distance ties cross window boundaries — the
        // lexicographic tie-break is part of the contract.
        let (train_x, train_y) = cloud_with_ties(seed, n, 5, 3);
        let (test_x, test_y) = cloud(seed ^ 0x51de, 9, 5, 3);
        for metric in Metric::all() {
            for k in [1usize, 3, 10] {
                for backend in [
                    EvalBackend::Exhaustive,
                    EvalBackend::clustered(nlist),
                    EvalBackend::quantized(nlist),
                ] {
                    let mut state =
                        IncrementalTopK::new(test_x.clone(), test_y.clone(), metric, k)
                            .with_backend(backend)
                            .with_eviction(slack);
                    let mut consumed = 0usize;
                    while consumed < n {
                        let end = (consumed + batch).min(n);
                        state.append(
                            train_x.view().slice_rows(consumed, end),
                            &train_y[consumed..end],
                        );
                        consumed = end;
                        // Keep at least k live rows so every query stays at
                        // full width.
                        if state.window_len() > k + evict {
                            state.evict_oldest(evict);
                        }
                        let start = state.window_start();
                        let cold =
                            cold_window_table(train_x.view(), &test_x, metric, k, start, consumed);
                        prop_assert_eq!(
                            &state.table(),
                            &cold,
                            "metric {} k {} backend {} slack {} window [{}, {})",
                            metric.name(), k, backend.name(), slack, start, consumed
                        );
                        let cold_err = cold.one_nn_error(&train_y, &test_y);
                        prop_assert_eq!(
                            state.error().to_bits(),
                            cold_err.to_bits(),
                            "1NN bits at window [{}, {})", start, consumed
                        );
                        let cold_k = cold.knn_error(k, &train_y, &test_y, 3);
                        prop_assert_eq!(
                            state.knn_error(k, 3).to_bits(),
                            cold_k.to_bits(),
                            "k-vote bits at window [{}, {})", start, consumed
                        );
                    }
                    prop_assert!(state.window_start() > 0, "the window must actually slide");
                }
            }
        }
    }

    /// Zero slack plus aggressive slides (drop everything but `k + 1` rows)
    /// drains almost every admission buffer, forcing the per-query re-scan
    /// path; relabels of live and evicted rows interleave between slides.
    /// The state must still track a cold fold bit for bit.
    #[test]
    fn drained_buffers_rescan_to_cold_fold(
        seed in 0u64..400,
        batch in 2usize..14,
        edits in prop::collection::vec((0usize..64, 0u32..3), 1..16),
        backend_pick in 0usize..3,
    ) {
        let n = 64;
        let k = 3;
        let (train_x, mut train_y) = cloud(seed, n, 4, 3);
        let (test_x, mut test_y) = cloud(seed ^ 0xdead, 9, 4, 3);
        let backend = match backend_pick {
            0 => EvalBackend::Exhaustive,
            1 => EvalBackend::clustered(4),
            _ => EvalBackend::quantized(4),
        };
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, k)
            .with_backend(backend)
            .with_eviction(0);
        let engine_drained = {
            let mut drained = 0usize;
            let mut consumed = 0usize;
            let mut edit_iter = edits.into_iter();
            while consumed < n {
                let end = (consumed + batch).min(n);
                state.append(train_x.view().slice_rows(consumed, end), &train_y[consumed..end]);
                consumed = end;
                if state.window_len() > k + 1 {
                    let report = state.evict_oldest(state.window_len() - (k + 1));
                    drained += report.affected_queries;
                }
                // Relabel one live train row, one already-evicted row (must
                // be inert: evicted rows never sit in any buffer), and one
                // test row between slides.
                if let Some((idx, label)) = edit_iter.next() {
                    let live = state.window_start() + idx % state.window_len();
                    train_y[live] = label;
                    state.relabel_train(live, label);
                    if state.window_start() > 0 {
                        let gone = idx % state.window_start();
                        train_y[gone] = (label + 2) % 3;
                        state.relabel_train(gone, (label + 2) % 3);
                    }
                    let qi = idx % test_y.len();
                    test_y[qi] = (label + 1) % 3;
                    state.relabel_test(qi, (label + 1) % 3);
                }
                let start = state.window_start();
                let cold = cold_window_table(
                    train_x.view(), &test_x, Metric::SquaredEuclidean, k, start, consumed,
                );
                prop_assert_eq!(
                    &state.table(), &cold,
                    "backend {} window [{}, {})", backend.name(), start, consumed
                );
                let cold_err = cold.one_nn_error(&train_y, &test_y);
                prop_assert_eq!(
                    state.error().to_bits(), cold_err.to_bits(),
                    "1NN bits at window [{}, {})", start, consumed
                );
                let cold_k = cold.knn_error(k, &train_y, &test_y, 3);
                prop_assert_eq!(
                    state.knn_error(k, 3).to_bits(), cold_k.to_bits(),
                    "k-vote bits at window [{}, {})", start, consumed
                );
            }
            drained
        };
        prop_assert!(engine_drained > 0, "zero-slack slides must exercise the re-scan path");
    }
}
