//! Pool-determinism proptests: the persistent work-stealing pool behind the
//! evaluation engine changes *where* chunks run, never *what* they compute.
//! Every consumer — cold top-k, leave-one-out, the clustered index, the
//! incremental successor state (exhaustive and clustered/quantized
//! backends), and the caller-owned-scratch serving variants — must return
//! bit-identical results at every pool worker count.

use proptest::prelude::*;
use snoopy_knn::engine::{knn_reference, knn_reference_loo, EvalEngine};
use snoopy_knn::{BruteForceIndex, ClusteredIndex, EvalBackend, IncrementalTopK, Metric, TopKScratch};
use snoopy_linalg::LabeledView;
use snoopy_pool::ThreadPool;
use snoopy_testutil::{cloud, cloud_with_ties};

/// Worker counts the sweep pins (the issue's contract: {1, 2, 8}).
const WORKERS: [usize; 3] = [1, 2, 8];
/// Neighbour capacities the sweep pins (the issue's contract: {1, 3, 10}).
const KS: [usize; 3] = [1, 3, 10];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cold `topk` and `topk_loo` on arbitrary tie-saturated data equal the
    /// serial references under pools of 1, 2, and 8 workers, for every
    /// metric, every pinned k, and arbitrary engine chunking.
    #[test]
    fn topk_and_loo_are_worker_count_invariant(
        seed in 0u64..400,
        threads in 1usize..8,
        block in 1usize..96,
    ) {
        let (train_x, _) = cloud_with_ties(seed, 67, 5, 3);
        let (test_x, _) = cloud(seed ^ 0x900d, 19, 5, 3);
        let engine = EvalEngine::with_threads(threads).with_block_rows(block);
        for metric in Metric::all() {
            for k in KS {
                let reference = knn_reference(train_x.view(), test_x.view(), metric, k);
                let reference_loo = knn_reference_loo(train_x.view(), metric, k);
                for workers in WORKERS {
                    let pool = ThreadPool::new(workers);
                    let (topk, loo) = pool.install(|| {
                        (
                            engine.topk(train_x.view(), test_x.view(), metric, k),
                            engine.topk_loo(train_x.view(), metric, k),
                        )
                    });
                    prop_assert_eq!(
                        &topk, &reference,
                        "topk metric {} k {} workers {}", metric.name(), k, workers
                    );
                    prop_assert_eq!(
                        &loo, &reference_loo,
                        "loo metric {} k {} workers {}", metric.name(), k, workers
                    );
                }
            }
        }
    }

    /// The clustered index and the incremental state — under both append
    /// backends, quantized included — match the exhaustive serial answers at
    /// every pool worker count.
    #[test]
    fn clustered_and_incremental_are_worker_count_invariant(
        seed in 0u64..400,
        nlist in 1usize..12,
        batch in 1usize..30,
    ) {
        let (train_x, train_y) = cloud_with_ties(seed, 61, 4, 3);
        let (test_x, test_y) = cloud(seed ^ 0xc1a5, 17, 4, 3);
        let train = LabeledView::new(&train_x, &train_y).with_classes(3);
        let full_error = BruteForceIndex::from_view(train, Metric::SquaredEuclidean)
            .one_nn_error(&test_x, &test_y);
        for k in KS {
            let reference = knn_reference(train_x.view(), test_x.view(), Metric::SquaredEuclidean, k);
            for workers in WORKERS {
                let pool = ThreadPool::new(workers);
                pool.install(|| {
                    let index = ClusteredIndex::build(train_x.view(), Metric::SquaredEuclidean, nlist);
                    prop_assert_eq!(
                        &index.topk(test_x.view(), k), &reference,
                        "clustered k {} nlist {} workers {}", k, nlist, workers
                    );
                    for backend in [
                        EvalBackend::Exhaustive,
                        EvalBackend::Clustered { nlist, quantize: false },
                        EvalBackend::Clustered { nlist, quantize: true },
                    ] {
                        let mut state = IncrementalTopK::new(
                            test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, k,
                        ).with_backend(backend);
                        let train = LabeledView::new(&train_x, &train_y).with_classes(3);
                        for chunk in train.batches(batch) {
                            state.append(chunk.features(), chunk.labels());
                        }
                        prop_assert_eq!(
                            &state.table(), &reference,
                            "incremental k {} backend {:?} workers {}", k, backend, workers
                        );
                        prop_assert_eq!(state.error().to_bits(), full_error.to_bits());
                    }
                    Ok(())
                })?;
            }
        }
    }

    /// The zero-alloc serving variants (`topk_with` / `topk_loo_with`) are
    /// bit-identical to their allocating counterparts while one scratch is
    /// reused across differently-shaped calls — shrinking and growing query
    /// counts, changing k, switching metrics — and across worker counts.
    #[test]
    fn scratch_reuse_is_bit_identical_across_shapes(
        seed in 0u64..400,
        threads in 1usize..8,
    ) {
        let (train_x, _) = cloud_with_ties(seed, 53, 6, 3);
        let (big_q, _) = cloud(seed ^ 0xbe9, 23, 6, 3);
        let (small_q, _) = cloud(seed ^ 0x5a11, 7, 6, 3);
        let engine = EvalEngine::with_threads(threads);
        for workers in WORKERS {
            let pool = ThreadPool::new(workers);
            pool.install(|| {
                let mut scratch = TopKScratch::new();
                // One scratch, many shapes: each call must match a fresh
                // allocating call exactly.
                for (queries, k, metric) in [
                    (big_q.view(), 3, Metric::SquaredEuclidean),
                    (small_q.view(), 10, Metric::SquaredEuclidean),
                    (big_q.view(), 1, Metric::Cosine),
                    (small_q.view(), 3, Metric::Euclidean),
                    (big_q.view(), 10, Metric::Euclidean),
                ] {
                    let got = engine.topk_with(&mut scratch, train_x.view(), queries, metric, k);
                    prop_assert_eq!(
                        got, &engine.topk(train_x.view(), queries, metric, k),
                        "topk_with k {} metric {} workers {}", k, metric.name(), workers
                    );
                }
                for k in KS {
                    let got = engine.topk_loo_with(&mut scratch, train_x.view(), Metric::SquaredEuclidean, k);
                    prop_assert_eq!(
                        got, &engine.topk_loo(train_x.view(), Metric::SquaredEuclidean, k),
                        "topk_loo_with k {} workers {}", k, workers
                    );
                }
                Ok(())
            })?;
        }
    }
}
