//! Property tests pinning the exactness guarantee of the int8
//! scalar-quantized two-phase scan: the quantized clustered index must stay
//! **bit-identical** to the serial sort-based reference (and hence to the
//! exhaustive engine and the unquantized clustered index) on exactly the
//! inputs where an approximate bound is easiest to get wrong — constant
//! columns (zero scale), mixed extreme magnitudes across dimensions,
//! subnormal coordinates, duplicated rows at distance zero, and the
//! self-excluding leave-one-out mode — for k ∈ {1, 3, 10, len} and through
//! the incremental append path's frozen-affine encoding.

use proptest::prelude::*;
use snoopy_knn::engine::{knn_reference, knn_reference_loo};
use snoopy_knn::{ClusteredIndex, EvalBackend, EvalEngine, IncrementalTopK, Metric, RepartitionPolicy};
use snoopy_linalg::Matrix;
use snoopy_testutil::{cloud, cloud_with_ties};

fn prunable_metrics() -> [Metric; 2] {
    [Metric::SquaredEuclidean, Metric::Euclidean]
}

/// A deterministic per-dimension magnitude profile: dimension `j` of shape
/// `shape` is scaled by `10^e` with `e` drawn from `{-24, -4, 0, 3}` — mixing
/// subnormal-adjacent, small, unit, and large columns in one dataset so a
/// single affine fit must cope with wildly different scales side by side.
fn column_scale(shape: u64, j: usize) -> f32 {
    match (shape >> (2 * (j % 8))) & 0b11 {
        0 => 1.0e-24, // products underflow to subnormals/zero
        1 => 1.0e-4,
        2 => 1.0,
        _ => 1.0e3,
    }
}

/// Scales each column of `m` by the shape profile and pins `const_cols`
/// columns to a constant (the fitted scale there is exactly zero: every code
/// is 0 and the reconstruction radius must still be exact).
fn apply_columns(m: &Matrix, shape: u64, const_cols: usize) -> Matrix {
    Matrix::from_fn(m.rows(), m.cols(), |r, c| {
        if c < const_cols {
            7.25 // exactly representable constant column
        } else {
            m.get(r, c) * column_scale(shape, c)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Quantized top-k equals the reference across column-scale profiles,
    /// constant columns, duplicate rows, and every k class.
    #[test]
    fn quantized_topk_equals_reference_across_column_profiles(
        seed in 0u64..400,
        n in 1usize..90,
        nlist in 1usize..32,
        shape in 0u64..65536,
        const_cols in 0usize..3,
        threads in 1usize..8,
    ) {
        let (raw_train, _) = cloud_with_ties(seed, n, 5, 3);
        let (raw_test, _) = cloud(seed ^ 0x77, 13, 5, 3);
        let train_x = apply_columns(&raw_train, shape, const_cols);
        let test_x = apply_columns(&raw_test, shape, const_cols);
        let engine = EvalEngine::with_threads(threads);
        for metric in prunable_metrics() {
            let index =
                ClusteredIndex::build_with_engine(train_x.view(), metric, nlist, engine).quantize();
            for k in [1usize, 3, 10, n] {
                let got = index.topk(test_x.view(), k);
                let reference = knn_reference(train_x.view(), test_x.view(), metric, k);
                prop_assert_eq!(got, reference, "metric {} k {} shape {:#x}", metric.name(), k, shape);
            }
        }
    }

    /// Leave-one-out through the int8 phase: row i's list never contains i,
    /// even when duplicate rows tie at approximate distance zero.
    #[test]
    fn quantized_loo_equals_reference(
        seed in 0u64..400,
        n in 2usize..70,
        nlist in 1usize..24,
        shape in 0u64..65536,
    ) {
        let (raw, _) = cloud_with_ties(seed, n, 4, 3);
        let data = apply_columns(&raw, shape, 1);
        for metric in prunable_metrics() {
            let index = ClusteredIndex::build(data.view(), metric, nlist).quantize();
            for k in [1usize, 3, 10, n] {
                let got = index.topk_loo(data.view(), k);
                prop_assert_eq!(&got, &knn_reference_loo(data.view(), metric, k));
                for q in 0..got.num_queries() {
                    prop_assert!(got.neighbors(q).iter().all(|h| h.index != q));
                }
            }
        }
    }

    /// The incremental append path with a quantized backend: batches after
    /// the first are encoded against the frozen affine of the last partition
    /// (out-of-distribution rows clamp), re-fit only at growth re-partitions
    /// — and every prefix stays bit-identical to a cold exhaustive build.
    #[test]
    fn quantized_incremental_appends_equal_cold_reference(
        seed in 0u64..300,
        batch in 1usize..40,
        nlist in 1usize..12,
        shape in 0u64..65536,
        growth in 1usize..3,
    ) {
        let (raw_train, train_y) = cloud_with_ties(seed, 70, 4, 3);
        let (raw_test, test_y) = cloud(seed ^ 0x5eed, 11, 4, 3);
        let train_x = apply_columns(&raw_train, shape, 1);
        let test_x = apply_columns(&raw_test, shape, 1);
        let mut state = IncrementalTopK::new(test_x.clone(), test_y, Metric::SquaredEuclidean, 4)
            .with_backend(EvalBackend::quantized(nlist))
            .with_repartition_policy(RepartitionPolicy::Growth(growth as f64));
        let mut consumed = 0;
        let view = train_x.view();
        for chunk in view.batches(batch) {
            let len = chunk.rows();
            state.append(chunk, &train_y[consumed..consumed + len]);
            consumed += len;
            let cold = knn_reference(view.slice_rows(0, consumed), test_x.view(), Metric::SquaredEuclidean, 4);
            prop_assert_eq!(state.table(), cold, "prefix {} shape {:#x}", consumed, shape);
        }
    }
}

/// Deterministic edge shapes the ranges cannot hit exactly: an all-constant
/// dataset (every scale zero, every code zero, approximate distance exactly
/// `‖q − o‖²`), an all-subnormal dataset, and single-row / k = len extremes.
#[test]
fn degenerate_constant_and_subnormal_datasets() {
    for metric in prunable_metrics() {
        // Every row identical: all columns constant, all radii zero.
        let flat = Matrix::from_fn(20, 4, |_, _| 3.5);
        let (queries, _) = cloud(9, 7, 4, 2);
        let index = ClusteredIndex::build(flat.view(), metric, 4).quantize();
        assert!(index.is_quantized());
        assert_eq!(
            index.topk(queries.view(), 20),
            knn_reference(flat.view(), queries.view(), metric, 20),
            "constant dataset, metric {}",
            metric.name()
        );

        // Entirely subnormal coordinates: every squared distance underflows
        // to zero and the lexicographic tie-break decides everything.
        let tiny = Matrix::from_fn(12, 3, |r, c| ((r + c) as f32 - 6.0) * 1.0e-41);
        let index = ClusteredIndex::build(tiny.view(), metric, 3).quantize();
        assert_eq!(
            index.topk_loo(tiny.view(), 5),
            knn_reference_loo(tiny.view(), metric, 5),
            "subnormal dataset, metric {}",
            metric.name()
        );

        // One row, k = len = 1.
        let one = Matrix::from_fn(1, 4, |_, c| c as f32);
        let index = ClusteredIndex::build(one.view(), metric, 8).quantize();
        assert_eq!(
            index.topk(queries.view().slice_rows(0, 3), 1),
            knn_reference(one.view(), queries.view().slice_rows(0, 3), metric, 1)
        );
    }
}
