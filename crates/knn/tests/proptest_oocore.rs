//! Property-based pin of the out-of-core contract: a dataset written to the
//! versioned disk format and reopened as an mmap-backed view is
//! **bit-identical** to the in-memory matrix through every consumer — the
//! exhaustive engine, the clustered and quantized indexes, the
//! [`IncrementalTopK`] append/evict paths, and the shard-paged
//! [`ShardedIndex`] under budgets small enough to force eviction
//! mid-query. Backing must be invisible: same bytes in, same bits out.

use proptest::prelude::*;
use snoopy_knn::{EvalBackend, EvalEngine, IncrementalTopK, Metric, ShardedIndex};
use snoopy_linalg::disk::{DiskDataset, DiskLabels};
use snoopy_testutil::{cloud_with_ties, TempDir};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Disk-backed train/query views equal the in-memory ones bit for bit
    /// through the exhaustive, clustered, and quantized paths, plus the
    /// sharded index under an eviction-forcing budget.
    #[test]
    fn disk_views_match_memory_through_every_backend(
        seed in 0u64..500,
        n in 40usize..120,
        d in 2usize..7,
        nlist in 2usize..9,
        k in 1usize..6,
    ) {
        let (train, _) = cloud_with_ties(seed, n, d, 3);
        let (queries, _) = cloud_with_ties(seed ^ 0x00c0_4e5e, 11, d, 3);
        let dir = TempDir::new("proptest_oocore");
        let train_path = dir.path().join("train.snpy");
        let query_path = dir.path().join("queries.snpy");
        DiskDataset::write(&train_path, train.view()).expect("write train");
        DiskDataset::write(&query_path, queries.view()).expect("write queries");
        let disk_train = DiskDataset::open(&train_path).expect("open train");
        let disk_queries = DiskDataset::open(&query_path).expect("open queries");
        prop_assert_eq!(disk_train.view().data(), train.view().data());

        let engine = EvalEngine::parallel();
        for metric in Metric::all() {
            for backend in [
                EvalBackend::Exhaustive,
                EvalBackend::clustered(nlist),
                EvalBackend::quantized(nlist),
            ] {
                let memory = engine.topk_with_backend(train.view(), queries.view(), metric, k, backend);
                let disk = engine.topk_with_backend(
                    disk_train.view(),
                    disk_queries.view(),
                    metric,
                    k,
                    backend,
                );
                prop_assert_eq!(&disk, &memory, "metric {} backend {}", metric.name(), backend.name());
            }
        }

        // The shard-paged index over the mapped view, with a budget of
        // roughly two shards so most queries evict mid-flight.
        let shard_bytes = (n / nlist).max(1) * d * 4;
        for quantize in [false, true] {
            for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
                let reference = engine.topk_with_backend(
                    train.view(), queries.view(), metric, k, EvalBackend::clustered(nlist),
                );
                let mut sharded =
                    ShardedIndex::build(disk_train.view(), metric, nlist, 2 * shard_bytes);
                if quantize {
                    sharded = sharded.quantize();
                }
                prop_assert_eq!(
                    &sharded.topk(disk_queries.view(), k),
                    &reference,
                    "sharded metric {} quantize {}", metric.name(), quantize
                );
                let rb = sharded.resident_bytes();
                prop_assert!(
                    rb.peak <= rb.budget + rb.max_shard,
                    "peak {} budget {} max_shard {}", rb.peak, rb.budget, rb.max_shard
                );
                let loo_ref = engine.topk_loo_with_backend(
                    train.view(), metric, k, EvalBackend::clustered(nlist),
                );
                prop_assert_eq!(&sharded.topk_loo(disk_train.view(), k), &loo_ref);
            }
        }
    }

    /// The prefetch pipeline is invisible in results: at every depth ×
    /// eviction-forcing budget the pipelined scan produces the depth-0
    /// serial scan's table bit for bit, the staging area drains, the
    /// counters balance (every speculative load ends committed or wasted,
    /// and faults + commits equal the serial fault count), and peak
    /// residency honours `budget + (1 + P) × max_shard`. The in-flight
    /// staging bound (never more than `P` shards' worth of staged bytes)
    /// is debug-asserted inside the cache on every commit/evict cycle,
    /// which these debug-built cases exercise on every query.
    #[test]
    fn prefetch_depths_are_bit_identical_to_serial(
        seed in 0u64..500,
        n in 60usize..160,
        d in 2usize..7,
        nlist in 3usize..9,
        k in 1usize..6,
        budget_shards in 1usize..4,
    ) {
        let (train, _) = cloud_with_ties(seed, n, d, 3);
        let (queries, _) = cloud_with_ties(seed ^ 0x00c0_4e5e, 13, d, 3);
        let dir = TempDir::new("proptest_oocore_pf");
        let train_path = dir.path().join("train.snpy");
        let query_path = dir.path().join("queries.snpy");
        DiskDataset::write(&train_path, train.view()).expect("write train");
        DiskDataset::write(&query_path, queries.view()).expect("write queries");
        let disk_train = DiskDataset::open(&train_path).expect("open train");
        let disk_queries = DiskDataset::open(&query_path).expect("open queries");

        let shard_bytes = (n / nlist).max(1) * d * 4;
        let budget = budget_shards * shard_bytes;
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let mut serial = ShardedIndex::build(disk_train.view(), metric, nlist, budget);
            let reference = serial.topk(disk_queries.view(), k);
            let serial_paging = serial.paging_stats();
            for depth in [1usize, 4] {
                let mut piped = ShardedIndex::build(disk_train.view(), metric, nlist, budget)
                    .with_prefetch_depth(depth);
                prop_assert_eq!(
                    &piped.topk(disk_queries.view(), k),
                    &reference,
                    "metric {} depth {}", metric.name(), depth
                );
                let paging = piped.paging_stats();
                prop_assert_eq!(
                    paging.shards_faulted + paging.prefetch_committed,
                    serial_paging.shards_faulted,
                    "every serial fault is a fault or a commit: {:?}", paging
                );
                prop_assert_eq!(paging.shards_evicted, serial_paging.shards_evicted);
                prop_assert_eq!(
                    paging.shards_prefetched,
                    paging.prefetch_committed + paging.prefetch_wasted,
                    "speculative loads must balance: {:?}", paging
                );
                let rb = piped.resident_bytes();
                prop_assert_eq!(rb.staged, 0, "staging must drain");
                prop_assert!(
                    rb.peak <= rb.budget + (1 + depth) * rb.max_shard,
                    "depth {}: peak {} budget {} max_shard {}",
                    depth, rb.peak, rb.budget, rb.max_shard
                );
            }
        }
    }

    /// The incremental state fed disk-backed batches (append + oldest-row
    /// eviction) tracks its memory-fed twin bit for bit at every step.
    #[test]
    fn incremental_append_evict_is_backing_oblivious(
        seed in 0u64..500,
        batch in 4usize..24,
        evict in 1usize..10,
        k in 1usize..4,
    ) {
        let n = 64;
        let (train_x, train_y) = cloud_with_ties(seed, n, 5, 3);
        let (test_x, test_y) = cloud_with_ties(seed ^ 0x7e57, 9, 5, 3);
        let dir = TempDir::new("proptest_oocore_inc");
        let train_path = dir.path().join("train.snpy");
        let labels_path = dir.path().join("train_labels.snpy");
        let test_path = dir.path().join("test.snpy");
        DiskDataset::write(&train_path, train_x.view()).expect("write train");
        DiskLabels::write(&labels_path, &train_y, 3).expect("write labels");
        DiskDataset::write(&test_path, test_x.view()).expect("write test");
        let disk_train = DiskDataset::open(&train_path).expect("open train");
        let disk_labels = DiskLabels::open(&labels_path).expect("open labels");
        let disk_test = DiskDataset::open(&test_path).expect("open test");
        prop_assert_eq!(disk_labels.labels(), &train_y[..]);

        for metric in Metric::all() {
            let mut from_memory = IncrementalTopK::new(test_x.clone(), test_y.clone(), metric, k)
                .with_eviction(1);
            let mut from_disk =
                IncrementalTopK::new(disk_test.view().to_matrix(), test_y.clone(), metric, k)
                    .with_eviction(1);
            let mut consumed = 0usize;
            while consumed < n {
                let end = (consumed + batch).min(n);
                from_memory.append(
                    train_x.view().slice_rows(consumed, end),
                    &train_y[consumed..end],
                );
                from_disk.append(
                    disk_train.view().slice_rows(consumed, end),
                    &disk_labels.labels()[consumed..end],
                );
                consumed = end;
                prop_assert_eq!(from_disk.table(), from_memory.table(), "append to {}", consumed);
                prop_assert_eq!(from_disk.error(), from_memory.error());
                if consumed < n {
                    let mem_report = from_memory.evict_oldest(evict);
                    let disk_report = from_disk.evict_oldest(evict);
                    prop_assert_eq!(disk_report, mem_report);
                    prop_assert_eq!(from_disk.table(), from_memory.table(), "evict at {}", consumed);
                }
            }
        }
    }
}
