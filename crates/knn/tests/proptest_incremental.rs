//! Property-based pin of the incremental top-k successor state's central
//! guarantee: an [`IncrementalTopK`] grown by arbitrary appends is
//! **bit-identical** to a cold [`EvalEngine::topk`] build over the consumed
//! prefix — across metrics, `k ∈ {1, 3, 10, len}`, batch shapes, clustered
//! vs exhaustive backends, and with relabels interleaved between appends
//! (relabels touch no features, so they must never perturb the table).

use proptest::prelude::*;
use snoopy_knn::{EvalBackend, EvalEngine, IncrementalTopK, Metric};
use snoopy_testutil::{cloud, cloud_with_ties};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Appended-then-queried state == cold `EvalEngine::topk`, bit for bit,
    /// at every batch boundary, for both backends.
    #[test]
    fn appended_state_equals_cold_topk(
        seed in 0u64..400,
        n in 4usize..60,
        batch in 1usize..25,
        nlist in 1usize..10,
    ) {
        // Duplicated rows so distance ties actually occur — the tie-break is
        // part of the contract.
        let (train_x, train_y) = cloud_with_ties(seed, n, 5, 3);
        let (test_x, test_y) = cloud(seed ^ 0x1271, 13, 5, 3);
        let engine = EvalEngine::parallel();
        for metric in Metric::all() {
            for k in [1usize, 3, 10, n] {
                for backend in [EvalBackend::Exhaustive, EvalBackend::clustered(nlist), EvalBackend::quantized(nlist)] {
                    let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), metric, k)
                        .with_backend(backend);
                    let mut consumed = 0;
                    while consumed < n {
                        let end = (consumed + batch).min(n);
                        state.append(train_x.view().slice_rows(consumed, end), &train_y[consumed..end]);
                        consumed = end;
                        let cold = engine.topk(train_x.view().prefix(consumed), test_x.view(), metric, k);
                        prop_assert_eq!(
                            &state.table(),
                            &cold,
                            "metric {} k {} backend {} prefix {}",
                            metric.name(), k, backend.name(), consumed
                        );
                    }
                }
            }
        }
    }

    /// Relabels interleaved with appends: the error refresh equals a cold
    /// rebuild under the current labels at every step, and the neighbour
    /// table is label-oblivious.
    #[test]
    fn interleaved_relabels_track_cold_rebuild(
        seed in 0u64..400,
        batch in 1usize..20,
        edits in prop::collection::vec((0usize..48, 0u32..3), 1..20),
        backend_pick in 0usize..2,
    ) {
        let n = 48;
        let (train_x, mut train_y) = cloud(seed, n, 4, 3);
        let (test_x, mut test_y) = cloud(seed ^ 0xfeed, 11, 4, 3);
        let backend =
            if backend_pick == 1 { EvalBackend::clustered(4) } else { EvalBackend::Exhaustive };
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 3)
            .with_backend(backend);
        let engine = EvalEngine::parallel();
        let mut consumed = 0;
        let mut edit_iter = edits.into_iter();
        while consumed < n {
            let end = (consumed + batch).min(n);
            state.append(train_x.view().slice_rows(consumed, end), &train_y[consumed..end]);
            consumed = end;
            // Interleave one relabel of an already-consumed train row and one
            // test row between appends.
            if let Some((idx, label)) = edit_iter.next() {
                let ti = idx % consumed;
                train_y[ti] = label;
                state.relabel_train(ti, label);
                let qi = idx % test_y.len();
                test_y[qi] = (label + 1) % 3;
                state.relabel_test(qi, (label + 1) % 3);
            }
            let cold = engine.topk(train_x.view().prefix(consumed), test_x.view(), Metric::SquaredEuclidean, 3);
            prop_assert_eq!(&state.table(), &cold, "table must be label-oblivious at prefix {}", consumed);
            let cold_err = cold.one_nn_error(&train_y[..consumed], &test_y);
            prop_assert_eq!(state.error().to_bits(), cold_err.to_bits(), "1NN refresh at prefix {}", consumed);
            let cold_k3 = cold.knn_error(3, &train_y[..consumed], &test_y, 3);
            prop_assert_eq!(state.knn_error(3, 3).to_bits(), cold_k3.to_bits(), "k-vote refresh at prefix {}", consumed);
        }
    }
}
