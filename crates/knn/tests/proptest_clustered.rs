//! Property tests pinning the exactness guarantee of the clustered index:
//! the k-means + triangle-inequality-pruned path is **bit-identical** to the
//! serial sort-based reference (and hence to the exhaustive engine) for
//! every prunable metric, k ∈ {1, 3, 10, len}, arbitrary `nlist` (including
//! `nlist > n`), duplicate rows, single-cluster partitions, and the
//! self-excluding leave-one-out mode — the same way `proptest_knn.rs` pinned
//! the parallel engine.

use proptest::prelude::*;
use snoopy_knn::engine::{knn_reference, knn_reference_loo};
use snoopy_knn::{ClusteredIndex, EvalBackend, EvalEngine, Metric, TopKState};
use snoopy_testutil::{cloud, cloud_with_ties};

fn prunable_metrics() -> [Metric; 2] {
    [Metric::SquaredEuclidean, Metric::Euclidean]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold-start clustered top-k equals the reference for arbitrary data
    /// shapes and cluster counts (including nlist = 1 and nlist > n), with
    /// duplicated rows so the lexicographic tie-break is exercised.
    #[test]
    fn clustered_topk_equals_reference(
        seed in 0u64..400,
        n in 1usize..90,
        nlist in 1usize..64,
        threads in 1usize..8,
    ) {
        let (train_x, _) = cloud_with_ties(seed, n, 5, 3);
        let (test_x, _) = cloud(seed ^ 0x77, 17, 5, 3);
        let engine = EvalEngine::with_threads(threads);
        for metric in prunable_metrics() {
            let index = ClusteredIndex::build_with_engine(train_x.view(), metric, nlist, engine);
            prop_assert!(index.num_clusters() <= n.min(nlist));
            for k in [1usize, 3, 10, n] {
                let got = index.topk(test_x.view(), k);
                let reference = knn_reference(train_x.view(), test_x.view(), metric, k);
                prop_assert_eq!(got, reference, "metric {} k {} nlist {}", metric.name(), k, nlist);
            }
        }
    }

    /// The self-excluding leave-one-out mode equals the reference: row i's
    /// list never contains i, even with duplicate rows at distance zero.
    #[test]
    fn clustered_loo_equals_reference(
        seed in 0u64..400,
        n in 2usize..70,
        nlist in 1usize..32,
    ) {
        let (data, _) = cloud_with_ties(seed, n, 4, 3);
        for metric in prunable_metrics() {
            let index = ClusteredIndex::build(data.view(), metric, nlist);
            for k in [1usize, 3, 10, n] {
                let got = index.topk_loo(data.view(), k);
                let reference = knn_reference_loo(data.view(), metric, k);
                prop_assert_eq!(&got, &reference, "metric {} k {} nlist {}", metric.name(), k, nlist);
                for q in 0..got.num_queries() {
                    prop_assert!(got.neighbors(q).iter().all(|h| h.index != q));
                }
            }
        }
    }

    /// The backend dispatcher is exact for every metric — cosine resolves
    /// back to the exhaustive kernel, prunable metrics go through the index.
    #[test]
    fn backend_dispatch_equals_reference_for_all_metrics(
        seed in 0u64..300,
        n in 1usize..80,
        nlist in 1usize..24,
    ) {
        let (train_x, _) = cloud_with_ties(seed, n, 4, 3);
        let (test_x, _) = cloud(seed ^ 0xbeef, 11, 4, 3);
        let engine = EvalEngine::parallel();
        for metric in Metric::all() {
            for backend in [EvalBackend::Exhaustive, EvalBackend::clustered(nlist), EvalBackend::quantized(nlist)] {
                let got = engine.topk_with_backend(train_x.view(), test_x.view(), metric, 5, backend);
                let reference = knn_reference(train_x.view(), test_x.view(), metric, 5);
                prop_assert_eq!(got, reference, "metric {} backend {}", metric.name(), backend.name());
                if n >= 2 {
                    let loo = engine.topk_loo_with_backend(train_x.view(), metric, 4, backend);
                    prop_assert_eq!(loo, knn_reference_loo(train_x.view(), metric, 4));
                }
            }
        }
    }

    /// Streamed fold parity: seeding states with earlier batches' results
    /// and folding the remaining batches through per-batch clustered indexes
    /// accumulates to the cold-start reference.
    #[test]
    fn streamed_clustered_fold_accumulates_to_reference(
        seed in 0u64..300,
        batch in 1usize..40,
        nlist in 1usize..12,
    ) {
        let (train_x, _) = cloud_with_ties(seed, 70, 4, 3);
        let (test_x, _) = cloud(seed ^ 0x5eed, 13, 4, 3);
        for metric in prunable_metrics() {
            let mut states = vec![TopKState::new(4); test_x.rows()];
            let mut consumed = 0;
            for chunk in train_x.view().batches(batch) {
                let index = ClusteredIndex::build(chunk, metric, nlist);
                index.update_topk(test_x.view(), consumed, &mut states, None);
                consumed += chunk.rows();
            }
            let table = snoopy_knn::NeighborTable::from_states(&states);
            prop_assert_eq!(table, knn_reference(train_x.view(), test_x.view(), metric, 4), "{}", metric.name());
        }
    }
}

/// Deterministic degenerate shapes the proptest ranges cannot hit exactly.
#[test]
fn degenerate_single_row_and_single_cluster() {
    let (one, _) = cloud(1, 1, 3, 2);
    let (queries, _) = cloud(2, 5, 3, 2);
    for metric in prunable_metrics() {
        let index = ClusteredIndex::build(one.view(), metric, 8);
        assert_eq!(index.num_clusters(), 1);
        assert_eq!(index.topk(queries.view(), 3), knn_reference(one.view(), queries.view(), metric, 3));
    }
    // nlist = 1: a single cluster degenerates to an exhaustive scan and must
    // still be exact.
    let (train_x, _) = cloud_with_ties(3, 50, 4, 3);
    let index = ClusteredIndex::build(train_x.view(), Metric::SquaredEuclidean, 1);
    assert_eq!(index.num_clusters(), 1);
    let (test_x, _) = cloud(4, 9, 4, 3);
    assert_eq!(
        index.topk(test_x.view(), 7),
        knn_reference(train_x.view(), test_x.view(), Metric::SquaredEuclidean, 7)
    );
}
