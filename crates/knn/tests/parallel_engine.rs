//! Integration tests pinning down the central guarantee of the evaluation
//! engine: the blocked, chunk-parallel paths — 1NN *and* top-k — return
//! **bit-identical** results to the plain serial reference loops, for every
//! metric, every engine shape, batch-streamed ingestion, and through every
//! consumer (index queries, batch evaluation, leave-one-out, and the
//! incremental top-k state).

use snoopy_knn::engine::{
    knn_reference, knn_reference_loo, nearest_reference, EvalEngine, NeighborTable, TopKState,
};
use snoopy_knn::{BruteForceIndex, IncrementalTopK, Metric};
use snoopy_linalg::{LabeledView, Matrix};
// Shared fixture (duplicated rows so distance ties actually occur —
// tie-breaking is part of the bit-identical contract).
use snoopy_testutil::cloud_with_ties as cloud;

#[test]
fn engine_is_bit_identical_to_serial_reference_for_all_metrics_and_shapes() {
    let (train_x, _) = cloud(11, 203, 13, 4);
    let (test_x, _) = cloud(12, 61, 13, 4);
    for metric in Metric::all() {
        let reference = nearest_reference(train_x.view(), test_x.view(), metric);
        for threads in [1usize, 2, 3, 8] {
            for block_rows in [1usize, 7, 64, 1024] {
                let engine = EvalEngine::with_threads(threads).with_block_rows(block_rows);
                let got = engine.nearest(train_x.view(), test_x.view(), metric);
                assert_eq!(got, reference, "metric {} threads {threads} block {block_rows}", metric.name());
            }
        }
    }
}

#[test]
fn index_batch_queries_match_reference_indices_and_distances() {
    let (train_x, train_y) = cloud(21, 157, 6, 3);
    let (test_x, test_y) = cloud(22, 43, 6, 3);
    for metric in Metric::all() {
        let reference = nearest_reference(train_x.view(), test_x.view(), metric);
        let index = BruteForceIndex::new(&train_x, &train_y, 3, metric);
        let batch = index.nearest_neighbors_batch(&test_x);
        assert_eq!(batch.len(), reference.len());
        for (got, expected) in batch.iter().zip(&reference) {
            assert_eq!(got.index, expected.index, "metric {}", metric.name());
            assert_eq!(got.distance.to_bits(), expected.distance.to_bits(), "metric {}", metric.name());
            assert_eq!(got.label, train_y[expected.index]);
        }
        // The error computed through the parallel engine equals the error of
        // a forced-serial engine.
        let serial = BruteForceIndex::new(&train_x, &train_y, 3, metric).with_engine(EvalEngine::serial());
        assert_eq!(
            index.one_nn_error(&test_x, &test_y).to_bits(),
            serial.one_nn_error(&test_x, &test_y).to_bits(),
            "metric {}",
            metric.name()
        );
    }
}

#[test]
fn incremental_appends_match_reference_at_every_batch_boundary() {
    let (train_x, train_y) = cloud(31, 120, 5, 3);
    let (test_x, test_y) = cloud(32, 37, 5, 3);
    let train = LabeledView::new(&train_x, &train_y).with_classes(3);
    for metric in Metric::all() {
        for batch_size in [1usize, 13, 40, 120] {
            let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), metric, 1);
            let mut consumed = 0;
            for batch in train.batches(batch_size) {
                state.append(batch.features(), batch.labels());
                consumed += batch.len();
                let prefix = train.prefix(consumed);
                let reference = nearest_reference(prefix.features(), test_x.view(), metric);
                let got = state.nearest_train_indices();
                let expected: Vec<usize> = reference.iter().map(|h| h.index).collect();
                assert_eq!(got, expected, "metric {} batch {batch_size} prefix {consumed}", metric.name());
            }
        }
    }
}

#[test]
fn topk_is_bit_identical_to_serial_reference_for_all_metrics_shapes_and_ks() {
    let (train_x, _) = cloud(51, 149, 9, 4);
    let (test_x, _) = cloud(52, 47, 9, 4);
    for metric in Metric::all() {
        for k in [1usize, 3, 10, 149] {
            let reference = knn_reference(train_x.view(), test_x.view(), metric, k);
            for threads in [1usize, 3, 8] {
                for block_rows in [1usize, 7, 64, 1024] {
                    let engine = EvalEngine::with_threads(threads).with_block_rows(block_rows);
                    let got = engine.topk(train_x.view(), test_x.view(), metric, k);
                    assert_eq!(
                        got,
                        reference,
                        "metric {} k {k} threads {threads} block {block_rows}",
                        metric.name()
                    );
                }
            }
        }
    }
}

#[test]
fn batch_streamed_topk_ingestion_matches_cold_start_and_reference() {
    let (train_x, _) = cloud(61, 131, 6, 3);
    let (test_x, _) = cloud(62, 33, 6, 3);
    let engine = EvalEngine::with_threads(4).with_block_rows(16);
    for metric in Metric::all() {
        for batch_size in [1usize, 13, 50, 131] {
            let mut kernel = snoopy_knn::MetricKernel::new(metric);
            kernel.bind_queries(test_x.view());
            let mut states = vec![TopKState::new(5); test_x.rows()];
            let mut consumed = 0;
            for batch in train_x.view().batches(batch_size) {
                kernel.bind_train(batch);
                engine.update_topk(test_x.view(), &kernel, batch, consumed, &mut states, None);
                consumed += batch.rows();
                // At every batch boundary the accumulated table equals the
                // cold-start answer on the consumed prefix.
                let table = NeighborTable::from_states(&states);
                let prefix = train_x.view().prefix(consumed);
                assert_eq!(
                    table,
                    knn_reference(prefix, test_x.view(), metric, 5),
                    "metric {} batch {batch_size} prefix {consumed}",
                    metric.name()
                );
            }
        }
    }
}

#[test]
fn index_knn_queries_match_the_engine_table() {
    let (train_x, train_y) = cloud(71, 97, 5, 4);
    let (test_x, test_y) = cloud(72, 29, 5, 4);
    for metric in Metric::all() {
        let index = BruteForceIndex::new(&train_x, &train_y, 4, metric);
        for k in [1usize, 4, 97, 500] {
            let table = index.neighbor_table(&test_x, k);
            assert_eq!(table, knn_reference(train_x.view(), test_x.view(), metric, k.min(97)));
            for (qi, q) in test_x.view().rows_iter().enumerate() {
                let singles = index.query_knn(q, k);
                assert_eq!(singles.len(), table.k());
                for (got, expected) in singles.iter().zip(table.neighbors(qi)) {
                    assert_eq!(got.index, expected.index);
                    assert_eq!(got.distance.to_bits(), expected.distance.to_bits());
                    assert_eq!(got.label, train_y[expected.index]);
                }
            }
            // The vote-based error agrees between the parallel table path and
            // a forced-serial engine.
            let serial = index.clone().with_engine(EvalEngine::serial());
            assert_eq!(
                index.knn_error(&test_x, &test_y, k).to_bits(),
                serial.knn_error(&test_x, &test_y, k).to_bits(),
                "metric {} k {k}",
                metric.name()
            );
        }
    }
}

#[test]
fn leave_one_out_error_matches_serial_exclusion_reference() {
    let (train_x, train_y) = cloud(81, 110, 4, 3);
    for metric in Metric::all() {
        let reference = knn_reference_loo(train_x.view(), metric, 1);
        let wrong =
            (0..train_x.rows()).filter(|&i| train_y[reference.neighbors(i)[0].index] != train_y[i]).count();
        let expected = wrong as f64 / train_x.rows() as f64;
        for engine in [EvalEngine::serial(), EvalEngine::parallel()] {
            let index = BruteForceIndex::new(&train_x, &train_y, 3, metric).with_engine(engine);
            assert_eq!(index.leave_one_out_error().to_bits(), expected.to_bits(), "metric {}", metric.name());
            assert_eq!(index.leave_one_out_table(4), knn_reference_loo(train_x.view(), metric, 4));
        }
    }
}

/// The shared tie-break contract (satellite of the top-k refactor): on equal
/// distances the lowest global training index wins — in the engine's top-k
/// kernel and in `query_knn`, which routes through it.
#[test]
fn topk_and_query_knn_share_the_lowest_index_tie_break() {
    // Five copies of each of ten distinct rows: every query's top-15 must be
    // exactly the three lowest-index copies of its five nearest row values.
    let distinct: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32, (i * i) as f32 * 0.1]).collect();
    let rows: Vec<Vec<f32>> = (0..50).map(|r| distinct[r % 10].clone()).collect();
    let train_x = Matrix::from_rows(&rows);
    let train_y: Vec<u32> = (0..50).map(|i| (i % 3) as u32).collect();
    let (test_x, _) = cloud(91, 12, 2, 3);
    for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
        let reference = knn_reference(train_x.view(), test_x.view(), metric, 15);
        let engine_table =
            EvalEngine::with_threads(4).with_block_rows(8).topk(train_x.view(), test_x.view(), metric, 15);
        assert_eq!(engine_table, reference);
        let index = BruteForceIndex::new(&train_x, &train_y, 3, metric);
        for (qi, q) in test_x.view().rows_iter().enumerate() {
            let neighbors = index.query_knn(q, 15);
            let idx: Vec<usize> = neighbors.iter().map(|n| n.index).collect();
            let expected: Vec<usize> = reference.neighbors(qi).iter().map(|h| h.index).collect();
            assert_eq!(idx, expected, "metric {} query {qi}", metric.name());
            // Equal-distance groups are ordered by ascending global index.
            for w in neighbors.windows(2) {
                assert!(
                    w[0].distance < w[1].distance
                        || (w[0].distance == w[1].distance && w[0].index < w[1].index),
                    "ties must resolve to the lowest index"
                );
            }
        }
    }
}

/// Regression for the lexicographic admission invariant of `update_topk`:
/// the original tie-break test covered batch-streamed ingestion at a single
/// block size. This sweep pins the invariant against *both* knobs — block
/// sizes {1, 7, exact-multiple, > n} and thread counts {1, 2, 8} — for
/// cold-start and batch-streamed ingestion on tie-saturated data (five
/// copies of each distinct row value).
#[test]
fn topk_tie_break_is_invariant_across_block_sizes_and_thread_counts() {
    let distinct: Vec<Vec<f32>> =
        (0..12).map(|i| vec![i as f32 * 0.5, (i * i) as f32 * 0.1, -(i as f32)]).collect();
    let rows: Vec<Vec<f32>> = (0..60).map(|r| distinct[r % 12].clone()).collect();
    let train_x = Matrix::from_rows(&rows);
    let (test_x, _) = cloud(93, 14, 3, 2);
    let n = train_x.rows();
    for metric in Metric::all() {
        for k in [1usize, 6, 17] {
            let reference = knn_reference(train_x.view(), test_x.view(), metric, k);
            for threads in [1usize, 2, 8] {
                // Block sizes: degenerate (1), odd (7), an exact divisor of
                // n (15 divides 60), and one larger than n.
                for block_rows in [1usize, 7, 15, n + 40] {
                    let engine = EvalEngine::with_threads(threads).with_block_rows(block_rows);
                    let cold = engine.topk(train_x.view(), test_x.view(), metric, k);
                    assert_eq!(
                        cold,
                        reference,
                        "cold metric {} k {k} threads {threads} block {block_rows}",
                        metric.name()
                    );
                    for batch in [1usize, 7, n, n + 40] {
                        let mut kernel = snoopy_knn::MetricKernel::new(metric);
                        kernel.bind_queries(test_x.view());
                        let mut states = vec![TopKState::new(k); test_x.rows()];
                        let mut consumed = 0;
                        for chunk in train_x.view().batches(batch) {
                            kernel.bind_train(chunk);
                            engine.update_topk(test_x.view(), &kernel, chunk, consumed, &mut states, None);
                            consumed += chunk.rows();
                        }
                        assert_eq!(
                            NeighborTable::from_states(&states),
                            reference,
                            "streamed metric {} k {k} threads {threads} block {block_rows} batch {batch}",
                            metric.name()
                        );
                    }
                }
            }
        }
    }
}

/// The tile-size sweep (CI runs this by name): results are bit-identical
/// across every tile size — degenerate (1), lane-straddling (3, 9), the
/// register block and its neighbours (4, 5), non-divisors of the block size,
/// and tiles larger than the training set — for every metric and for the
/// exhaustive, clustered, and streamed consumers.
#[test]
fn tile_sweep_is_bit_identical_across_every_consumer() {
    let (train_x, train_y) = cloud(97, 143, 11, 3);
    let (test_x, test_y) = cloud(98, 31, 11, 3);
    let train = LabeledView::new(&train_x, &train_y).with_classes(3);
    for metric in Metric::all() {
        for k in [1usize, 5] {
            let reference = knn_reference(train_x.view(), test_x.view(), metric, k);
            for tile_rows in [1usize, 3, 4, 5, 9, 33, 64, 200] {
                let engine = EvalEngine::with_threads(3).with_tile_rows(tile_rows);
                assert_eq!(
                    engine.topk(train_x.view(), test_x.view(), metric, k),
                    reference,
                    "metric {} k {k} tile {tile_rows}",
                    metric.name()
                );
            }
        }
    }
    // Clustered and streamed consumers under the same sweep.
    let reference = knn_reference(train_x.view(), test_x.view(), Metric::SquaredEuclidean, 5);
    let full_error =
        BruteForceIndex::from_view(train, Metric::SquaredEuclidean).one_nn_error(&test_x, &test_y);
    for tile_rows in [1usize, 5, 33, 200] {
        let engine = EvalEngine::with_threads(2).with_tile_rows(tile_rows);
        let index = snoopy_knn::ClusteredIndex::build_with_engine(
            train_x.view(),
            Metric::SquaredEuclidean,
            9,
            engine,
        );
        assert_eq!(index.topk(test_x.view(), 5), reference, "clustered tile {tile_rows}");
        let mut state = IncrementalTopK::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean, 1)
            .with_engine(engine);
        for batch in LabeledView::new(&train_x, &train_y).batches(29) {
            state.append(batch.features(), batch.labels());
        }
        assert_eq!(state.error().to_bits(), full_error.to_bits(), "incremental tile {tile_rows}");
    }
}

#[test]
fn leading_duplicates_resolve_to_the_lowest_train_index() {
    // All training rows identical: the nearest index must always be 0 for
    // every engine shape (strict `<` keeps the first minimum).
    let train_x = Matrix::from_fn(50, 4, |_, _| 1.5);
    let train_y: Vec<u32> = (0..50).map(|i| (i % 2) as u32).collect();
    let (test_x, _) = cloud(41, 16, 4, 2);
    for metric in Metric::all() {
        for threads in [1usize, 4] {
            let engine = EvalEngine::with_threads(threads).with_block_rows(8);
            let hits = engine.nearest(train_x.view(), test_x.view(), metric);
            assert!(hits.iter().all(|h| h.index == 0), "metric {} threads {threads}", metric.name());
        }
        let index = BruteForceIndex::new(&train_x, &train_y, 2, metric);
        assert!(index.nearest_neighbors_batch(&test_x).iter().all(|n| n.index == 0));
    }
}
