//! Integration tests pinning down the central guarantee of the evaluation
//! engine: the blocked, chunk-parallel 1NN path returns **bit-identical**
//! results to the plain serial reference loop, for every metric, every
//! engine shape, and through every consumer (index batch queries and the
//! streamed evaluator).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snoopy_knn::engine::{nearest_reference, EvalEngine};
use snoopy_knn::{BruteForceIndex, Metric, StreamedOneNn};
use snoopy_linalg::{LabeledView, Matrix};

/// Random labelled point cloud with a few duplicated rows so distance ties
/// actually occur (tie-breaking is part of the bit-identical contract).
fn cloud(seed: u64, n: usize, d: usize, classes: u32) -> (Matrix, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::from_fn(n, d, |_, _| rng.gen::<f32>() * 10.0 - 5.0);
    // Duplicate every 7th row from the row before it.
    for r in (7..n).step_by(7) {
        let prev = m.row(r - 1).to_vec();
        m.row_mut(r).copy_from_slice(&prev);
    }
    let y = (0..n).map(|_| rng.gen_range(0..classes)).collect();
    (m, y)
}

#[test]
fn engine_is_bit_identical_to_serial_reference_for_all_metrics_and_shapes() {
    let (train_x, _) = cloud(11, 203, 13, 4);
    let (test_x, _) = cloud(12, 61, 13, 4);
    for metric in Metric::all() {
        let reference = nearest_reference(train_x.view(), test_x.view(), metric);
        for threads in [1usize, 2, 3, 8] {
            for block_rows in [1usize, 7, 64, 1024] {
                let engine = EvalEngine::with_threads(threads).with_block_rows(block_rows);
                let got = engine.nearest(train_x.view(), test_x.view(), metric);
                assert_eq!(got, reference, "metric {} threads {threads} block {block_rows}", metric.name());
            }
        }
    }
}

#[test]
fn index_batch_queries_match_reference_indices_and_distances() {
    let (train_x, train_y) = cloud(21, 157, 6, 3);
    let (test_x, test_y) = cloud(22, 43, 6, 3);
    for metric in Metric::all() {
        let reference = nearest_reference(train_x.view(), test_x.view(), metric);
        let index = BruteForceIndex::new(&train_x, &train_y, 3, metric);
        let batch = index.nearest_neighbors_batch(&test_x);
        assert_eq!(batch.len(), reference.len());
        for (got, expected) in batch.iter().zip(&reference) {
            assert_eq!(got.index, expected.index, "metric {}", metric.name());
            assert_eq!(got.distance.to_bits(), expected.distance.to_bits(), "metric {}", metric.name());
            assert_eq!(got.label, train_y[expected.index]);
        }
        // The error computed through the parallel engine equals the error of
        // a forced-serial engine.
        let serial = BruteForceIndex::new(&train_x, &train_y, 3, metric).with_engine(EvalEngine::serial());
        assert_eq!(
            index.one_nn_error(&test_x, &test_y).to_bits(),
            serial.one_nn_error(&test_x, &test_y).to_bits(),
            "metric {}",
            metric.name()
        );
    }
}

#[test]
fn streamed_evaluation_matches_reference_at_every_batch_boundary() {
    let (train_x, train_y) = cloud(31, 120, 5, 3);
    let (test_x, test_y) = cloud(32, 37, 5, 3);
    let train = LabeledView::new(&train_x, &train_y).with_classes(3);
    for metric in Metric::all() {
        for batch_size in [1usize, 13, 40, 120] {
            let mut stream = StreamedOneNn::new(test_x.clone(), test_y.clone(), metric);
            let mut consumed = 0;
            for batch in train.batches(batch_size) {
                stream.add_train_batch(batch.features(), batch.labels());
                consumed += batch.len();
                let prefix = train.prefix(consumed);
                let reference = nearest_reference(prefix.features(), test_x.view(), metric);
                let got = stream.nearest_train_indices();
                let expected: Vec<usize> = reference.iter().map(|h| h.index).collect();
                assert_eq!(got, expected, "metric {} batch {batch_size} prefix {consumed}", metric.name());
            }
        }
    }
}

#[test]
fn leading_duplicates_resolve_to_the_lowest_train_index() {
    // All training rows identical: the nearest index must always be 0 for
    // every engine shape (strict `<` keeps the first minimum).
    let train_x = Matrix::from_fn(50, 4, |_, _| 1.5);
    let train_y: Vec<u32> = (0..50).map(|i| (i % 2) as u32).collect();
    let (test_x, _) = cloud(41, 16, 4, 2);
    for metric in Metric::all() {
        for threads in [1usize, 4] {
            let engine = EvalEngine::with_threads(threads).with_block_rows(8);
            let hits = engine.nearest(train_x.view(), test_x.view(), metric);
            assert!(hits.iter().all(|h| h.index == 0), "metric {} threads {threads}", metric.name());
        }
        let index = BruteForceIndex::new(&train_x, &train_y, 2, metric);
        assert!(index.nearest_neighbors_batch(&test_x).iter().all(|n| n.index == 0));
    }
}
