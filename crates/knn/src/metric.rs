//! Distance metrics for nearest-neighbour search.
//!
//! The distance *expressions* live in one place — [`crate::kernel`] — and
//! [`Metric::distance`] delegates there, so a scalar call is bit-identical
//! to the tiled engine paths on the same pair of rows.

/// Dissimilarity used to rank neighbours.
///
/// The paper's estimator uses Euclidean or cosine dissimilarity depending on
/// the embedding; all three options rank identically to their "proper"
/// counterparts (squared Euclidean ranks like Euclidean), so the cheapest
/// variant is preferred inside hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Squared L2 distance (monotone in L2; cheapest to evaluate).
    SquaredEuclidean,
    /// L2 distance.
    Euclidean,
    /// Cosine dissimilarity `1 - cos(a, b)`; zero vectors are maximally
    /// dissimilar to everything except other zero vectors.
    Cosine,
}

impl Metric {
    /// All supported metrics.
    pub fn all() -> [Metric; 3] {
        [Metric::SquaredEuclidean, Metric::Euclidean, Metric::Cosine]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::SquaredEuclidean => "sq-euclidean",
            Metric::Euclidean => "euclidean",
            Metric::Cosine => "cosine",
        }
    }

    /// Dissimilarity between two feature vectors — evaluated by the kernel
    /// layer's scalar reference ([`crate::kernel::pair_distance`]), which is
    /// bit-identical to the tile-blocked engine paths.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        crate::kernel::pair_distance(*self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_enumeration() {
        assert_eq!(Metric::all().len(), 3);
        assert_eq!(Metric::Cosine.name(), "cosine");
        assert_eq!(Metric::Euclidean.name(), "euclidean");
    }

    #[test]
    fn euclidean_values() {
        let a = [0.0f32, 0.0];
        let b = [3.0f32, 4.0];
        assert_eq!(Metric::SquaredEuclidean.distance(&a, &b), 25.0);
        assert_eq!(Metric::Euclidean.distance(&a, &b), 5.0);
    }

    #[test]
    fn cosine_ranges_and_edge_cases() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let c = [2.0f32, 0.0];
        let z = [0.0f32, 0.0];
        assert!((Metric::Cosine.distance(&a, &b) - 1.0).abs() < 1e-6);
        assert!(Metric::Cosine.distance(&a, &c).abs() < 1e-6);
        assert!((Metric::Cosine.distance(&a, &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
        assert_eq!(Metric::Cosine.distance(&z, &z), 0.0);
        assert_eq!(Metric::Cosine.distance(&z, &a), 2.0);
    }

    #[test]
    fn identity_of_indiscernibles_for_euclidean() {
        let a = [1.5f32, -2.0, 3.0];
        for m in [Metric::SquaredEuclidean, Metric::Euclidean, Metric::Cosine] {
            assert!(m.distance(&a, &a).abs() < 1e-6, "{}", m.name());
        }
    }
}
