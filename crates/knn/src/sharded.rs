//! Shard-paged exact clustered scans over out-of-core datasets.
//!
//! The fully-resident [`ClusteredIndex`](crate::clustered::ClusteredIndex)
//! copies every training row into a cluster-contiguous buffer at build time
//! — fine when the dataset fits in RAM, a non-starter for the
//! millions-of-rows datasets the mmap-backed
//! [`snoopy_linalg::disk::DiskDataset`] makes addressable.
//! [`ShardedIndex`] keeps the *same* k-means partition and the *same*
//! triangle-inequality bound arithmetic ([`crate::bounds`]) but materialises
//! each cluster as an independent **shard** — the gathered f32 member rows,
//! their per-row centroid distances, the kernel norm cache, and (when
//! quantized) the int8 shadow — that loads and evicts on demand under a
//! configurable resident byte budget.
//!
//! ## Paging order *is* prune order
//!
//! A query sorts clusters by ascending triangle-inequality lower bound and
//! visits them in that order, exactly like the resident index. A shard is
//! faulted in **only when its cluster is actually visited**, so the bound
//! doubles as the paging schedule: clusters the bound rejects are never
//! read off disk at all, and the first unbeatable cluster ends the query
//! before any further I/O. The cost model is therefore the resident index's
//! prune rate translated into bytes — `PruneStats::cluster_prune_rate`
//! bounds the fraction of the dataset a query can fault.
//!
//! ## Residency contract
//!
//! Shards are cached LRU under `budget_bytes`: after each fault the
//! least-recently-used shards are evicted (the just-faulted shard is
//! pinned) until the cache fits the budget again. With prefetch off, peak
//! residency is therefore at most `budget + one shard`; with a prefetch
//! depth of `P`, the staging area adds at most `P` uncommitted shards, so
//! the contract becomes `peak ≤ budget + max_shard × (1 + P)` — measured by
//! [`ShardedIndex::resident_bytes`] ([`PagedResidentBytes`]) *and*
//! debug-asserted after every fault/commit/evict cycle, with fault,
//! eviction, and prefetch traffic counted in [`PagingStats`].
//!
//! ## Exactness
//!
//! Results are **bit-identical** to the resident index and the exhaustive
//! engine: member order within a shard ascends by original row index (the
//! same regrouping [`partition_rows`] produces), every admitted distance
//! comes from the same [`MetricKernel`] expressions (which depend only on
//! the pair of rows, never on which buffer holds them), and every prune
//! decision routes through the shared [`PruneBounds`] arithmetic. Evicting
//! and re-faulting a shard recomputes identical bytes — gathers and
//! per-row geometry are deterministic functions of the source view.
//!
//! ## Pipelined prefetch
//!
//! The visit schedule is known the moment the bounds are sorted, so the
//! serial fault→scan→fault loop leaves free win on the table: while the
//! scanning thread works through the current shard, `snoopy-pool` workers
//! can already *materialise* the next few. [`ShardedIndex::set_prefetch_depth`]
//! enables exactly that: at each visit the index tops up to `P` speculative
//! shard loads for the next unresident clusters in bound order (skipping
//! clusters the current τ already prunes — ascending bounds mean everything
//! past the first pruned position is dead). A prefetched shard is
//! bit-identical to a demand-faulted one — gather, per-row centroid
//! distances, norm cache, and int8 encode are deterministic functions of
//! the source view — so results cannot depend on what was speculated.
//!
//! All LRU decisions stay on the scanning thread: a speculative shard lives
//! in a bounded staging area (≤ `P` entries, never charged to the cache)
//! until its cluster is actually visited, at which point it is *committed*
//! through the same evict→charge→evict sequence a demand fault uses, with
//! the same LRU clock tick. The cache's residency trace is therefore
//! identical at every prefetch depth and every worker count; a staged shard
//! whose cluster gets pruned before its turn is dropped (counted as
//! [`PagingStats::prefetch_wasted`]) without ever touching the cache.
//! Queries still scan on one thread (`&mut self`) — the pipeline overlaps
//! materialisation with scanning, it does not fan the scan out.

use crate::bounds::{euclid_f64, norm_f64, PruneBounds};
use crate::clustered::{ResidentBytes, KMEANS_SEED};
use crate::engine::{EvalEngine, NeighborTable, TopKState};
use crate::kernel::MetricKernel;
use crate::metric::Metric;
use crate::quantized::{AffineQuantizer, QuantizedQuery, QuantizedShadow};
use crate::PruneStats;
use snoopy_linalg::kmeans::lloyd_kmeans;
use snoopy_linalg::{DatasetView, Matrix};

/// Iteration cap for the internal k-means run (mirrors the resident index).
const KMEANS_MAX_ITERS: usize = 16;

/// Paging counters accumulated by the shard cache over the index's
/// lifetime — the out-of-core counterpart of [`PruneStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagingStats {
    /// Shards materialised from the source view (cold faults).
    pub shards_faulted: usize,
    /// Shards dropped by the LRU budget.
    pub shards_evicted: usize,
    /// Bytes paged in across all faults.
    pub bytes_faulted: usize,
    /// Bytes released across all evictions.
    pub bytes_evicted: usize,
    /// Speculative shard loads submitted to the pool by the prefetch
    /// pipeline.
    pub shards_prefetched: usize,
    /// Prefetched shards whose cluster was visited: committed to the LRU
    /// cache in place of a demand fault.
    pub prefetch_committed: usize,
    /// Prefetched shards dropped without a commit (cluster pruned before
    /// its turn, or the query stream ended first).
    pub prefetch_wasted: usize,
    /// Bytes materialised by prefetch tasks (committed and wasted alike).
    pub bytes_prefetched: usize,
}

/// [`ResidentBytes`] extended with the budget-vs-peak accounting of the
/// shard cache — what [`ShardedIndex::resident_bytes`] reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagedResidentBytes {
    /// Currently-resident footprint, bucketed like the resident index
    /// (`train_rows`/`quantized_*` cover resident shards only; `centroids`
    /// and `row_meta` cover the always-resident index metadata).
    pub resident: ResidentBytes,
    /// The configured shard-cache budget in bytes.
    pub budget: usize,
    /// High-water mark of resident *plus staged* shard bytes since build.
    pub peak: usize,
    /// Bytes of materialised-but-uncommitted prefetched shards right now
    /// (non-zero only mid-query; the staging area drains before every
    /// `update_topk` return).
    pub staged: usize,
    /// Largest single shard materialised so far —
    /// `peak ≤ budget + max_shard × (1 + prefetch_depth)` is the cache's
    /// residency contract.
    pub max_shard: usize,
}

/// One materialised cluster: the gathered member rows plus everything a
/// scan needs that is derived from them. Rebuilt deterministically on every
/// fault, so eviction never loses information.
struct Shard {
    /// Gathered f32 member rows, ascending by original row index.
    rows: Matrix,
    /// Per member row: `e(x, c)` to its own centroid in `f64`.
    row_center: Vec<f64>,
    /// The tile kernel with this shard's rows bound as its train side.
    kernel: MetricKernel,
    /// The int8 shadow (when the index is quantized and the rows pass the
    /// overflow guard).
    shadow: Option<QuantizedShadow>,
    /// Resident footprint of this shard.
    bytes: usize,
    /// LRU clock value of the last fault or visit.
    last_use: u64,
}

/// Gathers one cluster's shard from the source view. Deterministic: the
/// same ids against the same view always produce the same bytes, which is
/// what makes evict-then-refault invisible in the results.
fn load_shard(
    source: DatasetView<'_>,
    metric: Metric,
    ids: &[usize],
    centroid: &[f32],
    quantizer: Option<&AffineQuantizer>,
) -> Shard {
    let rows = source.select_rows(ids);
    let row_center: Vec<f64> = rows.rows_iter().map(|r| euclid_f64(r, centroid)).collect();
    let mut kernel = MetricKernel::new(metric);
    kernel.bind_train(rows.view());
    let shadow = quantizer.and_then(|qz| QuantizedShadow::build(rows.view(), qz.clone()));
    let bytes = rows.rows() * rows.cols() * size_of::<f32>()
        + row_center.len() * size_of::<f64>()
        + kernel.train_bound() * size_of::<f32>()
        + shadow.as_ref().map_or(0, |s| s.code_bytes() + s.meta_bytes());
    Shard { rows, row_center, kernel, shadow, bytes, last_use: 0 }
}

/// The borrow-erased description of one speculative [`load_shard`] call,
/// shipped to a pool worker as a `'static` task. Everything a load reads is
/// captured as raw parts (the quantizer is small and simply cloned).
///
/// # Safety
/// `run` dereferences the captured pointers, so a job must not outlive the
/// buffers they point into. The prefetch pipeline guarantees that
/// structurally: every spawned job's [`snoopy_pool::JoinHandle`] is joined
/// before `update_topk` returns (the staging area drains on exit, and a
/// dropped handle waits), and for the whole `update_topk` call the index is
/// exclusively borrowed — `source` outlives the index by construction
/// (`'a`), and `members` / `centroids` are never mutated after build.
struct PrefetchJob {
    data: *const f32,
    data_len: usize,
    rows: usize,
    cols: usize,
    metric: Metric,
    ids: *const usize,
    ids_len: usize,
    centroid: *const f32,
    centroid_len: usize,
    quantizer: Option<AffineQuantizer>,
}

// SAFETY: the job only carries shared read-only borrows in pointer form;
// the data they point to (`&[f32]` / `&[usize]`) is Sync, and the liveness
// obligation is discharged by the join-before-return rule above.
unsafe impl Send for PrefetchJob {}

impl PrefetchJob {
    fn capture(
        source: DatasetView<'_>,
        metric: Metric,
        ids: &[usize],
        centroid: &[f32],
        quantizer: Option<&AffineQuantizer>,
    ) -> Self {
        PrefetchJob {
            data: source.data().as_ptr(),
            data_len: source.data().len(),
            rows: source.rows(),
            cols: source.cols(),
            metric,
            ids: ids.as_ptr(),
            ids_len: ids.len(),
            centroid: centroid.as_ptr(),
            centroid_len: centroid.len(),
            quantizer: quantizer.cloned(),
        }
    }

    /// # Safety
    /// Every captured pointer must still be live (see the type docs).
    unsafe fn run(&self) -> Shard {
        let data = std::slice::from_raw_parts(self.data, self.data_len);
        let ids = std::slice::from_raw_parts(self.ids, self.ids_len);
        let centroid = std::slice::from_raw_parts(self.centroid, self.centroid_len);
        let source = DatasetView::from_raw(data, self.rows, self.cols);
        load_shard(source, self.metric, ids, centroid, self.quantizer.as_ref())
    }
}

/// One staging-area slot: a speculative shard load that is either still in
/// flight on a pool worker or materialised and waiting for its cluster's
/// visit. Exactly one of the two fields is `Some`.
struct StagedSlot {
    cluster: usize,
    handle: Option<snoopy_pool::JoinHandle<Shard>>,
    shard: Option<Shard>,
}

/// The scanning thread's view of the prefetch pipeline: at most
/// [`ShardCache::prefetch_depth`] slots, each owning one speculative load.
/// The prefetcher never touches the LRU cache's residency — it only hands
/// fully-materialised shards to [`ShardCache::commit`] at visit time.
/// Spawn/drop decisions depend only on the (deterministic) visit order,
/// residency trace, and τ evolution — never on worker timing — so the
/// pipeline issues the same speculative loads at every worker count.
struct Prefetcher {
    slots: Vec<StagedSlot>,
    /// Cluster → position in the *current* query's visit order.
    rank: Vec<usize>,
}

impl Prefetcher {
    fn new(clusters: usize, depth: usize) -> Self {
        Prefetcher { slots: Vec::with_capacity(depth), rank: vec![0; clusters] }
    }

    /// Re-ranks the staging area for a new query's visit order (leftover
    /// slots from the previous query stay — the new query may well visit
    /// their clusters).
    fn begin_query(&mut self, order: &[(f64, f64, usize)]) {
        for (pos, &(_, _, c)) in order.iter().enumerate() {
            self.rank[c] = pos;
        }
    }

    /// Joins one slot's in-flight handle, folding the materialised bytes
    /// into the prefetch ledgers (each spawned job passes through here
    /// exactly once, so `bytes_prefetched` covers every speculative load).
    fn join_handle(cache: &mut ShardCache, handle: snoopy_pool::JoinHandle<Shard>) -> Shard {
        let shard = handle.join();
        cache.stats.bytes_prefetched += shard.bytes;
        cache.max_shard_bytes = cache.max_shard_bytes.max(shard.bytes);
        shard
    }

    /// Takes the staged shard for cluster `c` if the pipeline holds one,
    /// joining it first when still in flight (the join *helps*, so even a
    /// one-worker pool makes progress). Returns `None` when `c` was never
    /// prefetched — the caller demand-faults as usual.
    fn take(&mut self, cache: &mut ShardCache, c: usize) -> Option<Shard> {
        let i = self.slots.iter().position(|s| s.cluster == c)?;
        let mut slot = self.slots.swap_remove(i);
        match slot.shard.take() {
            Some(shard) => {
                cache.staged_bytes -= shard.bytes;
                Some(shard)
            }
            None => Some(Self::join_handle(cache, slot.handle.take().expect("in-flight slot"))),
        }
    }

    /// Drops one slot as wasted work, joining it first if still in flight
    /// (the handle would block on drop anyway; joining keeps the byte
    /// ledger exact).
    fn waste_slot(cache: &mut ShardCache, mut slot: StagedSlot) {
        match slot.shard.take() {
            Some(shard) => cache.staged_bytes -= shard.bytes,
            None => drop(Self::join_handle(cache, slot.handle.take().expect("in-flight slot"))),
        }
        cache.stats.prefetch_wasted += 1;
    }

    /// Tops the pipeline up to `depth` speculative loads for the clusters
    /// that follow position `pos` in this query's visit order, skipping
    /// resident and already-staged clusters and stopping at the first
    /// position the current τ prunes (bounds ascend, so everything past it
    /// is unreachable this query). Called *before* the current shard is
    /// obtained and scanned — that is the overlap. Also folds finished
    /// loads into the staged ledger and retires leftovers τ already prunes,
    /// so stale speculation cannot starve the pipeline.
    #[allow(clippy::too_many_arguments)] // the pipeline's full spawn context
    fn top_up(
        &mut self,
        cache: &mut ShardCache,
        order: &[(f64, f64, usize)],
        pos: usize,
        tau_sq: Option<f64>,
        err: f64,
        bounds: &PruneBounds,
        source: DatasetView<'_>,
        metric: Metric,
        members: &[usize],
        offsets: &[usize],
        centroids: &Matrix,
        quantizer: Option<&AffineQuantizer>,
    ) {
        let depth = cache.prefetch_depth;
        if depth == 0 {
            return;
        }
        // Fold finished loads into the staged ledger (non-blocking).
        for slot in self.slots.iter_mut() {
            if slot.shard.is_none() && slot.handle.as_ref().expect("in-flight slot").is_finished() {
                let shard = Self::join_handle(cache, slot.handle.take().expect("in-flight slot"));
                cache.staged_bytes += shard.bytes;
                slot.shard = Some(shard);
                cache.note_peak();
            }
        }
        // Retire leftovers this query can no longer reach: once τ prunes a
        // slot's position it will never be visited (ascending bounds), and
        // holding its slot would starve nearer clusters.
        if let Some(tau_sq) = tau_sq {
            let mut i = 0;
            while i < self.slots.len() {
                // A slot whose position this query already passed cannot
                // exist (passing it commits), so rank ≥ pos here; the
                // current position's own slot survives because its bound
                // was not pruned (the visit loop checked before calling).
                let slot_pos = self.rank[self.slots[i].cluster];
                if bounds.prunes(order[slot_pos].0, tau_sq, err) {
                    let slot = self.slots.swap_remove(i);
                    Self::waste_slot(cache, slot);
                } else {
                    i += 1;
                }
            }
        }
        let mut next = pos + 1;
        while self.slots.len() < depth && next < order.len() {
            let (lb, _, c) = order[next];
            next += 1;
            if let Some(tau_sq) = tau_sq {
                if bounds.prunes(lb, tau_sq, err) {
                    break;
                }
            }
            if cache.resident[c].is_some() || self.slots.iter().any(|s| s.cluster == c) {
                continue;
            }
            let ids = &members[offsets[c]..offsets[c + 1]];
            let job = PrefetchJob::capture(source, metric, ids, centroids.row(c), quantizer);
            // SAFETY: joined before `update_topk` returns — see `PrefetchJob`.
            let handle = snoopy_pool::spawn(move || unsafe { job.run() });
            cache.stats.shards_prefetched += 1;
            self.slots.push(StagedSlot { cluster: c, handle: Some(handle), shard: None });
        }
    }

    /// Resolves every outstanding speculative load — called before
    /// `update_topk` returns, which is what makes the pointer erasure in
    /// [`PrefetchJob`] sound. Everything still staged is wasted work.
    fn drain(&mut self, cache: &mut ShardCache) {
        for slot in self.slots.drain(..) {
            Self::waste_slot(cache, slot);
        }
        debug_assert_eq!(cache.staged_bytes, 0, "staging ledger must drain to zero");
    }
}

/// The LRU shard cache: one slot per cluster, a resident-byte ledger, and
/// the paging counters.
struct ShardCache {
    resident: Vec<Option<Shard>>,
    resident_bytes: usize,
    /// Bytes of materialised-but-uncommitted prefetched shards (staging
    /// area ledger; never counted against `budget`).
    staged_bytes: usize,
    peak_resident: usize,
    max_shard_bytes: usize,
    budget: usize,
    /// Current prefetch pipeline depth `P` — bounds the staging area and
    /// widens the residency contract to `budget + max_shard × (1 + P)`.
    prefetch_depth: usize,
    tick: u64,
    stats: PagingStats,
}

impl ShardCache {
    fn new(clusters: usize, budget: usize) -> Self {
        ShardCache {
            resident: (0..clusters).map(|_| None).collect(),
            resident_bytes: 0,
            staged_bytes: 0,
            peak_resident: 0,
            max_shard_bytes: 0,
            budget,
            prefetch_depth: 0,
            tick: 0,
            stats: PagingStats::default(),
        }
    }

    /// Folds the current resident + staged footprint into the high-water
    /// mark and debug-asserts the residency contract: committed bytes fit
    /// `budget + max_shard` (one pinned over-budget shard allowed) and the
    /// staging area holds at most `P` shards' worth of bytes.
    fn note_peak(&mut self) {
        self.peak_resident = self.peak_resident.max(self.resident_bytes + self.staged_bytes);
        debug_assert!(
            self.resident_bytes <= self.budget.saturating_add(self.max_shard_bytes),
            "committed shard bytes {} exceed budget {} + max_shard {}",
            self.resident_bytes,
            self.budget,
            self.max_shard_bytes
        );
        debug_assert!(
            self.staged_bytes <= self.prefetch_depth.saturating_mul(self.max_shard_bytes),
            "staged bytes {} exceed depth {} x max_shard {}",
            self.staged_bytes,
            self.prefetch_depth,
            self.max_shard_bytes
        );
    }

    /// Returns cluster `c`'s shard, materialising it through `load` on a
    /// miss and then evicting LRU shards (the fresh shard pinned) until the
    /// cache fits the budget again.
    fn fault(&mut self, c: usize, load: impl FnOnce() -> Shard) -> &Shard {
        self.tick += 1;
        if self.resident[c].is_none() {
            // Make room first: nothing is mid-scan between faults (queries
            // are serial), so even a previously-pinned over-budget shard is
            // evictable now. This keeps the peak at `budget + one shard`
            // rather than `budget + two`.
            self.evict_over_budget(usize::MAX);
            let shard = load();
            self.stats.shards_faulted += 1;
            self.stats.bytes_faulted += shard.bytes;
            self.max_shard_bytes = self.max_shard_bytes.max(shard.bytes);
            self.resident_bytes += shard.bytes;
            self.resident[c] = Some(shard);
            self.note_peak(); // transient charge-before-evict state counts
            self.evict_over_budget(c);
            self.note_peak();
        }
        let tick = self.tick;
        let shard = self.resident[c].as_mut().expect("shard resident after fault");
        shard.last_use = tick;
        shard
    }

    /// Commits a staged (prefetched) shard for cluster `c` — the visit-time
    /// twin of a demand [`ShardCache::fault`] miss, running the *same*
    /// evict→charge→evict sequence with the same LRU clock tick, so the
    /// cache's residency trace is identical whether a shard arrived by
    /// fault or by prefetch.
    fn commit(&mut self, c: usize, shard: Shard) -> &Shard {
        debug_assert!(self.resident[c].is_none(), "staged cluster {c} already resident");
        self.tick += 1;
        self.evict_over_budget(usize::MAX);
        self.stats.prefetch_committed += 1;
        self.resident_bytes += shard.bytes;
        self.resident[c] = Some(shard);
        self.note_peak(); // transient charge-before-evict state counts
        self.evict_over_budget(c);
        self.note_peak();
        let tick = self.tick;
        let shard = self.resident[c].as_mut().expect("shard resident after commit");
        shard.last_use = tick;
        shard
    }

    /// Evicts least-recently-used shards (never `pin`, the shard being
    /// scanned) until the ledger fits the budget. A single shard larger
    /// than the whole budget stays resident alone — the `budget + one
    /// shard` peak contract.
    fn evict_over_budget(&mut self, pin: usize) {
        while self.resident_bytes > self.budget {
            let victim = self
                .resident
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != pin && s.is_some())
                .min_by_key(|(_, s)| s.as_ref().expect("resident").last_use)
                .map(|(i, _)| i);
            let Some(v) = victim else { break };
            let bytes = self.resident[v].take().expect("victim resident").bytes;
            self.resident_bytes -= bytes;
            self.stats.shards_evicted += 1;
            self.stats.bytes_evicted += bytes;
        }
    }

    /// Drops every resident shard (used when the quantizer changes so
    /// shards re-materialise with shadows). Counted as evictions.
    fn clear(&mut self) {
        for slot in self.resident.iter_mut() {
            if let Some(s) = slot.take() {
                self.resident_bytes -= s.bytes;
                self.stats.shards_evicted += 1;
                self.stats.bytes_evicted += s.bytes;
            }
        }
    }
}

/// The shard-paged exact clustered index over a borrowed (typically
/// mmap-backed) source view. See the [module docs](self) for the paging and
/// exactness contracts.
pub struct ShardedIndex<'a> {
    /// The source rows — on the out-of-core path, a window over a
    /// memory-mapped [`snoopy_linalg::disk::DiskDataset`].
    source: DatasetView<'a>,
    metric: Metric,
    engine: EvalEngine,
    /// `nlist × d` centroids (empty clusters dropped) — always resident.
    centroids: Matrix,
    /// Per-cluster radius `r_c = max_{x ∈ c} e(x, c)` in `f64`.
    radii: Vec<f64>,
    /// Cluster-contiguous original row ids; cluster `c` owns
    /// `members[offsets[c]..offsets[c + 1]]`, ascending within a cluster.
    members: Vec<usize>,
    offsets: Vec<usize>,
    /// Shared prune-comparison arithmetic (see [`crate::bounds`]).
    bounds: PruneBounds,
    /// The frozen affine fitted over the *whole* source at
    /// [`ShardedIndex::quantize`] time — every shard encodes against it, so
    /// eviction and re-faulting cannot change any code.
    quantizer: Option<AffineQuantizer>,
    cache: ShardCache,
}

impl<'a> ShardedIndex<'a> {
    /// Builds a shard-paged index over `source` with (at most) `nlist`
    /// k-means clusters and an LRU shard cache of `budget_bytes`, using a
    /// parallel default engine for the build. The build streams the source
    /// twice (k-means plus one radii/member pass) and materialises no row
    /// buffer — per-row residency starts at one `usize` id.
    ///
    /// # Panics
    /// Panics for [`Metric::Cosine`] (not triangle-prunable) or an empty
    /// `source`.
    pub fn build(source: DatasetView<'a>, metric: Metric, nlist: usize, budget_bytes: usize) -> Self {
        Self::build_with_engine(source, metric, nlist, budget_bytes, EvalEngine::parallel())
    }

    /// [`ShardedIndex::build`] with an explicit engine (the engine's thread
    /// count drives the k-means assignment passes; queries themselves run
    /// serially — see the [module docs](self)).
    pub fn build_with_engine(
        source: DatasetView<'a>,
        metric: Metric,
        nlist: usize,
        budget_bytes: usize,
        engine: EvalEngine,
    ) -> Self {
        assert!(crate::EvalBackend::prunable(metric), "cosine dissimilarity is not triangle-prunable");
        assert!(!source.is_empty(), "cannot build a sharded index over an empty dataset");
        let km = lloyd_kmeans(source, nlist, KMEANS_MAX_ITERS, KMEANS_SEED, engine.threads());
        let k = km.centroids.rows();

        // Cluster-contiguous member ids, ascending within each cluster
        // (assignments are iterated in row order), empty clusters dropped —
        // the same regrouping `partition_rows` produces, minus the row copy.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (row, &a) in km.assignments.iter().enumerate() {
            groups[a].push(row);
        }
        let keep: Vec<usize> = (0..k).filter(|&c| !groups[c].is_empty()).collect();
        let centroids = km.centroids.view().select_rows(&keep);
        let mut members = Vec::with_capacity(source.rows());
        let mut offsets = Vec::with_capacity(keep.len() + 1);
        offsets.push(0usize);
        for &c in &keep {
            members.extend_from_slice(&groups[c]);
            offsets.push(members.len());
        }

        // One streaming pass over the source: per-cluster radii plus the
        // global max member norm of the kernel-error term. Per-row centroid
        // distances are shard metadata — recomputed at fault, not stored.
        let mut radii = vec![0.0f64; keep.len()];
        let mut max_norm = 0.0f64;
        for (c, radius) in radii.iter_mut().enumerate() {
            let cent = centroids.row(c);
            for &row in &members[offsets[c]..offsets[c + 1]] {
                let r = source.row(row);
                *radius = radius.max(euclid_f64(r, cent));
                max_norm = max_norm.max(norm_f64(r));
            }
        }

        let clusters = keep.len();
        ShardedIndex {
            source,
            metric,
            engine,
            centroids,
            radii,
            members,
            offsets,
            bounds: PruneBounds::new(metric, source.cols(), max_norm),
            quantizer: None,
            cache: ShardCache::new(clusters, budget_bytes),
        }
    }

    /// Attaches the int8 quantization: fits the affine over the whole
    /// source (one streaming pass) and freezes it, so every shard —
    /// including ones re-faulted after eviction — encodes identically.
    /// Resident shards are dropped and re-materialise with shadows on next
    /// visit. Results stay bit-identical (the shadow only selects re-rank
    /// candidates); data past the overflow guard simply scans exact.
    pub fn quantize(mut self) -> Self {
        self.quantizer = Some(AffineQuantizer::fit(self.source));
        self.cache.clear();
        self
    }

    /// Whether a frozen quantizer is attached.
    pub fn is_quantized(&self) -> bool {
        self.quantizer.is_some()
    }

    /// Replaces the engine driving the build-time k-means passes.
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Number of indexed source rows.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the index is empty (never — build rejects empty sources —
    /// but the standard pair keeps clippy and callers honest).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of (non-empty) clusters = number of shards.
    pub fn num_clusters(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The metric the index was built for.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The configured shard-cache budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.cache.budget
    }

    /// The current prefetch pipeline depth `P` (0 = fully serial paging).
    pub fn prefetch_depth(&self) -> usize {
        self.cache.prefetch_depth
    }

    /// Sets the prefetch pipeline depth: up to `depth` upcoming shards
    /// materialise speculatively on `snoopy-pool` workers while the current
    /// one scans (see the [module docs](self)). Depth 0 (the build default)
    /// restores the fully serial fault→scan loop. Results are bit-identical
    /// at every depth and worker count; peak residency is bounded by
    /// `budget + max_shard × (1 + depth)`.
    pub fn set_prefetch_depth(&mut self, depth: usize) {
        self.cache.prefetch_depth = depth;
    }

    /// Builder-style [`ShardedIndex::set_prefetch_depth`].
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.set_prefetch_depth(depth);
        self
    }

    /// Cumulative paging counters since build.
    pub fn paging_stats(&self) -> PagingStats {
        self.cache.stats
    }

    /// The current resident footprint, the budget, and the peak — the
    /// residency contract is `peak ≤ budget + max_shard × (1 + prefetch_depth)`.
    pub fn resident_bytes(&self) -> PagedResidentBytes {
        let mut rb = ResidentBytes {
            train_rows: 0,
            quantized_codes: 0,
            quantized_meta: self.quantizer.as_ref().map_or(0, |q| q.param_bytes()),
            centroids: self.centroids.rows() * self.centroids.cols() * size_of::<f32>()
                + self.radii.len() * size_of::<f64>()
                + self.offsets.len() * size_of::<usize>(),
            row_meta: self.members.len() * size_of::<usize>(),
        };
        for shard in self.cache.resident.iter().flatten() {
            rb.train_rows += shard.rows.rows() * shard.rows.cols() * size_of::<f32>();
            rb.quantized_codes += shard.shadow.as_ref().map_or(0, |s| s.code_bytes());
            rb.quantized_meta += shard.shadow.as_ref().map_or(0, |s| s.meta_bytes());
            rb.row_meta +=
                shard.row_center.len() * size_of::<f64>() + shard.kernel.train_bound() * size_of::<f32>();
        }
        PagedResidentBytes {
            resident: rb,
            budget: self.cache.budget,
            peak: self.cache.peak_resident,
            staged: self.cache.staged_bytes,
            max_shard: self.cache.max_shard_bytes,
        }
    }

    /// Answers one query into `state`: clusters ordered by ascending lower
    /// bound, shards faulted only when visited, scan stopping at the first
    /// unbeatable cluster — the prune order is the paging order. With a
    /// non-zero prefetch depth, upcoming shards materialise on pool workers
    /// (via `pf`) while this thread scans the current one.
    #[allow(clippy::too_many_arguments)] // the scan's full per-query context
    fn query_into(
        &mut self,
        q: &[f32],
        offset: usize,
        skip: usize,
        state: &mut TopKState,
        order: &mut Vec<(f64, f64, usize)>,
        pf: &mut Prefetcher,
        tile: &mut [f32],
        qtile: &mut [i32],
        keep: &mut [bool],
        wbuf: &mut Vec<f32>,
        vbuf: &mut Vec<i16>,
        stats: &mut PruneStats,
    ) {
        order.clear();
        for (c, cent) in self.centroids.rows_iter().enumerate() {
            let dqc = euclid_f64(q, cent);
            order.push(((dqc - self.radii[c]).max(0.0), dqc, c));
        }
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
        pf.begin_query(order);
        stats.queries += 1;
        stats.clusters_total += self.num_clusters();
        stats.rows_total += self.members.len();
        let qv = MetricKernel::new(self.metric).query_value(q);
        let err = self.bounds.kernel_err(norm_f64(q));
        let ShardedIndex { source, metric, centroids, members, offsets, bounds, quantizer, cache, .. } = self;
        for (pos, &(lb, dqc, c)) in order.iter().enumerate() {
            let tau_sq = (state.hits().len() == state.k())
                .then(|| bounds.tau_sq(state.hits().last().expect("full state").distance));
            if let Some(tau_sq) = tau_sq {
                // Clusters are ordered by ascending bound and τ only
                // shrinks, so the first unbeatable cluster ends the query —
                // and with it, the paging.
                if bounds.prunes(lb, tau_sq, err) {
                    break;
                }
            }
            stats.clusters_visited += 1;
            // Top the pipeline up *before* touching this visit's shard: the
            // workers materialise what comes next while this thread faults
            // (if needed) and scans the current cluster.
            pf.top_up(
                cache,
                order,
                pos,
                tau_sq,
                err,
                bounds,
                *source,
                *metric,
                members,
                offsets,
                centroids,
                quantizer.as_ref(),
            );
            let ids = &members[offsets[c]..offsets[c + 1]];
            let shard = match pf.take(cache, c) {
                Some(staged) => cache.commit(c, staged),
                None => {
                    cache.fault(c, || load_shard(*source, *metric, ids, centroids.row(c), quantizer.as_ref()))
                }
            };
            let qq = shard.shadow.as_ref().and_then(|sh| sh.prepare_query(q, wbuf, vbuf));
            match (&shard.shadow, qq) {
                (Some(sh), Some(qq)) => scan_shard_quantized(
                    shard, sh, &qq, vbuf, bounds, ids, q, qv, err, offset, skip, state, qtile, keep, stats,
                ),
                _ => scan_shard_topk(shard, bounds, ids, q, qv, dqc, err, offset, skip, state, tile, stats),
            }
        }
    }

    /// Folds the indexed source rows into the running top-k state of every
    /// query row — the paged counterpart of `ClusteredIndex::update_topk`,
    /// same streamable fold semantics. The scan itself runs on this thread;
    /// with a non-zero [`ShardedIndex::set_prefetch_depth`] upcoming shards
    /// materialise concurrently on pool workers (see the
    /// [module docs](self)).
    ///
    /// # Panics
    /// Panics on dimension mismatches or `states.len() != queries.rows()`.
    pub fn update_topk(
        &mut self,
        queries: DatasetView<'_>,
        offset: usize,
        states: &mut [TopKState],
        exclude_self: Option<usize>,
    ) -> PruneStats {
        assert_eq!(queries.cols(), self.source.cols(), "query/train dimensionality mismatch");
        assert_eq!(states.len(), queries.rows(), "one top-k state per query required");
        let mut stats = PruneStats::default();
        let largest =
            (0..self.num_clusters()).map(|c| self.offsets[c + 1] - self.offsets[c]).max().unwrap_or(1);
        let tile_len = self.engine.tile_rows().min(largest.max(1));
        let mut order = Vec::with_capacity(self.num_clusters());
        let mut pf = Prefetcher::new(self.num_clusters(), self.cache.prefetch_depth);
        let mut tile = vec![0.0f32; tile_len];
        let quantized = self.quantizer.is_some();
        let mut qtile = vec![0i32; if quantized { tile_len } else { 0 }];
        let mut keep = vec![false; if quantized { tile_len } else { 0 }];
        let mut wbuf = Vec::with_capacity(if quantized { self.source.cols() } else { 0 });
        let mut vbuf = Vec::with_capacity(if quantized { self.source.cols() } else { 0 });
        for (qi, state) in states.iter_mut().enumerate() {
            let skip = exclude_self.map(|b| b + qi).unwrap_or(usize::MAX);
            self.query_into(
                queries.row(qi),
                offset,
                skip,
                state,
                &mut order,
                &mut pf,
                &mut tile,
                &mut qtile,
                &mut keep,
                &mut wbuf,
                &mut vbuf,
                &mut stats,
            );
        }
        // Resolve every outstanding speculative load before returning —
        // the soundness condition of `PrefetchJob`'s pointer erasure.
        pf.drain(&mut self.cache);
        stats
    }

    /// Top-k neighbour table for every query, from a cold start —
    /// bit-identical to `EvalEngine::topk` and `ClusteredIndex::topk` on
    /// the same data.
    pub fn topk(&mut self, queries: DatasetView<'_>, k: usize) -> NeighborTable {
        self.topk_with_stats(queries, k).0
    }

    /// [`ShardedIndex::topk`] plus the pruning counters (paging counters
    /// accumulate on the index — [`ShardedIndex::paging_stats`]).
    pub fn topk_with_stats(&mut self, queries: DatasetView<'_>, k: usize) -> (NeighborTable, PruneStats) {
        let mut states = vec![TopKState::new(k.max(1)); queries.rows()];
        let stats = self.update_topk(queries, 0, &mut states, None);
        (NeighborTable::from_states(&states), stats)
    }

    /// Leave-one-out top-k table of the indexed data against itself (row
    /// `i` of `data` must be row `i` of the source view) — bit-identical to
    /// `EvalEngine::topk_loo`.
    pub fn topk_loo(&mut self, data: DatasetView<'_>, k: usize) -> NeighborTable {
        self.topk_loo_with_stats(data, k).0
    }

    /// [`ShardedIndex::topk_loo`] plus the pruning counters.
    pub fn topk_loo_with_stats(&mut self, data: DatasetView<'_>, k: usize) -> (NeighborTable, PruneStats) {
        let mut states = vec![TopKState::new(k.max(1)); data.rows()];
        let stats = self.update_topk(data, 0, &mut states, Some(0));
        (NeighborTable::from_states(&states), stats)
    }
}

/// Scans one faulted shard into `state` — the shard-local twin of
/// `ClusteredIndex::scan_cluster_topk`: whole tiles through the shard's
/// tile kernel when unbroken by the per-row bound or self-exclusion, the
/// bit-identical per-pair path otherwise.
#[allow(clippy::too_many_arguments)] // the scan's full per-query context
fn scan_shard_topk(
    shard: &Shard,
    bounds: &PruneBounds,
    ids: &[usize],
    q: &[f32],
    qv: f32,
    dqc: f64,
    err: f64,
    offset: usize,
    skip: usize,
    state: &mut TopKState,
    tile: &mut [f32],
    stats: &mut PruneStats,
) {
    let data = shard.rows.view();
    let n = data.rows();
    let mut r = 0usize;
    while r < n {
        let len = tile.len().min(n - r);
        let mut fast = skip == usize::MAX || !ids[r..r + len].iter().any(|&o| offset + o == skip);
        if fast && state.hits().len() == state.k() {
            let tau_sq = bounds.tau_sq(state.hits().last().expect("full state").distance);
            fast = !(r..r + len).any(|j| bounds.prunes((dqc - shard.row_center[j]).abs(), tau_sq, err));
        }
        if fast {
            let out = &mut tile[..len];
            shard.kernel.tile_with(q, qv, data, r, out);
            for (j, &d) in out.iter().enumerate() {
                state.offer(d, offset + ids[r + j]);
            }
            stats.rows_scanned += len;
        } else {
            for (j, &id) in ids.iter().enumerate().take(r + len).skip(r) {
                let global = offset + id;
                if global == skip {
                    continue;
                }
                if state.hits().len() == state.k() {
                    let tau_sq = bounds.tau_sq(state.hits().last().expect("full state").distance);
                    if bounds.prunes((dqc - shard.row_center[j]).abs(), tau_sq, err) {
                        stats.rows_pruned += 1;
                        continue;
                    }
                }
                state.offer(shard.kernel.pair_with(q, qv, data, j), global);
                stats.rows_scanned += 1;
            }
        }
        r += len;
    }
}

/// The two-phase int8 scan of one faulted shard — the shard-local twin of
/// `ClusteredIndex::scan_cluster_quantized`: integer dot tiles from the
/// shard's shadow, the widened bound classifies, survivors re-rank through
/// the exact kernel.
#[allow(clippy::too_many_arguments)] // the scan's full per-query context
fn scan_shard_quantized(
    shard: &Shard,
    shadow: &QuantizedShadow,
    qq: &QuantizedQuery,
    v: &[i16],
    bounds: &PruneBounds,
    ids: &[usize],
    q: &[f32],
    qv: f32,
    err: f64,
    offset: usize,
    skip: usize,
    state: &mut TopKState,
    qtile: &mut [i32],
    keep: &mut [bool],
    stats: &mut PruneStats,
) {
    let data = shard.rows.view();
    let n = data.rows();
    let mut cached_tau = f32::NAN; // NaN ≠ everything → first full state recomputes
    let mut cached_threshold = f64::INFINITY;
    let mut r = 0usize;
    while r < n {
        let len = qtile.len().min(n - r);
        let dots = &mut qtile[..len];
        shadow.approx_dot_tile(v, r, dots);
        stats.rows_quantized += len;
        let threshold = if state.hits().len() == state.k() {
            let tau = state.hits().last().expect("full state").distance;
            if tau != cached_tau {
                cached_tau = tau;
                cached_threshold = bounds.prune_threshold(tau, err);
            }
            cached_threshold
        } else {
            f64::INFINITY // not full: every row survives classification
        };
        shadow.classify_tile(qq, threshold, r, dots, &mut keep[..len]);
        for (j, &kept) in keep[..len].iter().enumerate() {
            if !kept {
                stats.rows_pruned += 1;
                continue;
            }
            let row = r + j;
            let global = offset + ids[row];
            if global == skip {
                continue;
            }
            state.offer(shard.kernel.pair_with(q, qv, data, row), global);
            stats.rows_scanned += 1;
        }
        r += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{knn_reference, knn_reference_loo};
    use crate::ClusteredIndex;

    fn blobs(n: usize, d: usize, centers: usize, seed: u64) -> Matrix {
        snoopy_testutil::blob_cloud(seed, n, d, centers, 6.0, 0.2)
    }

    #[test]
    fn sharded_matches_reference_under_tight_budget() {
        let train = blobs(400, 8, 8, 1);
        let queries = blobs(60, 8, 8, 2);
        // A budget of roughly one shard forces eviction churn on every query.
        let budget = 8 * 8 * 4 * 60;
        for metric in [Metric::SquaredEuclidean, Metric::Euclidean] {
            let mut index = ShardedIndex::build(train.view(), metric, 8, budget);
            for k in [1usize, 3, 10, 400] {
                let got = index.topk(queries.view(), k);
                assert_eq!(got, knn_reference(train.view(), queries.view(), metric, k), "k {k}");
            }
            assert!(index.paging_stats().shards_evicted >= 2, "{:?}", index.paging_stats());
        }
    }

    #[test]
    fn sharded_matches_resident_clustered_bit_for_bit() {
        let train = blobs(500, 6, 10, 11);
        let queries = blobs(40, 6, 10, 12);
        let resident = ClusteredIndex::build(train.view(), Metric::SquaredEuclidean, 10);
        let mut paged = ShardedIndex::build(train.view(), Metric::SquaredEuclidean, 10, 2 * 6 * 4 * 500 / 10);
        assert_eq!(paged.topk(queries.view(), 5), resident.topk(queries.view(), 5));
        assert_eq!(paged.topk_loo(train.view(), 3), resident.topk_loo(train.view(), 3));
    }

    #[test]
    fn quantized_sharded_stays_exact_and_pages() {
        let train = blobs(600, 12, 10, 21);
        let queries = blobs(50, 12, 10, 22);
        let budget = 3 * (600 / 10) * 12 * 4; // ~3 shards of f32 rows
        let mut index = ShardedIndex::build(train.view(), Metric::SquaredEuclidean, 10, budget).quantize();
        assert!(index.is_quantized());
        let (table, stats) = index.topk_with_stats(queries.view(), 5);
        assert_eq!(table, knn_reference(train.view(), queries.view(), Metric::SquaredEuclidean, 5));
        assert!(stats.rows_quantized > 0, "shards must carry shadows: {stats:?}");
        let paging = index.paging_stats();
        assert!(paging.shards_faulted > index.num_clusters(), "re-faults expected: {paging:?}");
        assert!(paging.shards_evicted >= 2, "{paging:?}");
    }

    #[test]
    fn residency_contract_peak_at_most_budget_plus_one_shard() {
        let train = blobs(800, 10, 16, 31);
        let queries = blobs(64, 10, 16, 32);
        for budget in [1usize, 40 * 10 * 4, 4 * 50 * 10 * 4, usize::MAX / 2] {
            let mut index = ShardedIndex::build(train.view(), Metric::SquaredEuclidean, 16, budget);
            index.topk(queries.view(), 5);
            let rb = index.resident_bytes();
            assert!(
                rb.peak <= rb.budget.saturating_add(rb.max_shard),
                "peak {} budget {} max_shard {}",
                rb.peak,
                rb.budget,
                rb.max_shard
            );
            assert!(rb.resident.train_rows + rb.resident.row_meta > 0 || rb.budget == 1);
        }
    }

    #[test]
    fn never_visited_clusters_are_never_faulted() {
        // Well-separated blobs: the bound rejects most clusters, and a
        // rejected cluster must cost zero I/O.
        let train = blobs(600, 6, 12, 41);
        let queries = blobs(30, 6, 12, 42);
        let mut index = ShardedIndex::build(train.view(), Metric::SquaredEuclidean, 12, usize::MAX / 2);
        let (_, stats) = index.topk_with_stats(queries.view(), 3);
        let paging = index.paging_stats();
        assert!(stats.cluster_prune_rate() > 0.5, "{stats:?}");
        // With an unbounded budget nothing evicts, so distinct faulted
        // shards = clusters ever visited ≤ clusters visited across queries.
        assert_eq!(paging.shards_evicted, 0);
        assert!(paging.shards_faulted <= index.num_clusters());
        assert!(paging.shards_faulted < 12, "pruned clusters must stay on disk: {paging:?}");
    }

    #[test]
    fn loo_excludes_self_and_matches_reference() {
        let data = blobs(150, 5, 6, 51);
        let mut index = ShardedIndex::build(data.view(), Metric::Euclidean, 6, 5 * 5 * 4 * 30);
        let got = index.topk_loo(data.view(), 4);
        assert_eq!(got, knn_reference_loo(data.view(), Metric::Euclidean, 4));
        for qi in 0..got.num_queries() {
            assert!(got.neighbors(qi).iter().all(|h| h.index != qi));
        }
    }

    #[test]
    #[should_panic(expected = "not triangle-prunable")]
    fn cosine_sharded_panics() {
        let data = blobs(10, 3, 2, 1);
        let _ = ShardedIndex::build(data.view(), Metric::Cosine, 2, usize::MAX / 2);
    }

    #[test]
    fn prefetch_matches_serial_bit_for_bit() {
        let train = blobs(500, 8, 10, 61);
        let queries = blobs(60, 8, 10, 62);
        let budget = 2 * (500 / 10) * 8 * 4; // ~2 shards: heavy eviction churn
        let mut serial = ShardedIndex::build(train.view(), Metric::SquaredEuclidean, 10, budget);
        let reference = serial.topk(queries.view(), 5);
        let serial_paging = serial.paging_stats();
        assert!(serial_paging.shards_evicted >= 2, "{serial_paging:?}");
        for depth in [1usize, 2, 8] {
            let mut piped = ShardedIndex::build(train.view(), Metric::SquaredEuclidean, 10, budget)
                .with_prefetch_depth(depth);
            assert_eq!(piped.prefetch_depth(), depth);
            assert_eq!(piped.topk(queries.view(), 5), reference, "depth {depth}");
            let paging = piped.paging_stats();
            // The LRU cache sees the same admission sequence whether a shard
            // arrived by fault or by commit, so the eviction trace is pinned.
            assert_eq!(paging.shards_evicted, serial_paging.shards_evicted, "depth {depth}");
            assert_eq!(
                paging.shards_faulted + paging.prefetch_committed,
                serial_paging.shards_faulted,
                "depth {depth}: every serial fault is either a fault or a commit"
            );
        }
    }

    #[test]
    fn prefetch_counters_balance_and_commit() {
        let train = blobs(600, 10, 12, 71);
        let queries = blobs(50, 10, 12, 72);
        let budget = 3 * (600 / 12) * 10 * 4;
        let mut index =
            ShardedIndex::build(train.view(), Metric::SquaredEuclidean, 12, budget).with_prefetch_depth(4);
        let table = index.topk(queries.view(), 5);
        assert_eq!(table, knn_reference(train.view(), queries.view(), Metric::SquaredEuclidean, 5));
        let paging = index.paging_stats();
        assert!(paging.prefetch_committed >= 1, "pipeline must land commits: {paging:?}");
        assert_eq!(
            paging.shards_prefetched,
            paging.prefetch_committed + paging.prefetch_wasted,
            "every speculative load ends committed or wasted: {paging:?}"
        );
        assert!(paging.bytes_prefetched > 0, "{paging:?}");
        let rb = index.resident_bytes();
        assert_eq!(rb.staged, 0, "staging drains before update_topk returns");
    }

    #[test]
    fn prefetch_residency_contract_holds() {
        let train = blobs(800, 10, 16, 81);
        let queries = blobs(64, 10, 16, 82);
        for depth in [1usize, 3] {
            for budget in [1usize, 40 * 10 * 4, 4 * 50 * 10 * 4] {
                let mut index = ShardedIndex::build(train.view(), Metric::SquaredEuclidean, 16, budget)
                    .with_prefetch_depth(depth);
                index.topk(queries.view(), 5);
                let rb = index.resident_bytes();
                let allowance = rb.max_shard.saturating_mul(1 + depth);
                assert!(
                    rb.peak <= rb.budget.saturating_add(allowance),
                    "depth {depth}: peak {} budget {} max_shard {}",
                    rb.peak,
                    rb.budget,
                    rb.max_shard
                );
            }
        }
    }

    #[test]
    fn prefetch_quantized_and_loo_stay_exact() {
        let train = blobs(600, 12, 10, 91);
        let queries = blobs(50, 12, 10, 92);
        let budget = 3 * (600 / 10) * 12 * 4;
        let mut index = ShardedIndex::build(train.view(), Metric::SquaredEuclidean, 10, budget)
            .quantize()
            .with_prefetch_depth(2);
        let table = index.topk(queries.view(), 5);
        assert_eq!(table, knn_reference(train.view(), queries.view(), Metric::SquaredEuclidean, 5));
        let mut loo = ShardedIndex::build(train.view(), Metric::Euclidean, 10, budget).with_prefetch_depth(3);
        assert_eq!(loo.topk_loo(train.view(), 4), knn_reference_loo(train.view(), Metric::Euclidean, 4));
    }
}
