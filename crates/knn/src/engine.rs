//! The shared evaluation engine: a tile-blocked, chunk-parallel distance
//! scan over zero-copy [`DatasetView`]s, generalised from 1NN to top-k.
//!
//! Every estimator evaluation, bandit-arm pull, and experiment binary funnels
//! through the same inner loop — "for each query, find the nearest training
//! row(s)". This module implements that loop once, with three properties the
//! rest of the workspace relies on:
//!
//! 1. **Chunk parallelism.** Queries are split into contiguous chunks, one
//!    per worker of the persistent work-stealing pool (`snoopy_pool::scope`;
//!    submitting a chunk is a queue push, not a thread spawn).
//! 2. **Row blocking + tiling.** Each worker walks the training rows in
//!    blocks of [`EvalEngine::block_rows`] rows so a block stays
//!    cache-resident while every query of the chunk scans it, and inside a
//!    block each query's distances are computed a *tile*
//!    ([`EvalEngine::tile_rows`] rows) at a time by the register-blocked
//!    [`MetricKernel`] — whole tiles are then admitted into the per-query
//!    state.
//! 3. **Typed norm caches.** The [`MetricKernel`] owns the per-row norm
//!    caches of both scan sides (squared norms for the Euclidean family's
//!    norm trick, norms for cosine); callers bind a side once per
//!    dataset/batch instead of threading `Option<&[f32]>` scratch slices.
//!
//! The engine is *bit-identical* to the naive serial loop: every pairwise
//! distance is computed by the kernel layer's single set of expressions
//! (which [`Metric::distance`] also evaluates), and candidate admission is
//! ordered by the lexicographic key `(distance, global index)` — so ties
//! always resolve to the lowest training index regardless of thread count,
//! block size, tile size, or batch boundaries. The k=1 path
//! ([`EvalEngine::update_nearest`]) keeps its flat one-slot-per-query
//! layout; the general path maintains one bounded [`TopKState`] per query
//! and snapshots into a query-major [`NeighborTable`]. The integration test
//! `parallel_engine.rs` pins the parity against [`nearest_reference`] /
//! [`knn_reference`] down.

use crate::kernel::MetricKernel;
use crate::metric::Metric;
use snoopy_linalg::stats::OnlineLse;
use snoopy_linalg::DatasetView;

/// Running nearest-neighbour state of one query: distance and *global*
/// training-row index. `index == usize::MAX` means "nothing seen yet".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearestHit {
    /// Dissimilarity to the nearest training row seen so far.
    pub distance: f32,
    /// Global index of that training row.
    pub index: usize,
}

impl NearestHit {
    /// The empty state: infinitely far, no index.
    pub const NONE: NearestHit = NearestHit { distance: f32::INFINITY, index: usize::MAX };

    /// Strict lexicographic `(distance, index)` order — the tie-break rule of
    /// the whole crate: equal distances resolve to the lowest global training
    /// index.
    #[inline]
    pub(crate) fn beats(distance: f32, index: usize, other: NearestHit) -> bool {
        distance < other.distance || (distance == other.distance && index < other.index)
    }
}

/// Bounded running top-k state of one query: at most `k` [`NearestHit`]s kept
/// sorted ascending by `(distance, index)`.
///
/// Admission uses the same lexicographic key, which makes the final contents
/// independent of the order in which candidates arrive — the foundation of
/// the engine's "parallel == serial, bit for bit" guarantee for k > 1. With
/// `k == 1` the state degenerates to a single slot updated by one comparison,
/// i.e. exactly the [`NearestHit`] layout of the 1NN path.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKState {
    k: usize,
    hits: Vec<NearestHit>,
}

impl TopKState {
    /// An empty state retaining the best `k` candidates (`k` clamped to ≥ 1).
    pub fn new(k: usize) -> Self {
        let k = k.max(1);
        Self { k, hits: Vec::with_capacity(k.min(64)) }
    }

    /// The capacity `k` the state was created with.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current hits, ascending by `(distance, index)`; fewer than `k`
    /// entries until enough candidates have been offered.
    #[inline]
    pub fn hits(&self) -> &[NearestHit] {
        &self.hits
    }

    /// Clears the state for reuse at capacity `k` (clamped to ≥ 1), keeping
    /// the hit buffer's allocation — the scratch-reset of
    /// [`EvalEngine::topk_with`].
    #[inline]
    pub fn reset(&mut self, k: usize) {
        self.k = k.max(1);
        self.hits.clear();
    }

    /// Offers one candidate. Keeps the lexicographically smallest `k`
    /// `(distance, index)` pairs seen so far.
    #[inline]
    pub fn offer(&mut self, distance: f32, index: usize) {
        if let Some(&worst) = self.hits.last() {
            if self.hits.len() == self.k {
                if !NearestHit::beats(distance, index, worst) {
                    return;
                }
                // k == 1 fast path: a single slot overwritten in place.
                if self.k == 1 {
                    self.hits[0] = NearestHit { distance, index };
                    return;
                }
            }
        }
        let pos = self
            .hits
            .partition_point(|&h| NearestHit::beats(h.distance, h.index, NearestHit { distance, index }));
        self.hits.insert(pos, NearestHit { distance, index });
        if self.hits.len() > self.k {
            self.hits.pop();
        }
    }

    /// Removes every hit whose global training index is below `min_index` —
    /// the eviction primitive of the sliding-window successor state
    /// ([`crate::IncrementalTopK::evict_oldest`]). The surviving hits keep
    /// their ascending `(distance, index)` order.
    ///
    /// Returns `(removed_in_prefix, removed_total)` where `removed_in_prefix`
    /// counts removals among the first `prefix` positions — the caller uses it
    /// to shrink its certified-exact prefix length (see the admission-buffer
    /// invariant on [`crate::IncrementalTopK`]).
    pub fn evict_below(&mut self, min_index: usize, prefix: usize) -> (usize, usize) {
        let mut removed_prefix = 0usize;
        let mut kept = 0usize;
        for i in 0..self.hits.len() {
            let h = self.hits[i];
            if h.index < min_index {
                if i < prefix {
                    removed_prefix += 1;
                }
            } else {
                self.hits[kept] = h;
                kept += 1;
            }
        }
        let removed = self.hits.len() - kept;
        self.hits.truncate(kept);
        (removed_prefix, removed)
    }
}

/// Query-major top-k results: the `per_query` nearest training rows of every
/// query, each row's list ascending by `(distance, index)`.
///
/// Because per-query lists are sorted, the first `k' ≤ per_query` entries of a
/// row are exactly the top-`k'` answer — one table computed at `k_max` serves
/// every consumer that needs any smaller `k` (the FeeBee-style estimator
/// comparison computes one table per (transformation, split) and lets each
/// kNN-family estimator consume a prefix). Tables are built cold by
/// [`EvalEngine::topk`], incrementally from streamed batches via
/// [`EvalEngine::update_topk`] + [`NeighborTable::from_states`], or snapshot
/// from a grown [`crate::IncrementalTopK`] — bit-identical in every case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NeighborTable {
    /// Neighbours stored per query: `min(k, candidate training rows)`.
    per_query: usize,
    num_queries: usize,
    /// `num_queries * per_query` hits, query-major.
    hits: Vec<NearestHit>,
}

impl NeighborTable {
    /// Snapshots one state per query into a table.
    ///
    /// # Panics
    /// Panics if states disagree on their hit count (every query must have
    /// seen the same candidate set).
    pub fn from_states(states: &[TopKState]) -> Self {
        let per_query = states.first().map_or(0, |s| s.hits.len());
        let mut hits = Vec::with_capacity(states.len() * per_query);
        for s in states {
            assert_eq!(s.hits.len(), per_query, "ragged top-k states cannot form a table");
            hits.extend_from_slice(&s.hits);
        }
        Self { per_query, num_queries: states.len(), hits }
    }

    /// Snapshots the first `per_query` hits of every state into a table —
    /// the truncating variant used by eviction-enabled
    /// [`crate::IncrementalTopK`] states, whose `k + slack` admission buffers
    /// may be ragged beyond the certified k-prefix.
    ///
    /// # Panics
    /// Panics if any state holds fewer than `per_query` hits.
    pub fn from_state_prefixes(states: &[TopKState], per_query: usize) -> Self {
        let mut hits = Vec::with_capacity(states.len() * per_query);
        for s in states {
            assert!(s.hits.len() >= per_query, "state holds fewer hits than the requested prefix");
            hits.extend_from_slice(&s.hits[..per_query]);
        }
        Self { per_query, num_queries: states.len(), hits }
    }

    /// [`NeighborTable::from_states`] into an existing table, reusing its
    /// hit buffer — the zero-alloc snapshot of [`EvalEngine::topk_with`].
    ///
    /// # Panics
    /// Panics if states disagree on their hit count.
    pub fn assign_from_states(&mut self, states: &[TopKState]) {
        let per_query = states.first().map_or(0, |s| s.hits.len());
        self.hits.clear();
        self.hits.reserve(states.len() * per_query);
        for s in states {
            assert_eq!(s.hits.len(), per_query, "ragged top-k states cannot form a table");
            self.hits.extend_from_slice(&s.hits);
        }
        self.per_query = per_query;
        self.num_queries = states.len();
    }

    /// Wraps the flat k=1 layout (one [`NearestHit`] per query) as a table.
    /// Unfilled slots (`NearestHit::NONE`, possible only when no training row
    /// was ever offered) yield an empty table.
    ///
    /// # Panics
    /// Panics if only some slots are unfilled.
    pub fn from_nearest(nearest: Vec<NearestHit>) -> Self {
        let num_queries = nearest.len();
        if nearest.first().is_none_or(|h| h.index == usize::MAX) {
            assert!(
                nearest.iter().all(|h| h.index == usize::MAX),
                "partially-filled nearest slots cannot form a table"
            );
            return Self { per_query: 0, num_queries, hits: Vec::new() };
        }
        assert!(
            nearest.iter().all(|h| h.index != usize::MAX),
            "partially-filled nearest slots cannot form a table"
        );
        Self { per_query: 1, num_queries, hits: nearest }
    }

    /// Number of queries.
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Neighbours stored per query (0 when no training rows were available).
    #[inline]
    pub fn k(&self) -> usize {
        self.per_query
    }

    /// The stored neighbours of query `q`, ascending by `(distance, index)`.
    #[inline]
    pub fn neighbors(&self, q: usize) -> &[NearestHit] {
        &self.hits[q * self.per_query..(q + 1) * self.per_query]
    }

    /// The top-`k` prefix of query `q`'s list (`k` clamped to the stored
    /// count) — the exact top-`k` answer for any `k ≤` [`NeighborTable::k`].
    #[inline]
    pub fn neighbors_k(&self, q: usize, k: usize) -> &[NearestHit] {
        &self.neighbors(q)[..k.min(self.per_query)]
    }

    /// The single nearest neighbour of query `q` (`None` on an empty table).
    #[inline]
    pub fn first(&self, q: usize) -> Option<NearestHit> {
        self.neighbors(q).first().copied()
    }

    /// Majority-vote label among the first `k` neighbours of query `q`; vote
    /// ties resolve to the smallest class id (deterministic).
    ///
    /// # Panics
    /// Panics if a consulted neighbour's label is `≥ num_classes`.
    pub fn vote(&self, q: usize, k: usize, train_labels: &[u32], num_classes: usize) -> u32 {
        let mut votes = vec![0usize; num_classes];
        self.vote_into(q, k, train_labels, &mut votes)
    }

    /// [`NeighborTable::vote`] with a caller-provided (reused) count buffer.
    fn vote_into(&self, q: usize, k: usize, train_labels: &[u32], votes: &mut [usize]) -> u32 {
        votes.iter_mut().for_each(|v| *v = 0);
        for hit in self.neighbors_k(q, k) {
            votes[train_labels[hit.index] as usize] += 1;
        }
        let mut best = 0usize;
        for (c, &v) in votes.iter().enumerate() {
            if v > votes[best] {
                best = c;
            }
        }
        best as u32
    }

    /// kNN majority-vote classifier error against `query_labels`. Returns 0
    /// for zero queries; with an empty table (no training rows) every
    /// prediction counts as wrong.
    ///
    /// # Panics
    /// Panics if `query_labels` disagrees with the query count.
    pub fn knn_error(&self, k: usize, train_labels: &[u32], query_labels: &[u32], num_classes: usize) -> f64 {
        assert_eq!(query_labels.len(), self.num_queries, "query label count mismatch");
        if self.num_queries == 0 {
            return 0.0;
        }
        if self.per_query == 0 {
            return 1.0;
        }
        let mut votes = vec![0usize; num_classes];
        let wrong = query_labels
            .iter()
            .enumerate()
            .filter(|&(q, &y)| self.vote_into(q, k, train_labels, &mut votes) != y)
            .count();
        wrong as f64 / self.num_queries as f64
    }

    /// 1NN classifier error (the `k = 1` special case, no voting).
    pub fn one_nn_error(&self, train_labels: &[u32], query_labels: &[u32]) -> f64 {
        assert_eq!(query_labels.len(), self.num_queries, "query label count mismatch");
        if self.num_queries == 0 {
            return 0.0;
        }
        if self.per_query == 0 {
            return 1.0;
        }
        let wrong = query_labels
            .iter()
            .enumerate()
            .filter(|&(q, &y)| train_labels[self.neighbors(q)[0].index] != y)
            .count();
        wrong as f64 / self.num_queries as f64
    }
}

/// Number of worker threads the parallel engine uses by default: the worker
/// count of the current [`snoopy_pool`] pool (the installed one inside a
/// [`snoopy_pool::ThreadPool::install`] frame, else the global pool, whose
/// size is resolved once from `SNOOPY_POOL_WORKERS` /
/// `available_parallelism()`).
pub fn num_threads() -> usize {
    snoopy_pool::workers()
}

/// The tile-blocked, chunk-parallel evaluation engine.
#[derive(Debug, Clone, Copy)]
pub struct EvalEngine {
    threads: usize,
    block_rows: usize,
    tile_rows: usize,
}

/// Training rows per cache block: 128 rows × 256 dims × 4 bytes = 128 KiB,
/// sized to stay within a typical L2 slice for the workspace's embedding
/// dimensions (8–768).
const DEFAULT_BLOCK_ROWS: usize = 128;

/// Training rows per distance tile: one [`MetricKernel`] call computes this
/// many distances before they are admitted into the per-query state. 64
/// distances = 256 bytes of scratch, enough rows to amortise the admission
/// loop without spilling the microkernel's register blocks.
const DEFAULT_TILE_ROWS: usize = 64;

impl EvalEngine {
    /// A single-threaded engine (the bit-exact reference configuration).
    pub fn serial() -> Self {
        Self { threads: 1, block_rows: DEFAULT_BLOCK_ROWS, tile_rows: DEFAULT_TILE_ROWS }
    }

    /// An engine using all available cores (capped at 16).
    pub fn parallel() -> Self {
        Self { threads: num_threads(), block_rows: DEFAULT_BLOCK_ROWS, tile_rows: DEFAULT_TILE_ROWS }
    }

    /// An engine with an explicit worker count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1), block_rows: DEFAULT_BLOCK_ROWS, tile_rows: DEFAULT_TILE_ROWS }
    }

    /// Overrides the training-row block size (clamped to ≥ 1).
    pub fn with_block_rows(mut self, block_rows: usize) -> Self {
        self.block_rows = block_rows.max(1);
        self
    }

    /// Overrides the distance-tile size (clamped to ≥ 1). Results are
    /// bit-identical for every tile size — the knob only trades scratch
    /// locality against admission-loop overhead.
    pub fn with_tile_rows(mut self, tile_rows: usize) -> Self {
        self.tile_rows = tile_rows.max(1);
        self
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The training-row block size.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// The distance-tile size.
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Shape checks shared by the two fold entry points: the kernel's bound
    /// caches must correspond to exactly the views being scanned.
    fn check_binding(kernel: &MetricKernel, queries: DatasetView<'_>, train: DatasetView<'_>) {
        assert_eq!(queries.cols(), train.cols(), "query/train dimensionality mismatch");
        assert_eq!(kernel.queries_bound(), queries.rows(), "kernel query cache not bound to these queries");
        assert_eq!(kernel.train_bound(), train.rows(), "kernel train cache not bound to this train batch");
    }

    /// Folds the training rows of `train` (global indices starting at
    /// `offset`) into the running nearest state `best` of every query row.
    ///
    /// `kernel` must be bound to exactly these views
    /// ([`MetricKernel::bind_queries`] / [`MetricKernel::bind_train`]); the
    /// typed caches replace the old per-metric `Option<&[f32]>` norm
    /// plumbing, so no metric can observe a missing norm.
    ///
    /// # Panics
    /// Panics on dimension mismatches, `best.len() != queries.rows()`, or a
    /// kernel whose caches are not bound to these views.
    pub fn update_nearest(
        &self,
        queries: DatasetView<'_>,
        kernel: &MetricKernel,
        train: DatasetView<'_>,
        offset: usize,
        best: &mut [NearestHit],
    ) {
        Self::check_binding(kernel, queries, train);
        assert_eq!(best.len(), queries.rows(), "one nearest slot per query required");
        if queries.rows() == 0 || train.rows() == 0 {
            return;
        }
        let n = queries.rows();
        let threads = self.threads.min(n);
        if threads <= 1 {
            self.scan_chunk(queries, 0, kernel, train, offset, best);
            return;
        }
        let chunk = n.div_ceil(threads);
        snoopy_pool::scope(|scope| {
            for (t, slot) in best.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    self.scan_chunk(queries, start, kernel, train, offset, slot);
                });
            }
        });
    }

    /// Scans all training blocks for the queries `[start, start + best.len())`,
    /// one distance tile at a time — queries in pairs through the 2 × 4
    /// register block, with a single-query pass for an odd trailing query.
    fn scan_chunk(
        &self,
        queries: DatasetView<'_>,
        start: usize,
        kernel: &MetricKernel,
        train: DatasetView<'_>,
        offset: usize,
        best: &mut [NearestHit],
    ) {
        let tile_len = self.tile_rows.min(train.rows().max(1));
        let mut tile_a = vec![0.0f32; tile_len];
        let mut tile_b = vec![0.0f32; tile_len];
        let n_train = train.rows();
        let mut b0 = 0;
        while b0 < n_train {
            let bend = (b0 + self.block_rows).min(n_train);
            let mut qi = 0;
            while qi < best.len() {
                let q = queries.row(start + qi);
                let qv = kernel.query_cached(start + qi);
                let paired = qi + 1 < best.len();
                let mut t0 = b0;
                while t0 < bend {
                    let len = self.tile_rows.min(bend - t0);
                    if paired {
                        kernel.tile2_with(
                            q,
                            qv,
                            queries.row(start + qi + 1),
                            kernel.query_cached(start + qi + 1),
                            train,
                            t0,
                            &mut tile_a[..len],
                            &mut tile_b[..len],
                        );
                    } else {
                        kernel.tile_with(q, qv, train, t0, &mut tile_a[..len]);
                    }
                    for (slot_off, tile) in [(0usize, &tile_a), (1, &tile_b)] {
                        if slot_off == 1 && !paired {
                            break;
                        }
                        let slot = &mut best[qi + slot_off];
                        for (j, &d) in tile[..len].iter().enumerate() {
                            let index = offset + t0 + j;
                            if NearestHit::beats(d, index, *slot) {
                                *slot = NearestHit { distance: d, index };
                            }
                        }
                    }
                    t0 += len;
                }
                qi += if paired { 2 } else { 1 };
            }
            b0 = bend;
        }
    }

    /// Nearest training row for every query, from a cold start: binds a
    /// fresh [`MetricKernel`] internally (one norm pass per side, nothing
    /// per query).
    pub fn nearest(
        &self,
        train: DatasetView<'_>,
        queries: DatasetView<'_>,
        metric: Metric,
    ) -> Vec<NearestHit> {
        let mut best = vec![NearestHit::NONE; queries.rows()];
        let kernel = MetricKernel::bound(metric, queries, train);
        self.update_nearest(queries, &kernel, train, 0, &mut best);
        best
    }

    /// Folds the training rows of `train` (global indices starting at
    /// `offset`) into the running top-k state of every query row — the k-ary
    /// generalisation of [`EvalEngine::update_nearest`], streamable batch by
    /// batch exactly the same way.
    ///
    /// `kernel` must be bound to exactly these views. `exclude_self =
    /// Some(base)` declares that query row `i` *is* the training row with
    /// global index `base + i` and skips that one pair — the leave-one-out
    /// configuration.
    ///
    /// # Panics
    /// Panics on dimension mismatches, `states.len() != queries.rows()`, or
    /// a kernel whose caches are not bound to these views.
    pub fn update_topk(
        &self,
        queries: DatasetView<'_>,
        kernel: &MetricKernel,
        train: DatasetView<'_>,
        offset: usize,
        states: &mut [TopKState],
        exclude_self: Option<usize>,
    ) {
        Self::check_binding(kernel, queries, train);
        assert_eq!(states.len(), queries.rows(), "one top-k state per query required");
        if queries.rows() == 0 || train.rows() == 0 {
            return;
        }
        let n = queries.rows();
        let threads = self.threads.min(n);
        if threads <= 1 {
            self.scan_chunk_topk(queries, 0, kernel, train, offset, states, exclude_self);
            return;
        }
        let chunk = n.div_ceil(threads);
        snoopy_pool::scope(|scope| {
            for (t, slot) in states.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    self.scan_chunk_topk(queries, start, kernel, train, offset, slot, exclude_self);
                });
            }
        });
    }

    /// Scans all training blocks into the top-k states of queries
    /// `[start, start + states.len())`, one distance tile at a time —
    /// queries in pairs through the 2 × 4 register block, with a
    /// single-query pass for an odd trailing query.
    #[allow(clippy::too_many_arguments)] // the scan's full per-chunk context
    fn scan_chunk_topk(
        &self,
        queries: DatasetView<'_>,
        start: usize,
        kernel: &MetricKernel,
        train: DatasetView<'_>,
        offset: usize,
        states: &mut [TopKState],
        exclude_self: Option<usize>,
    ) {
        let tile_len = self.tile_rows.min(train.rows().max(1));
        let mut tile_a = vec![0.0f32; tile_len];
        let mut tile_b = vec![0.0f32; tile_len];
        let n_train = train.rows();
        let mut b0 = 0;
        while b0 < n_train {
            let bend = (b0 + self.block_rows).min(n_train);
            let mut qi = 0;
            while qi < states.len() {
                let q = queries.row(start + qi);
                let qv = kernel.query_cached(start + qi);
                let paired = qi + 1 < states.len();
                let mut t0 = b0;
                while t0 < bend {
                    let len = self.tile_rows.min(bend - t0);
                    if paired {
                        kernel.tile2_with(
                            q,
                            qv,
                            queries.row(start + qi + 1),
                            kernel.query_cached(start + qi + 1),
                            train,
                            t0,
                            &mut tile_a[..len],
                            &mut tile_b[..len],
                        );
                    } else {
                        kernel.tile_with(q, qv, train, t0, &mut tile_a[..len]);
                    }
                    for (state_off, tile) in [(0usize, &tile_a), (1, &tile_b)] {
                        if state_off == 1 && !paired {
                            break;
                        }
                        let state = &mut states[qi + state_off];
                        let skip = exclude_self.map(|b| b + start + qi + state_off).unwrap_or(usize::MAX);
                        for (j, &d) in tile[..len].iter().enumerate() {
                            let global = offset + t0 + j;
                            if global == skip {
                                continue;
                            }
                            state.offer(d, global);
                        }
                    }
                    t0 += len;
                }
                qi += if paired { 2 } else { 1 };
            }
            b0 = bend;
        }
    }

    /// Top-k neighbour table for every query, from a cold start. `k = 1`
    /// specialises to the flat [`EvalEngine::nearest`] layout (no per-query
    /// state allocation); the norm caches are bound internally either way.
    pub fn topk(
        &self,
        train: DatasetView<'_>,
        queries: DatasetView<'_>,
        metric: Metric,
        k: usize,
    ) -> NeighborTable {
        let k = k.max(1);
        if k == 1 {
            return NeighborTable::from_nearest(self.nearest(train, queries, metric));
        }
        let kernel = MetricKernel::bound(metric, queries, train);
        let mut states = vec![TopKState::new(k); queries.rows()];
        self.update_topk(queries, &kernel, train, 0, &mut states, None);
        NeighborTable::from_states(&states)
    }

    /// Leave-one-out top-k table of `data` against itself: row `i`'s
    /// neighbour list excludes row `i`. Each row stores
    /// `min(k, rows − 1)` hits.
    pub fn topk_loo(&self, data: DatasetView<'_>, metric: Metric, k: usize) -> NeighborTable {
        let kernel = MetricKernel::bound(metric, data, data);
        let mut states = vec![TopKState::new(k.max(1)); data.rows()];
        self.update_topk(data, &kernel, data, 0, &mut states, Some(0));
        NeighborTable::from_states(&states)
    }

    /// [`EvalEngine::topk`] with caller-owned scratch: the per-query states,
    /// the kernel's norm caches, and the output table all live in `scratch`
    /// and are reused call after call, so once the scratch has warmed up to
    /// the largest query count seen, a steady-state serving loop allocates
    /// nothing per call. Results are bit-identical to [`EvalEngine::topk`].
    pub fn topk_with<'s>(
        &self,
        scratch: &'s mut TopKScratch,
        train: DatasetView<'_>,
        queries: DatasetView<'_>,
        metric: Metric,
        k: usize,
    ) -> &'s NeighborTable {
        let (kernel, states, table) = scratch.prepare(metric, queries.rows(), k);
        kernel.bind_queries(queries);
        kernel.bind_train(train);
        self.update_topk(queries, kernel, train, 0, states, None);
        table.assign_from_states(states);
        table
    }

    /// [`EvalEngine::topk_loo`] with caller-owned scratch — see
    /// [`EvalEngine::topk_with`] for the reuse contract.
    pub fn topk_loo_with<'s>(
        &self,
        scratch: &'s mut TopKScratch,
        data: DatasetView<'_>,
        metric: Metric,
        k: usize,
    ) -> &'s NeighborTable {
        let (kernel, states, table) = scratch.prepare(metric, data.rows(), k);
        kernel.bind_queries(data);
        kernel.bind_train(data);
        self.update_topk(data, kernel, data, 0, states, Some(0));
        table.assign_from_states(states);
        table
    }

    /// Blocked, chunk-parallel accumulation of per-class Gaussian kernel
    /// sums — the KDE hot loop. For every query `q` and class `c` this
    /// returns (query-major, `num_classes` entries per query)
    ///
    /// ```text
    /// out[q·C + c] = log Σ_{j : labels[j] = c} exp(−‖q − x_j‖² · inv_two_h2)
    /// ```
    ///
    /// accumulated with an online log-sum-exp ([`OnlineLse`]) so the blocked
    /// kernel never materialises the per-point log-kernels. Classes with no
    /// training rows yield `-∞`. Training rows are visited in ascending index
    /// order per query, so results do not depend on thread count or block
    /// size.
    ///
    /// # Panics
    /// Panics on dimension or label-count mismatches, or a label
    /// `≥ num_classes`.
    pub fn class_kernel_log_sums(
        &self,
        queries: DatasetView<'_>,
        train: DatasetView<'_>,
        train_labels: &[u32],
        num_classes: usize,
        inv_two_h2: f64,
    ) -> Vec<f64> {
        assert_eq!(queries.cols(), train.cols(), "query/train dimensionality mismatch");
        assert_eq!(train.rows(), train_labels.len(), "train feature/label mismatch");
        let n = queries.rows();
        let c = num_classes.max(1);
        let mut acc = vec![OnlineLse::EMPTY; n * c];
        if n > 0 && train.rows() > 0 {
            let kernel = MetricKernel::bound(Metric::SquaredEuclidean, queries, train);
            let threads = self.threads.min(n);
            if threads <= 1 {
                self.kernel_chunk(queries, 0, &kernel, train, train_labels, c, inv_two_h2, &mut acc);
            } else {
                let chunk = n.div_ceil(threads);
                let kernel = &kernel;
                snoopy_pool::scope(|scope| {
                    for (t, slot) in acc.chunks_mut(chunk * c).enumerate() {
                        let start = t * chunk;
                        scope.spawn(move || {
                            self.kernel_chunk(
                                queries,
                                start,
                                kernel,
                                train,
                                train_labels,
                                c,
                                inv_two_h2,
                                slot,
                            );
                        });
                    }
                });
            }
        }
        acc.iter().map(OnlineLse::value).collect()
    }

    /// Accumulates all training blocks into the per-class kernel sums of
    /// queries `[start, start + acc.len() / classes)`, one distance tile at
    /// a time.
    #[allow(clippy::too_many_arguments)] // the kernel's full context, passed by value/slice
    fn kernel_chunk(
        &self,
        queries: DatasetView<'_>,
        start: usize,
        kernel: &MetricKernel,
        train: DatasetView<'_>,
        train_labels: &[u32],
        classes: usize,
        inv_two_h2: f64,
        acc: &mut [OnlineLse],
    ) {
        let mut tile = vec![0.0f32; self.tile_rows.min(train.rows().max(1))];
        let n_train = train.rows();
        let mut b0 = 0;
        while b0 < n_train {
            let bend = (b0 + self.block_rows).min(n_train);
            for (qi, states) in acc.chunks_mut(classes).enumerate() {
                let q = queries.row(start + qi);
                let qv = kernel.query_cached(start + qi);
                let mut t0 = b0;
                while t0 < bend {
                    let len = self.tile_rows.min(bend - t0);
                    let out = &mut tile[..len];
                    kernel.tile_with(q, qv, train, t0, out);
                    for (j, &d) in out.iter().enumerate() {
                        states[train_labels[t0 + j] as usize].add(-(d as f64) * inv_two_h2);
                    }
                    t0 += len;
                }
            }
            b0 = bend;
        }
    }
}

/// Caller-owned scratch for the zero-alloc top-k entry points
/// ([`EvalEngine::topk_with`] / [`EvalEngine::topk_loo_with`]): the
/// per-query [`TopKState`]s, the [`MetricKernel`] with its norm caches, and
/// the output [`NeighborTable`] are all owned here and recycled call after
/// call — the `Reuse`-variant API idiom. A fresh scratch behaves exactly
/// like the allocating entry points; reuse only skips the allocations.
#[derive(Default)]
pub struct TopKScratch {
    kernel: Option<MetricKernel>,
    states: Vec<TopKState>,
    table: NeighborTable,
}

impl TopKScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The table produced by the most recent `*_with` call (empty before
    /// any call).
    pub fn table(&self) -> &NeighborTable {
        &self.table
    }

    /// Resets the states to `n` queries at capacity `k`, keeps (or swaps,
    /// on a metric change) the kernel, and hands all three buffers out.
    fn prepare(
        &mut self,
        metric: Metric,
        n: usize,
        k: usize,
    ) -> (&mut MetricKernel, &mut [TopKState], &mut NeighborTable) {
        if !matches!(&self.kernel, Some(kr) if kr.metric() == metric) {
            self.kernel = Some(MetricKernel::new(metric));
        }
        let kernel = self.kernel.as_mut().expect("kernel ensured above");
        let k = k.max(1);
        self.states.truncate(n);
        for s in self.states.iter_mut() {
            s.reset(k);
        }
        self.states.resize_with(n, || TopKState::new(k));
        (kernel, &mut self.states, &mut self.table)
    }
}

/// Reference implementation: the plain serial double loop, written with
/// [`Metric::distance`] (the kernel layer's fixed-order scalar expression)
/// and no blocking or tiling. The engine must match it bit for bit; tests
/// and the bench harness compare against it.
pub fn nearest_reference(
    train: DatasetView<'_>,
    queries: DatasetView<'_>,
    metric: Metric,
) -> Vec<NearestHit> {
    let mut best = vec![NearestHit::NONE; queries.rows()];
    for (slot, q) in best.iter_mut().zip(queries.rows_iter()) {
        for (j, row) in train.rows_iter().enumerate() {
            let d = metric.distance(q, row);
            if d < slot.distance {
                *slot = NearestHit { distance: d, index: j };
            }
        }
    }
    best
}

/// Reference top-k implementation: compute *every* pairwise distance with
/// [`Metric::distance`], sort by the lexicographic `(distance, index)` key,
/// truncate to `k`. Quadratic in memory per query and purely serial — exists
/// only as the ground truth the engine must match bit for bit.
pub fn knn_reference(
    train: DatasetView<'_>,
    queries: DatasetView<'_>,
    metric: Metric,
    k: usize,
) -> NeighborTable {
    reference_table(train, queries, metric, k.max(1), false)
}

/// Leave-one-out variant of [`knn_reference`]: query `i` is row `i` of
/// `data` and is excluded from its own neighbour list.
pub fn knn_reference_loo(data: DatasetView<'_>, metric: Metric, k: usize) -> NeighborTable {
    reference_table(data, data, metric, k.max(1), true)
}

fn reference_table(
    train: DatasetView<'_>,
    queries: DatasetView<'_>,
    metric: Metric,
    k: usize,
    exclude_diag: bool,
) -> NeighborTable {
    let candidates = if exclude_diag { train.rows().saturating_sub(1) } else { train.rows() };
    let per_query = k.min(candidates);
    let mut hits = Vec::with_capacity(queries.rows() * per_query);
    for (qi, q) in queries.rows_iter().enumerate() {
        let mut all: Vec<NearestHit> = train
            .rows_iter()
            .enumerate()
            .filter(|&(j, _)| !(exclude_diag && j == qi))
            .map(|(j, row)| NearestHit { distance: metric.distance(q, row), index: j })
            .collect();
        all.sort_by(|a, b| {
            a.distance.partial_cmp(&b.distance).expect("NaN distance").then(a.index.cmp(&b.index))
        });
        all.truncate(per_query);
        hits.extend(all);
    }
    NeighborTable { per_query, num_queries: queries.rows(), hits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_linalg::Matrix;

    fn wavy(n: usize, d: usize, phase: f32) -> Matrix {
        Matrix::from_fn(n, d, |r, c| ((r * d + c) as f32 * 0.37 + phase).sin() * 3.0)
    }

    #[test]
    fn engine_matches_reference_for_all_metrics() {
        let train = wavy(137, 9, 0.0);
        let queries = wavy(41, 9, 1.3);
        for metric in Metric::all() {
            let reference = nearest_reference(train.view(), queries.view(), metric);
            for engine in [
                EvalEngine::serial(),
                EvalEngine::parallel(),
                EvalEngine::with_threads(3).with_block_rows(16),
            ] {
                let got = engine.nearest(train.view(), queries.view(), metric);
                assert_eq!(got, reference, "metric {} engine {engine:?}", metric.name());
            }
        }
    }

    #[test]
    fn streaming_updates_accumulate_to_the_full_answer() {
        let train = wavy(100, 5, 0.0);
        let queries = wavy(23, 5, 2.1);
        let engine = EvalEngine::with_threads(2).with_block_rows(8);
        let metric = Metric::SquaredEuclidean;
        let mut kernel = crate::kernel::MetricKernel::new(metric);
        kernel.bind_queries(queries.view());
        let mut best = vec![NearestHit::NONE; queries.rows()];
        let mut consumed = 0;
        for batch in train.view().batches(33) {
            kernel.bind_train(batch);
            engine.update_nearest(queries.view(), &kernel, batch, consumed, &mut best);
            consumed += batch.rows();
        }
        assert_eq!(best, nearest_reference(train.view(), queries.view(), metric));
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        let train = wavy(10, 4, 0.0);
        let empty = Matrix::zeros(0, 4);
        let mut best: Vec<NearestHit> = vec![];
        let kernel = crate::kernel::MetricKernel::bound(Metric::SquaredEuclidean, empty.view(), train.view());
        EvalEngine::parallel().update_nearest(empty.view(), &kernel, train.view(), 0, &mut best);
        let hits = EvalEngine::parallel().nearest(empty.view(), wavy(3, 4, 0.5).view(), Metric::Euclidean);
        assert!(hits.iter().all(|h| *h == NearestHit::NONE));
    }

    #[test]
    fn topk_matches_reference_for_all_metrics_and_ks() {
        let train = wavy(119, 7, 0.0);
        let queries = wavy(29, 7, 1.7);
        for metric in Metric::all() {
            for k in [1usize, 3, 10, 119, 400] {
                let reference = knn_reference(train.view(), queries.view(), metric, k);
                for engine in [
                    EvalEngine::serial(),
                    EvalEngine::parallel(),
                    EvalEngine::with_threads(3).with_block_rows(16),
                ] {
                    let got = engine.topk(train.view(), queries.view(), metric, k);
                    assert_eq!(got, reference, "metric {} k {k} engine {engine:?}", metric.name());
                }
            }
        }
    }

    #[test]
    fn streamed_topk_accumulates_to_the_cold_start_answer() {
        let train = wavy(90, 5, 0.0);
        let queries = wavy(21, 5, 2.4);
        let engine = EvalEngine::with_threads(2).with_block_rows(8);
        for metric in [Metric::SquaredEuclidean, Metric::Cosine] {
            let mut kernel = crate::kernel::MetricKernel::new(metric);
            kernel.bind_queries(queries.view());
            let mut states = vec![TopKState::new(4); queries.rows()];
            let mut consumed = 0;
            for batch in train.view().batches(26) {
                kernel.bind_train(batch);
                engine.update_topk(queries.view(), &kernel, batch, consumed, &mut states, None);
                consumed += batch.rows();
            }
            let table = NeighborTable::from_states(&states);
            assert_eq!(table, knn_reference(train.view(), queries.view(), metric, 4), "{}", metric.name());
        }
    }

    #[test]
    fn loo_table_excludes_self_and_matches_reference() {
        let data = wavy(57, 6, 0.3);
        for metric in Metric::all() {
            for k in [1usize, 5, 57] {
                let reference = knn_reference_loo(data.view(), metric, k);
                let got = EvalEngine::with_threads(4).with_block_rows(13).topk_loo(data.view(), metric, k);
                assert_eq!(got, reference, "metric {} k {k}", metric.name());
                for q in 0..got.num_queries() {
                    assert!(got.neighbors(q).iter().all(|h| h.index != q), "row {q} must exclude itself");
                }
                assert_eq!(got.k(), k.min(56));
            }
        }
    }

    #[test]
    fn table_prefixes_are_smaller_k_answers_and_votes_are_deterministic() {
        let train = wavy(64, 4, 0.0);
        let queries = wavy(11, 4, 0.9);
        let big = EvalEngine::parallel().topk(train.view(), queries.view(), Metric::SquaredEuclidean, 9);
        let small = EvalEngine::parallel().topk(train.view(), queries.view(), Metric::SquaredEuclidean, 3);
        for q in 0..queries.rows() {
            assert_eq!(big.neighbors_k(q, 3), small.neighbors(q));
            assert_eq!(big.first(q), small.first(q));
        }
        // All-identical labels: the vote is that label for every k.
        let labels = vec![2u32; 64];
        for q in 0..queries.rows() {
            assert_eq!(big.vote(q, 5, &labels, 3), 2);
        }
    }

    #[test]
    fn topk_ties_resolve_to_lowest_indices_for_every_shape() {
        // Every training row identical: the top-k set must be {0, 1, .., k-1}
        // in order, for any thread/block shape and for streamed ingestion.
        let train = Matrix::from_fn(40, 3, |_, _| 2.5);
        let queries = wavy(7, 3, 0.4);
        for metric in Metric::all() {
            for engine in [EvalEngine::serial(), EvalEngine::with_threads(5).with_block_rows(4)] {
                let table = engine.topk(train.view(), queries.view(), metric, 6);
                for q in 0..table.num_queries() {
                    let idx: Vec<usize> = table.neighbors(q).iter().map(|h| h.index).collect();
                    assert_eq!(idx, vec![0, 1, 2, 3, 4, 5], "metric {}", metric.name());
                }
            }
        }
    }

    #[test]
    fn class_kernel_log_sums_match_naive_lse() {
        use snoopy_linalg::stats;
        let train = wavy(83, 5, 0.0);
        let queries = wavy(17, 5, 1.1);
        let labels: Vec<u32> = (0..83).map(|i| (i % 3) as u32).collect();
        let inv_two_h2 = 0.37;
        for engine in [EvalEngine::serial(), EvalEngine::with_threads(4).with_block_rows(9)] {
            let got = engine.class_kernel_log_sums(queries.view(), train.view(), &labels, 4, inv_two_h2);
            assert_eq!(got.len(), 17 * 4);
            for (qi, q) in queries.view().rows_iter().enumerate() {
                for c in 0..4u32 {
                    let terms: Vec<f64> = train
                        .view()
                        .rows_iter()
                        .enumerate()
                        .filter(|(j, _)| labels.get(*j) == Some(&c))
                        .map(|(_, row)| -(Metric::SquaredEuclidean.distance(q, row) as f64) * inv_two_h2)
                        .collect();
                    let expected = stats::log_sum_exp(&terms);
                    let v = got[qi * 4 + c as usize];
                    if terms.is_empty() {
                        assert_eq!(v, f64::NEG_INFINITY, "empty class must be -inf");
                    } else {
                        assert!((v - expected).abs() < 1e-9, "q {qi} class {c}: {v} vs {expected}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_table_shapes() {
        let queries = wavy(5, 4, 0.0);
        let empty_train = Matrix::zeros(0, 4);
        let table = EvalEngine::parallel().topk(empty_train.view(), queries.view(), Metric::Euclidean, 3);
        assert_eq!(table.num_queries(), 5);
        assert_eq!(table.k(), 0);
        assert_eq!(table.first(0), None);
        assert_eq!(table.one_nn_error(&[], &[0, 1, 0, 1, 0]), 1.0);
        let no_queries =
            EvalEngine::parallel().topk(queries.view(), empty_train.view(), Metric::Euclidean, 3);
        assert_eq!(no_queries.num_queries(), 0);
        assert_eq!(no_queries.knn_error(3, &[0; 5], &[], 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let train = wavy(4, 3, 0.0);
        let queries = wavy(4, 5, 0.0);
        let mut best = vec![NearestHit::NONE; 4];
        let kernel =
            crate::kernel::MetricKernel::bound(Metric::SquaredEuclidean, queries.view(), train.view());
        EvalEngine::serial().update_nearest(queries.view(), &kernel, train.view(), 0, &mut best);
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn stale_kernel_binding_panics() {
        let train = wavy(6, 3, 0.0);
        let queries = wavy(4, 3, 0.0);
        let mut best = vec![NearestHit::NONE; 4];
        // Kernel bound to a *prefix* of the training batch: a loud error,
        // not a silent wrong answer.
        let kernel =
            crate::kernel::MetricKernel::bound(Metric::Cosine, queries.view(), train.view().slice_rows(0, 3));
        EvalEngine::serial().update_nearest(queries.view(), &kernel, train.view(), 0, &mut best);
    }
}
