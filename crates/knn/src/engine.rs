//! The shared 1NN evaluation engine: a blocked, chunk-parallel distance
//! kernel over zero-copy [`DatasetView`]s.
//!
//! Every estimator evaluation, bandit-arm pull, and experiment binary funnels
//! through the same inner loop — "for each query, find the nearest training
//! row". This module implements that loop once, with three properties the
//! rest of the workspace relies on:
//!
//! 1. **Chunk parallelism.** Queries are split into contiguous chunks, one
//!    per worker thread (`std::thread::scope`; no runtime dependency).
//! 2. **Row blocking.** Each worker walks the training rows in blocks of
//!    [`EvalEngine::block_rows`] rows so a block stays cache-resident while
//!    every query of the chunk scans it.
//! 3. **Reusable scratch.** Cosine needs per-row norms; callers precompute
//!    them once into reusable buffers ([`row_norms_into`]) instead of
//!    allocating (or recomputing) per query.
//!
//! The kernel is *bit-identical* to the naive serial loop: training rows are
//! visited in ascending index order with a strict `<` comparison, and every
//! pairwise distance is computed by the same floating-point expression as
//! [`Metric::distance`]. The integration test `parallel_engine.rs` pins this
//! property down.

use crate::metric::Metric;
use snoopy_linalg::{DatasetView, Matrix};

/// Running nearest-neighbour state of one query: distance and *global*
/// training-row index. `index == usize::MAX` means "nothing seen yet".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearestHit {
    /// Dissimilarity to the nearest training row seen so far.
    pub distance: f32,
    /// Global index of that training row.
    pub index: usize,
}

impl NearestHit {
    /// The empty state: infinitely far, no index.
    pub const NONE: NearestHit = NearestHit { distance: f32::INFINITY, index: usize::MAX };
}

/// Number of worker threads the parallel engine uses by default.
pub fn num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(1, 16)
}

/// Fills `out` with the Euclidean norm of every row of `view`, reusing the
/// buffer's allocation. Required scratch for [`Metric::Cosine`].
pub fn row_norms_into(view: DatasetView<'_>, out: &mut Vec<f32>) {
    out.clear();
    out.extend(view.rows_iter().map(Matrix::row_norm));
}

/// The blocked, chunk-parallel 1NN evaluation engine.
#[derive(Debug, Clone, Copy)]
pub struct EvalEngine {
    threads: usize,
    block_rows: usize,
}

/// Training rows per cache block: 128 rows × 256 dims × 4 bytes = 128 KiB,
/// sized to stay within a typical L2 slice for the workspace's embedding
/// dimensions (8–768).
const DEFAULT_BLOCK_ROWS: usize = 128;

impl EvalEngine {
    /// A single-threaded engine (the bit-exact reference configuration).
    pub fn serial() -> Self {
        Self { threads: 1, block_rows: DEFAULT_BLOCK_ROWS }
    }

    /// An engine using all available cores (capped at 16).
    pub fn parallel() -> Self {
        Self { threads: num_threads(), block_rows: DEFAULT_BLOCK_ROWS }
    }

    /// An engine with an explicit worker count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1), block_rows: DEFAULT_BLOCK_ROWS }
    }

    /// Overrides the training-row block size (clamped to ≥ 1).
    pub fn with_block_rows(mut self, block_rows: usize) -> Self {
        self.block_rows = block_rows.max(1);
        self
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The training-row block size.
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Folds the training rows of `train` (global indices starting at
    /// `offset`) into the running nearest state `best` of every query row.
    ///
    /// `query_norms` / `train_norms` are required for [`Metric::Cosine`]
    /// (precompute with [`row_norms_into`]); other metrics ignore them.
    ///
    /// # Panics
    /// Panics on dimension mismatches, `best.len() != queries.rows()`, or
    /// missing cosine norms.
    #[allow(clippy::too_many_arguments)] // the kernel's full context, passed by value/slice
    pub fn update_nearest(
        &self,
        queries: DatasetView<'_>,
        metric: Metric,
        query_norms: Option<&[f32]>,
        train: DatasetView<'_>,
        train_norms: Option<&[f32]>,
        offset: usize,
        best: &mut [NearestHit],
    ) {
        assert_eq!(queries.cols(), train.cols(), "query/train dimensionality mismatch");
        assert_eq!(best.len(), queries.rows(), "one nearest slot per query required");
        if queries.rows() == 0 || train.rows() == 0 {
            return;
        }
        if metric == Metric::Cosine {
            let qn = query_norms.expect("cosine requires precomputed query norms");
            let tn = train_norms.expect("cosine requires precomputed train norms");
            assert_eq!(qn.len(), queries.rows(), "query norm count mismatch");
            assert_eq!(tn.len(), train.rows(), "train norm count mismatch");
        }

        let n = queries.rows();
        let threads = self.threads.min(n);
        if threads <= 1 {
            self.scan_chunk(queries, 0, metric, query_norms, train, train_norms, offset, best);
            return;
        }
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slot) in best.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    self.scan_chunk(queries, start, metric, query_norms, train, train_norms, offset, slot);
                });
            }
        });
    }

    /// Scans all training blocks for the queries `[start, start + best.len())`.
    #[allow(clippy::too_many_arguments)] // the kernel's full context, passed by value/slice
    fn scan_chunk(
        &self,
        queries: DatasetView<'_>,
        start: usize,
        metric: Metric,
        query_norms: Option<&[f32]>,
        train: DatasetView<'_>,
        train_norms: Option<&[f32]>,
        offset: usize,
        best: &mut [NearestHit],
    ) {
        for (block_idx, block) in train.batches(self.block_rows).enumerate() {
            let base = block_idx * self.block_rows;
            for (qi, slot) in best.iter_mut().enumerate() {
                let q = queries.row(start + qi);
                match metric {
                    Metric::SquaredEuclidean => {
                        for (j, row) in block.rows_iter().enumerate() {
                            let d = Matrix::row_sq_dist(q, row);
                            if d < slot.distance {
                                *slot = NearestHit { distance: d, index: offset + base + j };
                            }
                        }
                    }
                    Metric::Euclidean => {
                        for (j, row) in block.rows_iter().enumerate() {
                            let d = Matrix::row_sq_dist(q, row).sqrt();
                            if d < slot.distance {
                                *slot = NearestHit { distance: d, index: offset + base + j };
                            }
                        }
                    }
                    Metric::Cosine => {
                        // Branch structure and arithmetic mirror
                        // `Metric::distance` exactly, with both norms read
                        // from the precomputed scratch.
                        let na = query_norms.expect("checked above")[start + qi];
                        for (j, row) in block.rows_iter().enumerate() {
                            let nb = train_norms.expect("checked above")[base + j];
                            let d = if na == 0.0 && nb == 0.0 {
                                0.0
                            } else if na == 0.0 || nb == 0.0 {
                                2.0
                            } else {
                                1.0 - (Matrix::row_dot(q, row) / (na * nb)).clamp(-1.0, 1.0)
                            };
                            if d < slot.distance {
                                *slot = NearestHit { distance: d, index: offset + base + j };
                            }
                        }
                    }
                }
            }
        }
    }

    /// Nearest training row for every query, from a cold start. Cosine norms
    /// are computed internally (one allocation per call, none per query).
    pub fn nearest(
        &self,
        train: DatasetView<'_>,
        queries: DatasetView<'_>,
        metric: Metric,
    ) -> Vec<NearestHit> {
        let mut best = vec![NearestHit::NONE; queries.rows()];
        let (qn, tn) = if metric == Metric::Cosine {
            let mut qn = Vec::new();
            let mut tn = Vec::new();
            row_norms_into(queries, &mut qn);
            row_norms_into(train, &mut tn);
            (Some(qn), Some(tn))
        } else {
            (None, None)
        };
        self.update_nearest(queries, metric, qn.as_deref(), train, tn.as_deref(), 0, &mut best);
        best
    }
}

/// Reference implementation: the plain serial double loop, written with
/// [`Metric::distance`] and no blocking. The engine must match it bit for
/// bit; tests and the bench harness compare against it.
pub fn nearest_reference(
    train: DatasetView<'_>,
    queries: DatasetView<'_>,
    metric: Metric,
) -> Vec<NearestHit> {
    let mut best = vec![NearestHit::NONE; queries.rows()];
    for (slot, q) in best.iter_mut().zip(queries.rows_iter()) {
        for (j, row) in train.rows_iter().enumerate() {
            let d = metric.distance(q, row);
            if d < slot.distance {
                *slot = NearestHit { distance: d, index: j };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy(n: usize, d: usize, phase: f32) -> Matrix {
        Matrix::from_fn(n, d, |r, c| ((r * d + c) as f32 * 0.37 + phase).sin() * 3.0)
    }

    #[test]
    fn engine_matches_reference_for_all_metrics() {
        let train = wavy(137, 9, 0.0);
        let queries = wavy(41, 9, 1.3);
        for metric in Metric::all() {
            let reference = nearest_reference(train.view(), queries.view(), metric);
            for engine in [
                EvalEngine::serial(),
                EvalEngine::parallel(),
                EvalEngine::with_threads(3).with_block_rows(16),
            ] {
                let got = engine.nearest(train.view(), queries.view(), metric);
                assert_eq!(got, reference, "metric {} engine {engine:?}", metric.name());
            }
        }
    }

    #[test]
    fn streaming_updates_accumulate_to_the_full_answer() {
        let train = wavy(100, 5, 0.0);
        let queries = wavy(23, 5, 2.1);
        let engine = EvalEngine::with_threads(2).with_block_rows(8);
        let metric = Metric::SquaredEuclidean;
        let mut best = vec![NearestHit::NONE; queries.rows()];
        let mut consumed = 0;
        for batch in train.view().batches(33) {
            engine.update_nearest(queries.view(), metric, None, batch, None, consumed, &mut best);
            consumed += batch.rows();
        }
        assert_eq!(best, nearest_reference(train.view(), queries.view(), metric));
    }

    #[test]
    fn empty_inputs_are_no_ops() {
        let train = wavy(10, 4, 0.0);
        let empty = Matrix::zeros(0, 4);
        let mut best: Vec<NearestHit> = vec![];
        EvalEngine::parallel().update_nearest(
            empty.view(),
            Metric::SquaredEuclidean,
            None,
            train.view(),
            None,
            0,
            &mut best,
        );
        let hits = EvalEngine::parallel().nearest(empty.view(), wavy(3, 4, 0.5).view(), Metric::Euclidean);
        assert!(hits.iter().all(|h| *h == NearestHit::NONE));
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let train = wavy(4, 3, 0.0);
        let queries = wavy(4, 5, 0.0);
        let mut best = vec![NearestHit::NONE; 4];
        EvalEngine::serial().update_nearest(
            queries.view(),
            Metric::SquaredEuclidean,
            None,
            train.view(),
            None,
            0,
            &mut best,
        );
    }
}
