//! Shared floating-point-safe triangle-inequality prune arithmetic.
//!
//! Both exact pruned indexes — the fully-resident [`crate::clustered::ClusteredIndex`]
//! and the shard-paged [`crate::sharded::ShardedIndex`] — compare `f64`
//! Euclidean lower bounds against the `f32` distances the tile kernel
//! admits. The inflation/deflation terms that make that comparison sound
//! (relative slack for the f64 geometry, an absolute kernel-error margin for
//! the norm-trick cancellation, the subnormal guard, the Euclidean `τ²`
//! inflation) are derived once in the [`crate::clustered`] module docs; this
//! module is their single implementation so the two indexes can never drift
//! apart on the exactness-critical arithmetic.

use crate::metric::Metric;

/// `‖a − b‖₂` accumulated in `f64` — the bound-side geometry is computed at
/// double precision so only the `f32` kernel side needs slack.
pub(crate) fn euclid_f64(a: &[f32], b: &[f32]) -> f64 {
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = x as f64 - y as f64;
        acc += d * d;
    }
    acc.sqrt()
}

/// `‖a‖₂` accumulated in `f64` (feeds the kernel-error term of the bounds).
pub(crate) fn norm_f64(a: &[f32]) -> f64 {
    a.iter().map(|&x| x as f64 * x as f64).sum::<f64>().sqrt()
}

/// The per-index prune-comparison constants: metric, dimension-derived
/// slack and kernel-error coefficients, the subnormal guard, and the global
/// largest member norm. Built once per index; every prune decision routes
/// through it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PruneBounds {
    metric: Metric,
    /// Largest member norm `max_x ‖x‖` in `f64` — global (not per cluster or
    /// shard) so the bound-ordered scan's early exit stays monotone in the
    /// lower bound.
    max_norm: f64,
    /// Kernel-error coefficient `2(d + 16)·ε_f32`: multiplied by
    /// `(‖q‖ + max_norm)²` it upper-bounds how far below the true squared
    /// distance the norm-trick `f32` kernel can land.
    err_coeff: f64,
    /// Relative bound deflation `1 − (2d + 32)·ε_f32`, covering the `f64`
    /// geometry side.
    slack: f64,
    /// Absolute prune guard covering f32 subnormal underflow, in squared
    /// space: the smallest normal f32. In particular `τ = 0` (a perfect hit
    /// already admitted) disables pruning entirely, preserving the
    /// zero-distance tie-break.
    abs_guard: f64,
}

impl PruneBounds {
    /// Constants for a `dim`-dimensional index whose largest member norm is
    /// `max_norm`.
    pub fn new(metric: Metric, dim: usize, max_norm: f64) -> Self {
        let d = dim as f64;
        PruneBounds {
            metric,
            max_norm,
            err_coeff: 2.0 * (d + 16.0) * f32::EPSILON as f64,
            slack: 1.0 - (2.0 * d + 32.0) * f32::EPSILON as f64,
            abs_guard: f32::MIN_POSITIVE as f64,
        }
    }

    /// The current stored threshold mapped into squared-distance space with
    /// the safety inflation of the [`crate::clustered`] module docs: the
    /// stored distance itself for squared-Euclidean consumers,
    /// `τ²·(1 + 8ε)` for Euclidean ones (covering the square root's
    /// rounding). `∞` (state not yet full) maps to `∞` and never prunes.
    #[inline]
    pub fn tau_sq(&self, tau: f32) -> f64 {
        let t = tau as f64;
        match self.metric {
            Metric::SquaredEuclidean => t,
            _ => t * t * (1.0 + 8.0 * f32::EPSILON as f64),
        }
    }

    /// The per-query kernel-error margin: how far below the true squared
    /// distance the norm-trick `f32` kernel can land for any indexed row
    /// (`qn` is the query's `f64` Euclidean norm).
    #[inline]
    pub fn kernel_err(&self, qn: f64) -> f64 {
        let s = qn + self.max_norm;
        self.err_coeff * s * s
    }

    /// Whether a Euclidean-space lower bound `lb` proves that no candidate
    /// can be admitted against the squared threshold `tau_sq`: the squared,
    /// slack-deflated bound must clear it by the kernel-error margin `err`
    /// plus the absolute subnormal guard. Monotone in `lb` for a fixed
    /// query, which is what lets a bound-ordered scan stop at the first
    /// pruned cluster.
    #[inline]
    pub fn prunes(&self, lb: f64, tau_sq: f64, err: f64) -> bool {
        lb * lb * self.slack - err > tau_sq + self.abs_guard
    }

    /// The [`PruneBounds::prunes`] inequality solved for the bound: a
    /// non-negative Euclidean lower bound prunes iff it strictly exceeds
    /// `√((τ² + guard + err) / slack)`. The quantized scans cache this per
    /// τ value so the per-row test `â − margin > (T + r_i)²` needs no
    /// square root (`τ = ∞`, state not yet full, maps to `∞` and never
    /// prunes).
    #[inline]
    pub fn prune_threshold(&self, tau: f32, err: f64) -> f64 {
        ((self.tau_sq(tau) + self.abs_guard + err) / self.slack).sqrt()
    }
}
