//! Per-dimension affine int8 quantization: the shadow copy behind the
//! clustered index's two-phase (approximate-then-exact) scan.
//!
//! A [`QuantizedShadow`] stores every indexed row `x` as int8 codes `X`
//! under a per-dimension affine map `x ≈ s ∘ X + o` (scale `s_j ≥ 0`,
//! offset `o_j`, codes in `[−127, 127]`). Phase 1 of a scan evaluates an
//! *approximate* squared Euclidean distance from one byte per dimension;
//! phase 2 re-ranks the rows that survive a provably-safe widened prune
//! bound through the exact f32 kernel. The derivation of that bound — why
//! the approximation plus a per-row reconstruction radius can never prune a
//! true neighbour — lives in the [`crate::clustered`] module docs; this
//! module owns the encoding, the per-row error book-keeping, and the
//! overflow guards that keep the error model sound on extreme inputs.
//!
//! ## Encoding
//!
//! [`AffineQuantizer::fit`] picks, per dimension, the range midpoint as the
//! offset and `(max − min) / 254` as the scale, so the observed range maps
//! onto the symmetric code interval `[−127, 127]`. Constant columns get
//! scale `0` and code `0` — the offset carries the column exactly, so such
//! a dimension contributes *zero* reconstruction error. Codes are computed
//! in f64 (`round((x − o) / s)`, clamped), so encoding is deterministic and
//! clamping handles rows outside the fitted range (the incremental append
//! path quantizes new rows against a frozen affine).
//!
//! ## The integer inner loop
//!
//! The query is *not* stored quantized, but its scaled residual
//! `w = fl32((q − o) ∘ s)` is re-quantized per query onto a **single**
//! query-level scale `g`: `v_j = round(w_j / g)` with `|v_j| ≤ 8191`
//! (`g = max_j |w_j| / 8191`). Phase 1 then evaluates the exact integer dot
//! `Σ v_j · X_j` (`i16 × i8 → i32`, [`snoopy_linalg::kernel::dot_q8`]) —
//! integer arithmetic is associative, so the reduction autovectorizes to
//! widening multiply-adds on baseline targets while staying bit-exact by
//! construction — and the approximate squared distance is finished in f64
//! from exact inputs: `â_i = (nu + ‖y_i‖²) − 2g · Σ v_j X_{ij}`.
//!
//! The query-quantization step is *not* folded into the floating-point
//! margin; it gets its own exact per-row term. With
//! `|w_j − g·v_j| ≤ 0.51·g` (half a step plus division rounding, with the
//! clamp at ±8191 absorbed by the same slack) the dot-term error obeys
//! `|2 Σ (w_j − g v_j) X_{ij}| ≤ 1.02·g · Σ_j |X_{ij}|`, so the shadow
//! stores `code_abs[i] = Σ_j |X_{ij}|` (an exact small integer in f32) and
//! the scan widens each row's bound by `qslack · code_abs[i]`,
//! `qslack = 1.02·g`.
//!
//! ## What makes the bound checkable
//!
//! The scan-side reconstruction point of row `i` is *defined* as
//! `x̂_j = fl32(s_j · X_j) + o_j`. Per row the shadow stores:
//!
//! * `code_norms[i] = ‖y_i‖²` in the kernel's fixed lane order, where
//!   `y_j = fl32(s_j · X_j)` — the norm-trick term of the approximate
//!   distance,
//! * `code_abs[i] = Σ_j |X_{ij}|` — the query-quantization error weight
//!   above,
//! * `recon_err[i] ≥ ‖x_i − x̂_i‖`, computed exactly in f64 at encode time
//!   and inflated by one part in 10⁶ before the f32 store so the stored
//!   value never rounds below the true radius (clamped rows far outside
//!   the fitted range simply get a large radius — wide bounds, never wrong
//!   ones),
//! * `max_code_norm = max_i ‖y_i‖` in f64 — the `‖x‖` stand-in of the
//!   kernel-error margin.
//!
//! The floating-point margin `2(d + 32)·ε_f32·(‖u‖ + M)²` then only has to
//! cover the f32 roundings of `u = fl(q − o)`, `w = fl(u ∘ s)`, and the two
//! fixed-order norm accumulations (`nu`, `‖y‖²`) — each an `O(d·ε)`
//! absolute term bounded by the span — plus the handful of f64 finishing
//! operations (negligible at `ε_f64`). The integer dot itself contributes
//! zero.
//!
//! ## Overflow guards
//!
//! The margin is *absolute*, which silently requires that no f32
//! intermediate overflows. Every float intermediate is bounded by
//! `2(‖u‖ + M)²` (partial norm sums via Cauchy–Schwarz, per-element
//! products because some row attains each dimension's extreme code), so
//! capping both norms at [`MAX_SAFE_NORM`] `= 10¹⁸` keeps everything below
//! `~10³⁷`, comfortably inside f32 range. The integer accumulator has its
//! own budget: `|v| ≤ 8191`, `|X| ≤ 127` keep the i32 sum exact up to 2064
//! dimensions, enforced as [`MAX_QUANTIZED_DIMS`] `= 2000` at build time.
//! [`QuantizedShadow::build`] returns `None` when the data side violates
//! either cap (the index then scans exactly, as if unquantized) and
//! [`QuantizedShadow::prepare_query`] returns `None` when the query side
//! does (that one query scans exactly). Exactness never depends on the
//! shadow — it only skips work.

use snoopy_linalg::kernel as simd;
use snoopy_linalg::DatasetView;

/// Largest Euclidean norm (query side `‖u‖` or data side `max ‖y‖`) the
/// quantized bound accepts: beyond it the approximate-distance intermediates
/// could overflow f32 and the absolute error model would break, so the scan
/// falls back to the exact path. See the [module docs](self).
pub const MAX_SAFE_NORM: f64 = 1e18;

/// Largest dimensionality the shadow quantizes: `8191 · 127 · 2064 < 2³¹`
/// keeps the phase-1 integer dot exact in i32, with 2000 as the enforced
/// (round) cap. Wider data simply stays on the exact scan.
pub const MAX_QUANTIZED_DIMS: usize = 2000;

/// Largest magnitude of a quantized query code `v_j` (13 bits + sign).
const QCODE_MAX: f64 = 8191.0;

/// Rounds a non-negative f64 radius **up** into f32: the `1e-6` relative
/// inflation dominates both the f64 accumulation error and the f64→f32
/// rounding (each below `10⁻⁷` relative), so the stored radius is always
/// `≥` the true one. Overflow to `+∞` is safe — an infinite radius never
/// prunes.
fn inflate_radius(r: f64) -> f32 {
    (r * (1.0 + 1e-6)) as f32
}

/// The per-dimension affine map `x ≈ scales ∘ codes + offsets` shared by
/// every row of one quantized shadow. Fit once per partition; the
/// incremental append path encodes new batches against a *frozen* quantizer
/// and re-fits only when the partition itself is rebuilt.
#[derive(Debug, Clone, PartialEq)]
pub struct AffineQuantizer {
    /// Per-dimension scale `s_j = (max_j − min_j) / 254` (`0` for constant
    /// or never-observed columns).
    scales: Vec<f32>,
    /// Per-dimension offset `o_j`: the midpoint of the observed range.
    offsets: Vec<f32>,
}

impl AffineQuantizer {
    /// Fits the per-dimension range map over `rows`. Min/max run in f64 so
    /// midpoints and ranges of extreme f32 values cannot overflow; NaN
    /// entries are ignored (and encode to code `0`).
    pub fn fit(rows: DatasetView<'_>) -> Self {
        let d = rows.cols();
        let mut lo = vec![f64::INFINITY; d];
        let mut hi = vec![f64::NEG_INFINITY; d];
        for row in rows.rows_iter() {
            for (j, &x) in row.iter().enumerate() {
                let x = x as f64;
                if x < lo[j] {
                    lo[j] = x;
                }
                if x > hi[j] {
                    hi[j] = x;
                }
            }
        }
        let mut scales = Vec::with_capacity(d);
        let mut offsets = Vec::with_capacity(d);
        for j in 0..d {
            if hi[j] >= lo[j] {
                offsets.push(((lo[j] + hi[j]) * 0.5) as f32);
                scales.push(((hi[j] - lo[j]) / 254.0) as f32);
            } else {
                offsets.push(0.0);
                scales.push(0.0);
            }
        }
        Self { scales, offsets }
    }

    /// Dimensionality the quantizer was fitted for.
    pub fn cols(&self) -> usize {
        self.scales.len()
    }

    /// Heap bytes held by the affine parameters.
    pub fn param_bytes(&self) -> usize {
        (self.scales.len() + self.offsets.len()) * size_of::<f32>()
    }
}

/// One query's precomputed quantized-scan context (the i16 query codes live
/// in the caller's scratch buffer).
#[derive(Debug, Clone, Copy)]
pub struct QuantizedQuery {
    /// `‖u‖²` in the kernel's fixed lane order, `u = fl32(q − o)`.
    pub nu: f32,
    /// The float-rounding margin of the approximate squared distance:
    /// `2(d + 32)·ε_f32·(‖u‖ + max_code_norm)²` in f64.
    pub margin: f64,
    /// `2g`: the dot-term factor of the f64 finishing expression.
    pub g2: f64,
    /// `1.02·g`: multiply by a row's `code_abs` for the exact
    /// query-quantization slack of that row's bound.
    pub qslack: f64,
}

/// The int8 shadow of one cluster-contiguous row buffer: codes plus the
/// per-row book-keeping that makes the approximate distance a checkable
/// lower-bound source. Built by [`QuantizedShadow::build`]; consumed by the
/// clustered index's quantized scan.
#[derive(Debug, Clone)]
pub struct QuantizedShadow {
    quantizer: AffineQuantizer,
    /// Row-major int8 codes, same row order as the f32 buffer shadowed.
    codes: Vec<i8>,
    cols: usize,
    /// Per row: `‖y_i‖²` (f32, fixed lane order), `y = fl32(s ∘ X)`.
    code_norms: Vec<f32>,
    /// Per row: `Σ_j |X_{ij}|` — an exact integer `≤ 127·d < 2²⁴`, stored
    /// f32 for the one multiply it feeds per row.
    code_abs: Vec<f32>,
    /// Per row: an upper bound on `‖x_i − x̂_i‖` (f32, rounded up).
    recon_err: Vec<f32>,
    /// `max_i ‖y_i‖` in f64 — the data-side factor of the margin.
    max_code_norm: f64,
    /// `2(d + 32)·ε_f32` — the margin coefficient (see the [module
    /// docs](self) for the inventory it covers).
    margin_coeff: f64,
}

impl QuantizedShadow {
    /// Encodes every row of `data` under `quantizer`. Returns `None` when
    /// the data violates an overflow guard (`max ‖y‖ >` [`MAX_SAFE_NORM`],
    /// a non-finite code norm, or more than [`MAX_QUANTIZED_DIMS`]
    /// dimensions) — callers then simply scan exactly.
    ///
    /// # Panics
    /// Panics if `quantizer` was fitted for a different dimensionality.
    pub fn build(data: DatasetView<'_>, quantizer: AffineQuantizer) -> Option<Self> {
        assert_eq!(quantizer.cols(), data.cols(), "quantizer/data dimensionality mismatch");
        let (rows, cols) = (data.rows(), data.cols());
        if cols > MAX_QUANTIZED_DIMS {
            return None;
        }
        let mut codes = vec![0i8; rows * cols];
        let mut code_norms = Vec::with_capacity(rows);
        let mut code_abs = Vec::with_capacity(rows);
        let mut recon_err = Vec::with_capacity(rows);
        let mut max_code_norm = 0.0f64;
        let mut y = vec![0.0f32; cols];
        for (i, row) in data.rows_iter().enumerate() {
            let out = &mut codes[i * cols..(i + 1) * cols];
            let mut r2 = 0.0f64;
            let mut n2 = 0.0f64;
            let mut abs = 0i32;
            for j in 0..cols {
                let (s, o) = (quantizer.scales[j], quantizer.offsets[j]);
                let c = if s > 0.0 {
                    ((row[j] as f64 - o as f64) / s as f64).round().clamp(-127.0, 127.0) as i8
                } else {
                    0
                };
                out[j] = c;
                abs += (c as i32).abs();
                let yj = s * c as f32;
                y[j] = yj;
                let e = row[j] as f64 - (yj as f64 + o as f64);
                r2 += e * e;
                n2 += yj as f64 * yj as f64;
            }
            code_norms.push(simd::norm_sq(&y));
            code_abs.push(abs as f32);
            recon_err.push(inflate_radius(r2.sqrt()));
            max_code_norm = max_code_norm.max(n2.sqrt());
        }
        let sane = max_code_norm <= MAX_SAFE_NORM && code_norms.iter().all(|v| v.is_finite());
        sane.then(|| {
            let d = cols as f64;
            Self {
                quantizer,
                codes,
                cols,
                code_norms,
                code_abs,
                recon_err,
                max_code_norm,
                margin_coeff: 2.0 * (d + 32.0) * f32::EPSILON as f64,
            }
        })
    }

    /// Number of encoded rows.
    pub fn rows(&self) -> usize {
        self.code_norms.len()
    }

    /// Drops every row whose `keep` flag is false, compacting the int8 scan
    /// copy and the per-row bound metadata in place — the shadow half of
    /// [`crate::ClusteredIndex::evict_rows`]. `max_code_norm` (a global upper
    /// bound baked into every query margin) is kept as-is: it stays a valid
    /// bound for the surviving subset, so correctness is unaffected and only
    /// a sliver of pruning power is ceded until the next re-partition
    /// re-encodes the window. [`QuantizedShadow::code_bytes`] /
    /// [`QuantizedShadow::meta_bytes`] shrink accordingly.
    ///
    /// # Panics
    /// Panics if `keep.len()` differs from [`QuantizedShadow::rows`].
    pub fn retain_rows(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.rows(), "keep mask must cover every encoded row");
        let cols = self.cols;
        let mut kept = 0usize;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                if kept != i {
                    self.codes.copy_within(i * cols..(i + 1) * cols, kept * cols);
                    self.code_norms[kept] = self.code_norms[i];
                    self.code_abs[kept] = self.code_abs[i];
                    self.recon_err[kept] = self.recon_err[i];
                }
                kept += 1;
            }
        }
        self.codes.truncate(kept * cols);
        self.code_norms.truncate(kept);
        self.code_abs.truncate(kept);
        self.recon_err.truncate(kept);
    }

    /// The stored reconstruction radius of row `i` (an upper bound on
    /// `‖x_i − x̂_i‖`).
    #[inline]
    pub fn recon_err(&self, i: usize) -> f32 {
        self.recon_err[i]
    }

    /// `‖y_i‖²` of row `i` — the norm-trick term of its approximate
    /// distance.
    #[inline]
    pub fn code_norm(&self, i: usize) -> f32 {
        self.code_norms[i]
    }

    /// `Σ_j |X_{ij}|` of row `i` — the weight of the query-quantization
    /// slack in its bound.
    #[inline]
    pub fn code_abs(&self, i: usize) -> f32 {
        self.code_abs[i]
    }

    /// Bytes of the int8 scan copy itself — what phase 1 streams per row.
    pub fn code_bytes(&self) -> usize {
        self.codes.len() * size_of::<i8>()
    }

    /// Bytes of the per-row bound book-keeping (code norms, code abs sums,
    /// reconstruction radii) plus the affine parameters.
    pub fn meta_bytes(&self) -> usize {
        self.code_norms.len() * size_of::<f32>()
            + self.code_abs.len() * size_of::<f32>()
            + self.recon_err.len() * size_of::<f32>()
            + self.quantizer.param_bytes()
    }

    /// Per-query preamble: forms `u = fl32(q − o)` then `w = fl32(u ∘ s)`
    /// in `w` (one buffer — `u` is overwritten once its norms are taken),
    /// quantizes `w` onto the single query scale `g` as i16 codes in `v`,
    /// and returns the query context. `None` when `‖u‖ >` [`MAX_SAFE_NORM`]
    /// (or is NaN) and the quantized bound must not be trusted for this
    /// query.
    pub fn prepare_query(&self, q: &[f32], w: &mut Vec<f32>, v: &mut Vec<i16>) -> Option<QuantizedQuery> {
        w.clear();
        w.extend(q.iter().zip(&self.quantizer.offsets).map(|(&x, &o)| x - o));
        let nu = simd::norm_sq(w);
        let un = w.iter().map(|&u| u as f64 * u as f64).sum::<f64>().sqrt();
        #[allow(clippy::neg_cmp_op_on_partial_ord)] // a NaN norm must also refuse the shadow
        if !(un <= MAX_SAFE_NORM) {
            return None;
        }
        let mut wmax = 0.0f32;
        for (wj, &s) in w.iter_mut().zip(&self.quantizer.scales) {
            *wj *= s;
            wmax = wmax.max(wj.abs());
        }
        // `w` is finite here (`|u_j| ≤ 10¹⁸`, `s_j·127 ≤ max ‖y‖ ≤ 10¹⁸`),
        // so `g > 0` always admits `|w_j / g| ≤ 8191(1 + 2ε)` — the clamp
        // only shaves division rounding, which the 1.02 slack coefficient
        // absorbs. The `max` with the smallest normal keeps a subnormal
        // `wmax` from collapsing `g` to zero while `w` is still nonzero.
        let g = (wmax / QCODE_MAX as f32).max(f32::MIN_POSITIVE) as f64;
        v.clear();
        v.extend(w.iter().map(|&wj| (wj as f64 / g).round().clamp(-QCODE_MAX, QCODE_MAX) as i16));
        let span = un + self.max_code_norm;
        Some(QuantizedQuery { nu, margin: self.margin_coeff * span * span, g2: 2.0 * g, qslack: 1.02 * g })
    }

    /// Phase-1 tile: fills `out[j]` with the exact integer dot
    /// `Σ v · X_{t0+j}` for code rows `t0..t0 + out.len()` — one byte per
    /// dimension of row traffic. The caller finishes each row's approximate
    /// squared distance in f64 as `(nu + code_norm) − g2 · dot`.
    #[inline]
    pub fn approx_dot_tile(&self, v: &[i16], t0: usize, out: &mut [i32]) {
        simd::dot_q8_row_tile(v, &self.codes, self.cols, t0, out);
    }

    /// The widened-bound test over one dot tile: `keep[j] = false` iff code
    /// row `t0 + j` provably cannot be admitted against the (already
    /// slack-deflated) Euclidean prune threshold — i.e.
    /// `â − margin − qslack·A > (threshold + r)²`. Straight-line f64
    /// arithmetic over parallel slices so the compiler can vectorize it;
    /// `threshold = ∞` (top-k not yet full) keeps every row.
    #[inline]
    pub fn classify_tile(
        &self,
        qq: &QuantizedQuery,
        threshold: f64,
        t0: usize,
        dots: &[i32],
        keep: &mut [bool],
    ) {
        let n = dots.len();
        let cn = &self.code_norms[t0..t0 + n];
        let ab = &self.code_abs[t0..t0 + n];
        let re = &self.recon_err[t0..t0 + n];
        for j in 0..n {
            let a = (qq.nu as f64 + cn[j] as f64) - qq.g2 * dots[j] as f64;
            let lhs = a.max(0.0) - qq.margin - qq.qslack * ab[j] as f64;
            let t = threshold + re[j] as f64;
            // Negated so a NaN on either side keeps the row (prune only on
            // a provable strict exceedance).
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            {
                keep[j] = !(lhs > t * t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_linalg::Matrix;

    fn wavy(n: usize, d: usize, phase: f32) -> Matrix {
        Matrix::from_fn(n, d, |r, c| ((r * d + c) as f32 * 0.37 + phase).sin() * 3.0)
    }

    #[test]
    fn fit_maps_range_onto_symmetric_codes_and_reconstructs_within_half_step() {
        let data = wavy(40, 7, 0.2);
        let q = AffineQuantizer::fit(data.view());
        let sh = QuantizedShadow::build(data.view(), q.clone()).expect("sane data quantizes");
        assert_eq!(sh.rows(), 40);
        for (i, row) in data.view().rows_iter().enumerate() {
            #[allow(clippy::needless_range_loop)] // j indexes codes, scales, offsets, and row alike
            for j in 0..7 {
                let code = sh.codes[i * 7 + j] as f32;
                assert!((-127.0..=127.0).contains(&code));
                let xhat = (q.scales[j] * code) as f64 + q.offsets[j] as f64;
                // Half a quantization step plus rounding headroom.
                let half_step = q.scales[j] as f64 * 0.51 + 1e-6;
                assert!((row[j] as f64 - xhat).abs() <= half_step, "row {i} dim {j}");
            }
            // The stored radius bounds the true f64 reconstruction distance.
            let r2: f64 = (0..7)
                .map(|j| {
                    let xhat = (q.scales[j] * sh.codes[i * 7 + j] as f32) as f64 + q.offsets[j] as f64;
                    (row[j] as f64 - xhat).powi(2)
                })
                .sum();
            assert!(sh.recon_err(i) as f64 >= r2.sqrt(), "row {i}");
        }
    }

    #[test]
    fn constant_columns_get_zero_scale_and_zero_error() {
        let data = Matrix::from_fn(10, 3, |r, c| if c == 1 { 4.25 } else { r as f32 * 0.3 });
        let q = AffineQuantizer::fit(data.view());
        assert_eq!(q.scales[1], 0.0);
        assert_eq!(q.offsets[1], 4.25);
        let sh = QuantizedShadow::build(data.view(), q).expect("sane");
        // A constant column adds nothing to any reconstruction radius.
        let lone = Matrix::from_fn(10, 1, |_, _| 4.25);
        let sh1 = QuantizedShadow::build(lone.view(), AffineQuantizer::fit(lone.view())).expect("sane");
        for i in 0..10 {
            assert_eq!(sh1.recon_err(i), 0.0, "constant column reconstructs exactly");
            assert!(sh.codes[i * 3 + 1] == 0);
        }
    }

    #[test]
    fn approx_distance_matches_reference_within_margin_and_qslack() {
        let data = wavy(33, 16, 0.0);
        let queries = wavy(5, 16, 1.3);
        let sh = QuantizedShadow::build(data.view(), AffineQuantizer::fit(data.view())).expect("sane");
        let (mut w, mut v) = (Vec::new(), Vec::new());
        for qi in 0..queries.rows() {
            let qq = sh.prepare_query(queries.row(qi), &mut w, &mut v).expect("sane query");
            let mut dots = vec![0i32; 33];
            sh.approx_dot_tile(&v, 0, &mut dots);
            for (i, _) in data.view().rows_iter().enumerate() {
                // True squared distance to the reconstruction point in f64.
                let true_sq: f64 = (0..16)
                    .map(|j| {
                        let xhat = (sh.quantizer.scales[j] * sh.codes[i * 16 + j] as f32) as f64
                            + sh.quantizer.offsets[j] as f64;
                        (queries.row(qi)[j] as f64 - xhat).powi(2)
                    })
                    .sum();
                let approx = (qq.nu as f64 + sh.code_norm(i) as f64) - qq.g2 * dots[i] as f64;
                let slack = qq.margin + qq.qslack * sh.code_abs(i) as f64;
                assert!(
                    (approx - true_sq).abs() <= slack,
                    "q {qi} row {i}: |{approx} - {true_sq}| > {slack}"
                );
            }
        }
    }

    #[test]
    fn overflow_guards_reject_extreme_data_queries_and_wide_dims() {
        // Data whose code norms would exceed the safe cap: build must bail.
        let huge = Matrix::from_fn(4, 8, |r, c| if (r + c) % 2 == 0 { 3.0e37 } else { -3.0e37 });
        assert!(QuantizedShadow::build(huge.view(), AffineQuantizer::fit(huge.view())).is_none());
        // Sane data, extreme query: prepare_query must bail for that query.
        let data = wavy(12, 8, 0.0);
        let sh = QuantizedShadow::build(data.view(), AffineQuantizer::fit(data.view())).expect("sane");
        let (mut w, mut v) = (Vec::new(), Vec::new());
        let extreme = vec![3.0e37f32; 8];
        assert!(sh.prepare_query(&extreme, &mut w, &mut v).is_none());
        let fine = vec![0.5f32; 8];
        assert!(sh.prepare_query(&fine, &mut w, &mut v).is_some());
        // Past the i32 accumulator budget: build must bail on width alone.
        let wide = Matrix::from_fn(2, MAX_QUANTIZED_DIMS + 1, |r, c| (r + c) as f32);
        assert!(QuantizedShadow::build(wide.view(), AffineQuantizer::fit(wide.view())).is_none());
    }

    #[test]
    fn query_codes_stay_inside_the_i16_budget() {
        let data = wavy(20, 9, 0.4);
        let sh = QuantizedShadow::build(data.view(), AffineQuantizer::fit(data.view())).expect("sane");
        let (mut w, mut v) = (Vec::new(), Vec::new());
        for scale in [1.0e-30f32, 1.0, 1.0e12] {
            let q: Vec<f32> = (0..9).map(|j| (j as f32 - 4.0) * scale).collect();
            sh.prepare_query(&q, &mut w, &mut v).expect("sane query");
            assert!(v.iter().all(|&c| (c as f64).abs() <= QCODE_MAX), "scale {scale}: {v:?}");
            // The chosen g must reconstruct w within the documented slack.
            let g = {
                let qq = sh.prepare_query(&q, &mut w, &mut v).unwrap();
                qq.g2 * 0.5
            };
            for (&wj, &vj) in w.iter().zip(&v) {
                assert!((wj as f64 - g * vj as f64).abs() <= 0.51 * g, "scale {scale}");
            }
        }
        // All-zero w (query at the offsets): codes all zero, zero slack term.
        let at_offsets: Vec<f32> = sh.quantizer.offsets.clone();
        sh.prepare_query(&at_offsets, &mut w, &mut v).expect("sane query");
        assert!(v.iter().all(|&c| c == 0));
    }

    #[test]
    fn duplicate_rows_share_codes_and_radii() {
        let mut rows = vec![vec![1.5f32, -2.0, 0.25]; 6];
        rows.push(vec![3.0, 1.0, -1.0]);
        let data = Matrix::from_rows(&rows);
        let sh = QuantizedShadow::build(data.view(), AffineQuantizer::fit(data.view())).expect("sane");
        for i in 1..6 {
            assert_eq!(sh.codes[i * 3..(i + 1) * 3], sh.codes[..3]);
            assert_eq!(sh.recon_err(i).to_bits(), sh.recon_err(0).to_bits());
            assert_eq!(sh.code_norms[i].to_bits(), sh.code_norms[0].to_bits());
            assert_eq!(sh.code_abs(i).to_bits(), sh.code_abs(0).to_bits());
        }
    }

    #[test]
    fn subnormal_data_quantizes_without_panicking_and_bounds_stay_valid() {
        let data = Matrix::from_rows(&[vec![2.2e-23f32, 0.0], vec![-1.8e-23, 0.0], vec![1.0e-40, 0.0]]);
        let q = AffineQuantizer::fit(data.view());
        let sh = QuantizedShadow::build(data.view(), q).expect("subnormals are sane");
        for i in 0..3 {
            assert!(sh.recon_err(i).is_finite());
        }
    }
}
