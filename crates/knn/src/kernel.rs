//! The metric-kernel layer: the *single* place metric expressions live, and
//! the tile-blocked compute path every distance consumer routes through.
//!
//! ## What moved here
//!
//! Before this layer existed, the squared-Euclidean / Euclidean / cosine
//! expressions were copy-pasted between [`Metric::distance`], the engine's
//! two scan loops, and the clustered index, and cosine consumers threaded
//! `Option<&[f32]>` norm slices through every call (with `expect` panics
//! when a caller forgot). Now:
//!
//! * [`MetricKernel`] owns the per-row norm caches of both sides of a scan
//!   (query rows and training rows) and is the only code that knows what a
//!   metric's distance expression looks like. Binding a side computes its
//!   cache; no metric can ever observe a missing norm.
//! * The hot path is [`MetricKernel::tile_with`]: one query against a tile
//!   of consecutive training rows. Dot products come from the
//!   register-blocked [`snoopy_linalg::kernel`] microkernel, distances from
//!   the norm trick `‖q − x‖² = ‖q‖² + ‖x‖² − 2⟨q, x⟩` (clamped at zero)
//!   with both norms read from the caches — two flops per element instead
//!   of three, and a vectorisable inner loop instead of a serial `acc`
//!   chain. Cosine consumes the very same dot tile with cached `‖·‖` norms.
//! * [`pair_distance`] is the scalar reference: it computes norms and dot
//!   with the same fixed-order lane kernel, so it is **bit-identical** to
//!   the tiled path on every pair. [`Metric::distance`] delegates here,
//!   which is what keeps the engine's serial references and the tiled scans
//!   exactly equal.
//!
//! ## Determinism contract
//!
//! A distance depends only on the two rows (and the metric) — never on tile
//! size, block size, thread count, batch boundaries, or which consumer
//! computed it. The fixed-order accumulation is the contract's foundation;
//! note that it is a *different* floating-point value than the pre-kernel
//! naive summation, so golden values pinned before this layer were re-pinned
//! against [`pair_distance`].

use crate::metric::Metric;
use snoopy_linalg::kernel as simd;
use snoopy_linalg::DatasetView;

/// Squared Euclidean distance from cached squared norms and a dot product —
/// the norm-trick expression, clamped at zero because cancellation can push
/// the floating-point result slightly negative.
#[inline]
fn squared_from_dot(nq2: f32, nx2: f32, dot: f32) -> f32 {
    ((nq2 + nx2) - 2.0 * dot).max(0.0)
}

/// Cosine dissimilarity from cached Euclidean norms and a dot product. Zero
/// vectors are maximally dissimilar (2) to everything except other zero
/// vectors (0), mirroring the crate's historical convention.
#[inline]
fn cosine_from_dot(nq: f32, nx: f32, dot: f32) -> f32 {
    if nq == 0.0 && nx == 0.0 {
        0.0
    } else if nq == 0.0 || nx == 0.0 {
        2.0
    } else {
        1.0 - (dot / (nq * nx)).clamp(-1.0, 1.0)
    }
}

/// The cached per-row scalar a metric needs: squared norm for the Euclidean
/// family (the norm trick), Euclidean norm for cosine.
#[inline]
fn side_value(metric: Metric, row: &[f32]) -> f32 {
    match metric {
        Metric::SquaredEuclidean | Metric::Euclidean => simd::norm_sq(row),
        Metric::Cosine => simd::norm_sq(row).sqrt(),
    }
}

/// Scalar one-pair reference distance — same lane-ordered dot and norms as
/// the tiled path, hence bit-identical to it. This is the expression
/// [`Metric::distance`] evaluates.
#[inline]
pub fn pair_distance(metric: Metric, a: &[f32], b: &[f32]) -> f32 {
    let dot = simd::dot(a, b);
    match metric {
        Metric::SquaredEuclidean => squared_from_dot(simd::norm_sq(a), simd::norm_sq(b), dot),
        Metric::Euclidean => squared_from_dot(simd::norm_sq(a), simd::norm_sq(b), dot).sqrt(),
        Metric::Cosine => cosine_from_dot(simd::norm_sq(a).sqrt(), simd::norm_sq(b).sqrt(), dot),
    }
}

/// A metric plus the norm caches of the two sides of a distance scan.
///
/// Bind the training side once per dataset/batch ([`MetricKernel::bind_train`])
/// and the query side once per query set ([`MetricKernel::bind_queries`]);
/// every engine fold then asserts the cache lengths against the views it is
/// given, so a stale cache is a loud shape error instead of a silent wrong
/// answer. Long-lived consumers keep their kernel across calls (the
/// incremental top-k state re-binds only the train side per appended batch;
/// GHP's Prim loop mirrors its frontier compaction into the query cache via
/// [`MetricKernel::queries_swap_remove`]).
#[derive(Debug, Clone)]
pub struct MetricKernel {
    metric: Metric,
    /// Per bound query row: `‖q‖²` (Euclidean family) or `‖q‖` (cosine).
    query_cache: Vec<f32>,
    /// Per bound training row: `‖x‖²` (Euclidean family) or `‖x‖` (cosine).
    train_cache: Vec<f32>,
}

impl MetricKernel {
    /// An unbound kernel for `metric` (bind both sides before scanning).
    pub fn new(metric: Metric) -> Self {
        Self { metric, query_cache: Vec::new(), train_cache: Vec::new() }
    }

    /// Convenience: a kernel with both sides bound.
    pub fn bound(metric: Metric, queries: DatasetView<'_>, train: DatasetView<'_>) -> Self {
        let mut k = Self::new(metric);
        k.bind_queries(queries);
        k.bind_train(train);
        k
    }

    /// The metric whose expressions this kernel evaluates.
    #[inline]
    pub fn metric(&self) -> Metric {
        self.metric
    }

    fn fill(metric: Metric, view: DatasetView<'_>, cache: &mut Vec<f32>) {
        cache.clear();
        cache.extend(view.rows_iter().map(|row| side_value(metric, row)));
    }

    /// (Re)binds the query side: computes one cached scalar per query row.
    pub fn bind_queries(&mut self, queries: DatasetView<'_>) {
        Self::fill(self.metric, queries, &mut self.query_cache);
    }

    /// (Re)binds the training side: computes one cached scalar per train row.
    pub fn bind_train(&mut self, train: DatasetView<'_>) {
        Self::fill(self.metric, train, &mut self.train_cache);
    }

    /// Number of query rows currently bound.
    #[inline]
    pub fn queries_bound(&self) -> usize {
        self.query_cache.len()
    }

    /// Number of training rows currently bound.
    #[inline]
    pub fn train_bound(&self) -> usize {
        self.train_cache.len()
    }

    /// Mirrors a swap-remove compaction of the bound query set: the last
    /// query's cached value moves into slot `pos` and the cache shrinks by
    /// one — O(1), used by consumers whose query set shrinks in place (the
    /// MST frontier) instead of re-binding `O(n·d)` every round.
    pub fn queries_swap_remove(&mut self, pos: usize) {
        self.query_cache.swap_remove(pos);
    }

    /// The cached value of bound query `i`.
    #[inline]
    pub fn query_cached(&self, i: usize) -> f32 {
        self.query_cache[i]
    }

    /// Computes the query-side scalar for an unbound query row — the same
    /// function that fills the caches, so mixing cached and on-the-fly
    /// values cannot change any distance bit.
    #[inline]
    pub fn query_value(&self, q: &[f32]) -> f32 {
        side_value(self.metric, q)
    }

    /// Distance tile: fills `out[j]` with the distance between query `q`
    /// (whose cached scalar is `qv`) and bound training row `t0 + j`, for
    /// `j in 0..out.len()`. Dots come from the register-blocked microkernel;
    /// every entry is bit-identical to [`pair_distance`] on the same pair.
    ///
    /// # Panics
    /// Panics if the tile range exceeds the bound train cache or the rows of
    /// `train` (which must be the view the train side was bound to).
    pub fn tile_with(&self, q: &[f32], qv: f32, train: DatasetView<'_>, t0: usize, out: &mut [f32]) {
        simd::dot_row_tile(q, train.data(), train.cols(), t0, out);
        let tc = &self.train_cache[t0..t0 + out.len()];
        match self.metric {
            Metric::SquaredEuclidean => {
                for (o, &tv) in out.iter_mut().zip(tc) {
                    *o = squared_from_dot(qv, tv, *o);
                }
            }
            Metric::Euclidean => {
                for (o, &tv) in out.iter_mut().zip(tc) {
                    *o = squared_from_dot(qv, tv, *o).sqrt();
                }
            }
            Metric::Cosine => {
                for (o, &tv) in out.iter_mut().zip(tc) {
                    *o = cosine_from_dot(qv, tv, *o);
                }
            }
        }
    }

    /// Two-query distance tile through the 2 × 4 register block — the
    /// engine's hot configuration (every loaded row chunk is reused by both
    /// queries). Bit-identical to two [`MetricKernel::tile_with`] calls on
    /// the same pairs.
    ///
    /// # Panics
    /// Panics if the buffers disagree in length or the tile range exceeds
    /// the bound train cache.
    #[allow(clippy::too_many_arguments)] // two queries' full tile context
    pub fn tile2_with(
        &self,
        qa: &[f32],
        qva: f32,
        qb: &[f32],
        qvb: f32,
        train: DatasetView<'_>,
        t0: usize,
        out_a: &mut [f32],
        out_b: &mut [f32],
    ) {
        simd::dot_row_tile2(qa, qb, train.data(), train.cols(), t0, out_a, out_b);
        let tc = &self.train_cache[t0..t0 + out_a.len()];
        match self.metric {
            Metric::SquaredEuclidean => {
                for ((oa, ob), &tv) in out_a.iter_mut().zip(out_b.iter_mut()).zip(tc) {
                    *oa = squared_from_dot(qva, tv, *oa);
                    *ob = squared_from_dot(qvb, tv, *ob);
                }
            }
            Metric::Euclidean => {
                for ((oa, ob), &tv) in out_a.iter_mut().zip(out_b.iter_mut()).zip(tc) {
                    *oa = squared_from_dot(qva, tv, *oa).sqrt();
                    *ob = squared_from_dot(qvb, tv, *ob).sqrt();
                }
            }
            Metric::Cosine => {
                for ((oa, ob), &tv) in out_a.iter_mut().zip(out_b.iter_mut()).zip(tc) {
                    *oa = cosine_from_dot(qva, tv, *oa);
                    *ob = cosine_from_dot(qvb, tv, *ob);
                }
            }
        }
    }

    /// Single-pair path against bound training row `t` (the tile's scalar
    /// sibling — same bits). Used where a consumer must interleave distance
    /// evaluations with per-row control flow (the clustered index's per-row
    /// bound checks).
    #[inline]
    pub fn pair_with(&self, q: &[f32], qv: f32, train: DatasetView<'_>, t: usize) -> f32 {
        let dot = simd::dot(q, train.row(t));
        let tv = self.train_cache[t];
        match self.metric {
            Metric::SquaredEuclidean => squared_from_dot(qv, tv, dot),
            Metric::Euclidean => squared_from_dot(qv, tv, dot).sqrt(),
            Metric::Cosine => cosine_from_dot(qv, tv, dot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snoopy_linalg::Matrix;

    fn wavy(n: usize, d: usize, phase: f32) -> Matrix {
        Matrix::from_fn(n, d, |r, c| ((r * d + c) as f32 * 0.43 + phase).sin() * 2.5)
    }

    #[test]
    fn tile_is_bit_identical_to_pair_distance_for_every_metric_and_ragged_shape() {
        for d in [1usize, 5, 8, 13, 16, 27] {
            let train = wavy(11, d, 0.0);
            let queries = wavy(3, d, 1.2);
            for metric in Metric::all() {
                let kernel = MetricKernel::bound(metric, queries.view(), train.view());
                for qi in 0..queries.rows() {
                    let q = queries.row(qi);
                    let qv = kernel.query_cached(qi);
                    assert_eq!(qv.to_bits(), kernel.query_value(q).to_bits());
                    for t0 in [0usize, 1, 7] {
                        let len = train.rows() - t0;
                        let mut out = vec![0.0f32; len];
                        kernel.tile_with(q, qv, train.view(), t0, &mut out);
                        for (j, &got) in out.iter().enumerate() {
                            let reference = pair_distance(metric, q, train.row(t0 + j));
                            assert_eq!(got.to_bits(), reference.to_bits(), "{} d {d}", metric.name());
                            let single = kernel.pair_with(q, qv, train.view(), t0 + j);
                            assert_eq!(single.to_bits(), reference.to_bits());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pair_distance_identity_symmetry_and_clamp() {
        let m = wavy(2, 19, 0.4);
        for metric in Metric::all() {
            assert_eq!(pair_distance(metric, m.row(0), m.row(0)), 0.0, "{} identity", metric.name());
            assert_eq!(
                pair_distance(metric, m.row(0), m.row(1)).to_bits(),
                pair_distance(metric, m.row(1), m.row(0)).to_bits(),
                "{} symmetry",
                metric.name()
            );
            assert!(pair_distance(metric, m.row(0), m.row(1)) >= 0.0, "{} non-negative", metric.name());
        }
        // Near-duplicate large-norm rows: the norm trick cancels; the clamp
        // must keep the squared distance non-negative.
        let a = vec![1000.0f32; 8];
        let mut b = a.clone();
        b[0] += 1e-4;
        assert!(pair_distance(Metric::SquaredEuclidean, &a, &b) >= 0.0);
        assert!(!pair_distance(Metric::Euclidean, &a, &b).is_nan());
    }

    #[test]
    fn cosine_zero_vector_convention_survives_the_cache() {
        let z = Matrix::zeros(1, 4);
        let a = wavy(1, 4, 0.9);
        let kernel = MetricKernel::bound(Metric::Cosine, z.view(), a.view());
        let mut out = [0.0f32];
        kernel.tile_with(z.row(0), kernel.query_cached(0), a.view(), 0, &mut out);
        assert_eq!(out[0], 2.0);
        let kernel_zz = MetricKernel::bound(Metric::Cosine, z.view(), z.view());
        kernel_zz.tile_with(z.row(0), kernel_zz.query_cached(0), z.view(), 0, &mut out);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn swap_remove_mirrors_vec_semantics() {
        let queries = wavy(5, 6, 0.0);
        let mut kernel = MetricKernel::new(Metric::SquaredEuclidean);
        kernel.bind_queries(queries.view());
        let last = kernel.query_cached(4);
        kernel.queries_swap_remove(1);
        assert_eq!(kernel.queries_bound(), 4);
        assert_eq!(kernel.query_cached(1).to_bits(), last.to_bits());
    }
}
