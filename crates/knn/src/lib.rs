//! # snoopy-knn
//!
//! Exact k-nearest-neighbour machinery for the Snoopy feasibility-study
//! system.
//!
//! Snoopy's Bayes-error estimator is built on the 1NN classifier error
//! (Cover & Hart), evaluated on top of many feature transformations and over
//! growing training-set prefixes. This crate provides:
//!
//! * distance metrics ([`metric::Metric`]: squared Euclidean, Euclidean,
//!   cosine dissimilarity), whose expressions live in exactly one place —
//!   the metric-kernel layer ([`kernel::MetricKernel`]). The kernel owns the
//!   per-row norm caches of both scan sides and computes distances in
//!   register-blocked tiles over the fixed-order
//!   [`snoopy_linalg::kernel`] dot microkernel (squared Euclidean via the
//!   `‖q‖² + ‖x‖² − 2⟨q, x⟩` norm trick, cosine from the same dot tile), so
//!   a distance depends only on the pair of rows — never on tile size,
//!   block size, thread count, or which consumer computed it,
//! * the blocked, chunk-parallel top-k evaluation engine
//!   ([`engine::EvalEngine`]) whose results are bit-identical to the serial
//!   references [`engine::nearest_reference`] / [`engine::knn_reference`]
//!   for every metric, thread count, block size, tile size, and
//!   batch-streamed ingestion order,
//! * the query-major [`engine::NeighborTable`] — the one neighbour handshake
//!   every distance consumer speaks. A table computed once at `k_max` answers
//!   every smaller `k` by prefix, which is how the estimator-comparison
//!   pipeline shares a single neighbour computation across all kNN-family
//!   Bayes-error estimators,
//! * the exact-pruned clustered index ([`clustered::ClusteredIndex`]): a
//!   Lloyd's k-means coarse partition plus triangle-inequality pruning that
//!   skips most distance evaluations on clustered embedding spaces while
//!   staying bit-identical to the exhaustive engine, surfaced as the
//!   [`clustered::EvalBackend`] enum
//!   (`Exhaustive` | `Clustered { nlist, quantize }`, with a train-size
//!   auto-selection heuristic) behind the same `NeighborTable` handshake —
//!   cosine dissimilarity has no triangle inequality, so cosine consumers
//!   transparently fall back to the exhaustive kernel,
//! * the per-dimension affine int8 shadow ([`quantized::QuantizedShadow`],
//!   `quantize: true`): visited clusters scan approximately at **one byte
//!   per dimension** through a fixed-order int8 dot tile, a
//!   quantization-error-widened bound selects the candidate superset, and
//!   only survivors are re-ranked through the exact f32 kernel — a ~4×
//!   smaller scan copy with the identical `NeighborTable`,
//! * the shard-paged out-of-core index ([`sharded::ShardedIndex`]): the
//!   same partition and bound arithmetic over a borrowed — typically
//!   mmap-backed ([`snoopy_linalg::disk::DiskDataset`]) — source view, but
//!   each cluster materialises as an independently loadable/evictable
//!   shard under an LRU byte budget ([`sharded::PagingStats`],
//!   [`sharded::PagedResidentBytes`]); the triangle-inequality prune order
//!   doubles as the paging order, so rejected clusters are never faulted
//!   in, a configurable prefetch pipeline overlaps upcoming shard
//!   materialisation with the current scan on `snoopy-pool` workers, and
//!   results stay bit-identical to the resident paths at every prefetch
//!   depth and worker count,
//! * an exact brute-force index ([`brute::BruteForceIndex`]) whose k-NN
//!   queries, batch evaluation, and leave-one-out error all route through
//!   the engine (or the clustered index, per backend),
//! * the *incremental top-k successor state*
//!   ([`incremental::IncrementalTopK`]) — the one append/relabel-able kNN
//!   state behind the successive-halving bandit (each arm pull **appends** a
//!   batch in `O(batch × queries)` kernel work), the label-cleaning loop
//!   (**relabels** refresh the 1NN and k-prefix vote errors in `O(test)` —
//!   the paper's "0.2 ms for 10 K test / 50 K train samples" real-time
//!   feedback), and the estimator pipeline (its [`engine::NeighborTable`]
//!   snapshot is bit-identical to a cold [`engine::EvalEngine::topk`] at
//!   every point). With a clustered backend, appended rows are assigned to
//!   the existing centroids (and encoded against the frozen int8 affine
//!   when quantized) and the partition is rebuilt only when the
//!   re-partition policy fires ([`incremental::RepartitionPolicy`]: a
//!   bench-tuned growth factor [`incremental::REPARTITION_GROWTH`], or a
//!   pruning-rate trigger).

pub(crate) mod bounds;
pub mod brute;
pub mod clustered;
pub mod engine;
pub mod incremental;
pub mod kernel;
pub mod metric;
pub mod quantized;
pub mod sharded;

pub use brute::BruteForceIndex;
pub use clustered::{ClusteredIndex, EvalBackend, PruneStats, ResidentBytes};
pub use engine::{EvalEngine, NearestHit, NeighborTable, TopKScratch, TopKState};
pub use incremental::{EvictReport, IncrementalTopK, RepartitionPolicy};
pub use kernel::MetricKernel;
pub use metric::Metric;
pub use quantized::AffineQuantizer;
pub use sharded::{PagedResidentBytes, PagingStats, ShardedIndex};
