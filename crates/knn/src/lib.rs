//! # snoopy-knn
//!
//! Exact k-nearest-neighbour machinery for the Snoopy feasibility-study
//! system.
//!
//! Snoopy's Bayes-error estimator is built on the 1NN classifier error
//! (Cover & Hart), evaluated on top of many feature transformations and over
//! growing training-set prefixes. This crate provides:
//!
//! * distance metrics ([`metric::Metric`]: squared Euclidean, Euclidean,
//!   cosine dissimilarity),
//! * an exact, parallel brute-force index ([`brute::BruteForceIndex`]) with
//!   k-NN queries and classifier-error evaluation,
//! * a *streamed* 1NN evaluator ([`stream::StreamedOneNn`]) that consumes the
//!   training set in batches and maintains the running nearest neighbour of
//!   every test point — this is what the successive-halving bandit pulls one
//!   batch at a time (Section V of the paper),
//! * the *incremental* 1NN cache ([`incremental::IncrementalOneNn`]) that
//!   re-evaluates the 1NN error after label cleaning by a single pass over
//!   the test set, giving the paper's "0.2 ms for 10 K test / 50 K train
//!   samples" real-time feedback.

pub mod brute;
pub mod engine;
pub mod incremental;
pub mod metric;
pub mod stream;

pub use brute::BruteForceIndex;
pub use engine::{EvalEngine, NearestHit};
pub use incremental::IncrementalOneNn;
pub use metric::Metric;
pub use stream::StreamedOneNn;
