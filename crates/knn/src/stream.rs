//! Streamed 1NN evaluation over growing training-set prefixes.
//!
//! Snoopy's successive-halving scheduler (Section V) feeds each
//! transformation's training data to the 1NN evaluator in fixed-size batches,
//! recording the test error after every batch to build the convergence curve.
//! [`StreamedOneNn`] maintains, for every test point, the best (distance,
//! global training index) pair seen so far, so adding a batch costs
//! `O(batch × test × d)` and the running error is available at any time in
//! `O(test)`. Batch updates run through the shared tile-blocked,
//! chunk-parallel [`EvalEngine`]; the stream owns one [`MetricKernel`]
//! whose query-side norm cache is bound once to the fixed test split at
//! construction and whose train side is re-bound per batch (reusing the
//! cache allocation), so the steady-state stream performs no per-query
//! allocation.

use crate::clustered::{ClusteredIndex, EvalBackend, PruneStats};
use crate::engine::{EvalEngine, NearestHit, NeighborTable};
use crate::kernel::MetricKernel;
use crate::metric::Metric;
use snoopy_linalg::{DatasetView, Matrix};

/// Streamed 1NN evaluator.
#[derive(Debug, Clone)]
pub struct StreamedOneNn {
    test_features: Matrix,
    test_labels: Vec<u32>,
    metric: Metric,
    engine: EvalEngine,
    /// Backend for per-batch updates: a clustered backend indexes each
    /// incoming batch and folds it in with triangle-inequality pruning — the
    /// running best of earlier batches tightens the pruning threshold from
    /// the first cluster. Results are bit-identical to the exhaustive fold.
    backend: EvalBackend,
    /// Pruning counters accumulated across clustered batch updates.
    prune_stats: PruneStats,
    /// Running nearest state per test point (global training indices).
    best: Vec<NearestHit>,
    /// Labels of every consumed training sample, indexed globally.
    train_labels: Vec<u32>,
    /// Error after each completed batch: `(training samples consumed, error)`.
    curve: Vec<(usize, f64)>,
    /// The metric kernel: query-side norm cache bound once to the test
    /// split, train side re-bound per batch (allocation reused).
    kernel: MetricKernel,
}

impl StreamedOneNn {
    /// Creates an evaluator for a fixed test split.
    ///
    /// # Panics
    /// Panics if the test split is empty or features/labels disagree.
    pub fn new(test_features: Matrix, test_labels: Vec<u32>, metric: Metric) -> Self {
        assert_eq!(test_features.rows(), test_labels.len(), "test feature/label mismatch");
        assert!(!test_labels.is_empty(), "streamed 1NN needs a non-empty test split");
        let mut kernel = MetricKernel::new(metric);
        kernel.bind_queries(test_features.view());
        Self {
            best: vec![NearestHit::NONE; test_labels.len()],
            test_features,
            test_labels,
            metric,
            engine: EvalEngine::parallel(),
            backend: EvalBackend::Exhaustive,
            prune_stats: PruneStats::default(),
            train_labels: Vec::new(),
            curve: Vec::new(),
            kernel,
        }
    }

    /// Replaces the evaluation engine (e.g. to force a serial reference run).
    pub fn with_engine(mut self, engine: EvalEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Swaps the evaluation engine in place (used to re-widen a throttled
    /// stream once it runs alone).
    pub fn set_engine(&mut self, engine: EvalEngine) {
        self.engine = engine;
    }

    /// Selects the per-batch update backend (exhaustive by default). Use a
    /// clustered backend only when batches are large enough to amortise the
    /// per-batch k-means build — [`EvalBackend::auto_for`] with the batch
    /// size as the train side encodes that heuristic.
    pub fn with_backend(mut self, backend: EvalBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Swaps the update backend in place.
    pub fn set_backend(&mut self, backend: EvalBackend) {
        self.backend = backend;
    }

    /// Pruning counters accumulated by clustered batch updates (all zeros
    /// while streaming exhaustively).
    pub fn prune_stats(&self) -> PruneStats {
        self.prune_stats
    }

    /// Number of training samples consumed so far.
    pub fn consumed(&self) -> usize {
        self.train_labels.len()
    }

    /// Number of test points.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }

    /// The recorded convergence curve: `(consumed training samples, 1NN error)`
    /// after every batch.
    pub fn curve(&self) -> &[(usize, f64)] {
        &self.curve
    }

    /// Adds one batch of training samples whose global indices start at
    /// `self.consumed()`. Updates every test point's running nearest
    /// neighbour through the parallel engine and records the new error on the
    /// curve. Returns the updated error.
    pub fn add_train_batch<'b>(
        &mut self,
        batch_features: impl Into<DatasetView<'b>>,
        batch_labels: &[u32],
    ) -> f64 {
        let batch_features = batch_features.into();
        assert_eq!(batch_features.rows(), batch_labels.len(), "batch feature/label mismatch");
        assert_eq!(
            batch_features.cols(),
            self.test_features.cols(),
            "batch dimensionality differs from test set"
        );
        let offset = self.train_labels.len();
        if let Some(nlist) = self.backend.resolve(batch_features.rows(), self.metric) {
            let index = ClusteredIndex::build_with_engine(batch_features, self.metric, nlist, self.engine);
            let stats = index.update_nearest(self.test_features.view(), offset, &mut self.best);
            self.prune_stats.merge(&stats);
        } else {
            self.kernel.bind_train(batch_features);
            self.engine.update_nearest(
                self.test_features.view(),
                &self.kernel,
                batch_features,
                offset,
                &mut self.best,
            );
        }
        self.train_labels.extend_from_slice(batch_labels);
        let err = self.current_error();
        self.curve.push((self.train_labels.len(), err));
        err
    }

    /// Current 1NN error given the training samples consumed so far. Before
    /// any batch has been added every prediction counts as wrong.
    pub fn current_error(&self) -> f64 {
        let wrong = self
            .best
            .iter()
            .zip(&self.test_labels)
            .filter(|(b, &y)| b.index == usize::MAX || self.train_labels[b.index] != y)
            .count();
        wrong as f64 / self.test_labels.len() as f64
    }

    /// The nearest training index currently assigned to each test point
    /// (`usize::MAX` before any data was consumed). This is exactly the state
    /// the incremental cache snapshots.
    pub fn nearest_train_indices(&self) -> Vec<usize> {
        self.best.iter().map(|b| b.index).collect()
    }

    /// Snapshots the running nearest state as a `k = 1` [`NeighborTable`]
    /// with global training indices — the neighbour handshake downstream
    /// consumers speak. Before any batch has been consumed the table is
    /// empty (`k() == 0`).
    pub fn neighbor_table(&self) -> NeighborTable {
        NeighborTable::from_nearest(self.best.clone())
    }

    /// The nearest training labels currently assigned to each test point
    /// (`u32::MAX` before any data was consumed).
    pub fn nearest_train_labels(&self) -> Vec<u32> {
        self.best
            .iter()
            .map(|b| if b.index == usize::MAX { u32::MAX } else { self.train_labels[b.index] })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;
    use snoopy_linalg::LabeledView;

    fn toy_task(n_train: usize) -> (Matrix, Vec<u32>, Matrix, Vec<u32>) {
        // Two slightly overlapping 1-D clusters embedded in 2-D.
        let mut train_rows = Vec::new();
        let mut train_labels = Vec::new();
        for i in 0..n_train {
            let c = i % 2;
            let base = if c == 0 { 0.0 } else { 2.0 };
            train_rows.push(vec![base + (i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()]);
            train_labels.push(c as u32);
        }
        let mut test_rows = Vec::new();
        let mut test_labels = Vec::new();
        for i in 0..60 {
            let c = i % 2;
            let base = if c == 0 { 0.0 } else { 2.0 };
            test_rows.push(vec![base + (i as f32 * 0.53).sin(), (i as f32 * 0.29).cos()]);
            test_labels.push(c as u32);
        }
        (Matrix::from_rows(&train_rows), train_labels, Matrix::from_rows(&test_rows), test_labels)
    }

    #[test]
    fn streaming_matches_full_index_at_every_prefix() {
        let (train_x, train_y, test_x, test_y) = toy_task(200);
        let train = LabeledView::new(&train_x, &train_y).with_classes(2);
        let mut stream = StreamedOneNn::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean);
        let mut consumed = 0;
        for batch in train.batches(50) {
            let err = stream.add_train_batch(batch.features(), batch.labels());
            consumed += batch.len();
            let full = BruteForceIndex::from_view(train.prefix(consumed), Metric::SquaredEuclidean)
                .one_nn_error(&test_x, &test_y);
            assert!((err - full).abs() < 1e-12, "prefix {consumed}: streamed {err} vs full {full}");
        }
        assert_eq!(stream.consumed(), 200);
        assert_eq!(stream.curve().len(), 4);
    }

    #[test]
    fn error_before_any_batch_is_one() {
        let (_, _, test_x, test_y) = toy_task(10);
        let stream = StreamedOneNn::new(test_x, test_y, Metric::Euclidean);
        assert_eq!(stream.current_error(), 1.0);
        assert!(stream.nearest_train_indices().iter().all(|&i| i == usize::MAX));
        assert!(stream.nearest_train_labels().iter().all(|&y| y == u32::MAX));
    }

    #[test]
    fn curve_is_generally_decreasing_on_clean_data() {
        let (train_x, train_y, test_x, test_y) = toy_task(400);
        let mut stream = StreamedOneNn::new(test_x, test_y, Metric::SquaredEuclidean);
        for batch in LabeledView::new(&train_x, &train_y).batches(40) {
            stream.add_train_batch(batch.features(), batch.labels());
        }
        let first = stream.curve()[0].1;
        let last = stream.curve().last().unwrap().1;
        assert!(last <= first, "curve should not increase overall: {first} -> {last}");
    }

    #[test]
    fn nearest_indices_are_global() {
        let (train_x, train_y, test_x, test_y) = toy_task(100);
        let mut stream = StreamedOneNn::new(test_x, test_y, Metric::SquaredEuclidean);
        let view = train_x.view();
        stream.add_train_batch(view.slice_rows(0, 50), &train_y[..50]);
        stream.add_train_batch(view.slice_rows(50, 100), &train_y[50..]);
        let idx = stream.nearest_train_indices();
        assert!(idx.iter().all(|&i| i < 100));
        assert!(idx.iter().any(|&i| i >= 50), "some neighbours should come from the second batch");
    }

    #[test]
    fn neighbor_table_snapshot_matches_full_index() {
        let (train_x, train_y, test_x, test_y) = toy_task(80);
        let mut stream = StreamedOneNn::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean);
        assert_eq!(stream.neighbor_table().k(), 0, "empty before any batch");
        for batch in LabeledView::new(&train_x, &train_y).batches(30) {
            stream.add_train_batch(batch.features(), batch.labels());
        }
        let table = stream.neighbor_table();
        let full =
            BruteForceIndex::new(&train_x, &train_y, 2, Metric::SquaredEuclidean).neighbor_table(&test_x, 1);
        assert_eq!(table, full);
        assert!((table.one_nn_error(&train_y, &test_y) - stream.current_error()).abs() < 1e-12);
    }

    #[test]
    fn cosine_stream_reuses_scratch_and_matches_full_recompute() {
        let (train_x, train_y, test_x, test_y) = toy_task(90);
        let mut stream = StreamedOneNn::new(test_x.clone(), test_y.clone(), Metric::Cosine);
        for batch in LabeledView::new(&train_x, &train_y).batches(27) {
            stream.add_train_batch(batch.features(), batch.labels());
        }
        let full = BruteForceIndex::new(&train_x, &train_y, 2, Metric::Cosine).one_nn_error(&test_x, &test_y);
        assert!((stream.current_error() - full).abs() < 1e-12);
    }

    #[test]
    fn clustered_backend_stream_is_bit_identical_to_exhaustive() {
        let (train_x, train_y, test_x, test_y) = toy_task(180);
        let mut exhaustive = StreamedOneNn::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean);
        let mut clustered = StreamedOneNn::new(test_x, test_y, Metric::SquaredEuclidean)
            .with_backend(EvalBackend::Clustered { nlist: 3 });
        for batch in LabeledView::new(&train_x, &train_y).batches(45) {
            let a = exhaustive.add_train_batch(batch.features(), batch.labels());
            let b = clustered.add_train_batch(batch.features(), batch.labels());
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(exhaustive.nearest_train_indices(), clustered.nearest_train_indices());
        }
        assert_eq!(exhaustive.neighbor_table(), clustered.neighbor_table());
        let stats = clustered.prune_stats();
        assert_eq!(stats.queries, 60 * 4, "one pruned pass per test point per batch");
        assert_eq!(exhaustive.prune_stats(), PruneStats::default());
    }

    #[test]
    #[should_panic(expected = "batch dimensionality")]
    fn dimension_mismatch_panics() {
        let (_, _, test_x, test_y) = toy_task(10);
        let mut stream = StreamedOneNn::new(test_x, test_y, Metric::SquaredEuclidean);
        stream.add_train_batch(&Matrix::zeros(5, 7), &[0, 1, 0, 1, 0]);
    }
}
