//! Streamed 1NN evaluation over growing training-set prefixes.
//!
//! Snoopy's successive-halving scheduler (Section V) feeds each
//! transformation's training data to the 1NN evaluator in fixed-size batches,
//! recording the test error after every batch to build the convergence curve.
//! [`StreamedOneNn`] maintains, for every test point, the best (distance,
//! training index, training label) triple seen so far, so adding a batch costs
//! `O(batch × test × d)` and the running error is available at any time in
//! `O(test)`.

use crate::metric::Metric;
use snoopy_linalg::Matrix;

/// Running nearest-neighbour state of one test point.
#[derive(Debug, Clone, Copy)]
struct BestSoFar {
    distance: f32,
    train_index: usize,
    train_label: u32,
}

/// Streamed 1NN evaluator.
#[derive(Debug, Clone)]
pub struct StreamedOneNn {
    test_features: Matrix,
    test_labels: Vec<u32>,
    metric: Metric,
    best: Vec<BestSoFar>,
    consumed: usize,
    /// Error after each completed batch: `(training samples consumed, error)`.
    curve: Vec<(usize, f64)>,
}

impl StreamedOneNn {
    /// Creates an evaluator for a fixed test split.
    ///
    /// # Panics
    /// Panics if the test split is empty or features/labels disagree.
    pub fn new(test_features: Matrix, test_labels: Vec<u32>, metric: Metric) -> Self {
        assert_eq!(test_features.rows(), test_labels.len(), "test feature/label mismatch");
        assert!(!test_labels.is_empty(), "streamed 1NN needs a non-empty test split");
        let best =
            vec![BestSoFar { distance: f32::INFINITY, train_index: usize::MAX, train_label: u32::MAX }; test_labels.len()];
        Self { test_features, test_labels, metric, best, consumed: 0, curve: Vec::new() }
    }

    /// Number of training samples consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Number of test points.
    pub fn test_len(&self) -> usize {
        self.test_labels.len()
    }

    /// The recorded convergence curve: `(consumed training samples, 1NN error)`
    /// after every batch.
    pub fn curve(&self) -> &[(usize, f64)] {
        &self.curve
    }

    /// Adds one batch of training samples (rows of `batch_features`) whose
    /// global indices start at `self.consumed()`. Updates every test point's
    /// running nearest neighbour in parallel and records the new error on the
    /// curve. Returns the updated error.
    pub fn add_train_batch(&mut self, batch_features: &Matrix, batch_labels: &[u32]) -> f64 {
        assert_eq!(batch_features.rows(), batch_labels.len(), "batch feature/label mismatch");
        assert_eq!(
            batch_features.cols(),
            self.test_features.cols(),
            "batch dimensionality differs from test set"
        );
        let offset = self.consumed;
        let metric = self.metric;
        let test_features = &self.test_features;
        let n_test = self.test_labels.len();
        let threads = crate::brute::num_threads().min(n_test);
        let chunk = n_test.div_ceil(threads);
        crossbeam::scope(|scope| {
            for (t, slot) in self.best.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move |_| {
                    for (i, best) in slot.iter_mut().enumerate() {
                        let query = test_features.row(start + i);
                        for (j, row) in batch_features.rows_iter().enumerate() {
                            let d = metric.distance(query, row);
                            if d < best.distance {
                                *best = BestSoFar {
                                    distance: d,
                                    train_index: offset + j,
                                    train_label: batch_labels[j],
                                };
                            }
                        }
                    }
                });
            }
        })
        .expect("streamed knn worker panicked");
        self.consumed += batch_labels.len();
        let err = self.current_error();
        self.curve.push((self.consumed, err));
        err
    }

    /// Current 1NN error given the training samples consumed so far. Before
    /// any batch has been added every prediction counts as wrong.
    pub fn current_error(&self) -> f64 {
        let wrong = self
            .best
            .iter()
            .zip(&self.test_labels)
            .filter(|(b, &y)| b.train_label != y)
            .count();
        wrong as f64 / self.test_labels.len() as f64
    }

    /// The nearest training index currently assigned to each test point
    /// (`usize::MAX` before any data was consumed). This is exactly the state
    /// the incremental cache snapshots.
    pub fn nearest_train_indices(&self) -> Vec<usize> {
        self.best.iter().map(|b| b.train_index).collect()
    }

    /// The nearest training labels currently assigned to each test point.
    pub fn nearest_train_labels(&self) -> Vec<u32> {
        self.best.iter().map(|b| b.train_label).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;

    fn toy_task(n_train: usize) -> (Matrix, Vec<u32>, Matrix, Vec<u32>) {
        // Two slightly overlapping 1-D clusters embedded in 2-D.
        let mut train_rows = Vec::new();
        let mut train_labels = Vec::new();
        for i in 0..n_train {
            let c = i % 2;
            let base = if c == 0 { 0.0 } else { 2.0 };
            train_rows.push(vec![base + (i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()]);
            train_labels.push(c as u32);
        }
        let mut test_rows = Vec::new();
        let mut test_labels = Vec::new();
        for i in 0..60 {
            let c = i % 2;
            let base = if c == 0 { 0.0 } else { 2.0 };
            test_rows.push(vec![base + (i as f32 * 0.53).sin(), (i as f32 * 0.29).cos()]);
            test_labels.push(c as u32);
        }
        (Matrix::from_rows(&train_rows), train_labels, Matrix::from_rows(&test_rows), test_labels)
    }

    #[test]
    fn streaming_matches_full_index_at_every_prefix() {
        let (train_x, train_y, test_x, test_y) = toy_task(200);
        let mut stream = StreamedOneNn::new(test_x.clone(), test_y.clone(), Metric::SquaredEuclidean);
        let batch = 50;
        let mut consumed = 0;
        while consumed < train_x.rows() {
            let end = (consumed + batch).min(train_x.rows());
            let err = stream.add_train_batch(&train_x.slice_rows(consumed, end), &train_y[consumed..end]);
            consumed = end;
            let full = BruteForceIndex::new(
                train_x.slice_rows(0, consumed),
                train_y[..consumed].to_vec(),
                2,
                Metric::SquaredEuclidean,
            )
            .one_nn_error(&test_x, &test_y);
            assert!((err - full).abs() < 1e-12, "prefix {consumed}: streamed {err} vs full {full}");
        }
        assert_eq!(stream.consumed(), 200);
        assert_eq!(stream.curve().len(), 4);
    }

    #[test]
    fn error_before_any_batch_is_one() {
        let (_, _, test_x, test_y) = toy_task(10);
        let stream = StreamedOneNn::new(test_x, test_y, Metric::Euclidean);
        assert_eq!(stream.current_error(), 1.0);
        assert!(stream.nearest_train_indices().iter().all(|&i| i == usize::MAX));
    }

    #[test]
    fn curve_is_generally_decreasing_on_clean_data() {
        let (train_x, train_y, test_x, test_y) = toy_task(400);
        let mut stream = StreamedOneNn::new(test_x, test_y, Metric::SquaredEuclidean);
        let batch = 40;
        let mut consumed = 0;
        while consumed < train_x.rows() {
            let end = (consumed + batch).min(train_x.rows());
            stream.add_train_batch(&train_x.slice_rows(consumed, end), &train_y[consumed..end]);
            consumed = end;
        }
        let first = stream.curve()[0].1;
        let last = stream.curve().last().unwrap().1;
        assert!(last <= first, "curve should not increase overall: {first} -> {last}");
    }

    #[test]
    fn nearest_indices_are_global() {
        let (train_x, train_y, test_x, test_y) = toy_task(100);
        let mut stream = StreamedOneNn::new(test_x, test_y, Metric::SquaredEuclidean);
        stream.add_train_batch(&train_x.slice_rows(0, 50), &train_y[..50]);
        stream.add_train_batch(&train_x.slice_rows(50, 100), &train_y[50..]);
        let idx = stream.nearest_train_indices();
        assert!(idx.iter().all(|&i| i < 100));
        assert!(idx.iter().any(|&i| i >= 50), "some neighbours should come from the second batch");
    }

    #[test]
    #[should_panic(expected = "batch dimensionality")]
    fn dimension_mismatch_panics() {
        let (_, _, test_x, test_y) = toy_task(10);
        let mut stream = StreamedOneNn::new(test_x, test_y, Metric::SquaredEuclidean);
        stream.add_train_batch(&Matrix::zeros(5, 7), &[0, 1, 0, 1, 0]);
    }
}
